#include "shuffle/peos.h"

#include <cassert>
#include <mutex>

#include "crypto/secret_sharing.h"
#include "ldp/estimator.h"
#include "util/rng.h"

namespace shuffledp {
namespace shuffle {

namespace {

// Fixed user-phase chunk size; seeds derive from chunk start indices so
// the chunking must not depend on the worker count (ForChunks).
constexpr uint64_t kUserChunk = 1024;

}  // namespace

Result<PeosResult> RunPeos(const ldp::ScalarFrequencyOracle& oracle,
                           const std::vector<uint64_t>& values,
                           const PeosConfig& config,
                           crypto::SecureRandom* rng) {
  const uint64_t n = values.size();
  const uint32_t r = config.num_shufflers;
  if (n == 0) return Status::InvalidArgument("PEOS: empty dataset");
  if (r < 2) return Status::InvalidArgument("PEOS: need r >= 2 shufflers");
  // The share group is Z_{2^B} where B is the oracle's padded ordinal
  // width: uniform B-bit fake shares then reconstruct to uniform ordinal
  // values (see frequency_oracle.h). config.ell is validated against it.
  const unsigned share_bits = oracle.PackedBits();
  if (share_bits < 1 || share_bits > 64) {
    return Status::InvalidArgument("PEOS: oracle ordinal width out of range");
  }
  if (config.ell < share_bits) {
    return Status::InvalidArgument(
        "PEOS: ell smaller than the oracle's packed ordinal width");
  }
  std::vector<PeosShufflerBehaviour> behaviours = config.behaviours;
  behaviours.resize(r, PeosShufflerBehaviour::kHonest);

  CostLedger ledger;
  PeosResult result;
  const uint64_t total = n + config.fake_reports;
  const unsigned ell = share_bits;  // share over exactly the ordinal group
  const uint64_t mask =
      ell >= 64 ? ~uint64_t{0} : ((uint64_t{1} << ell) - 1);

  // --- Setup: server AHE key pair ------------------------------------------
  crypto::PaillierKeyPair server_keys;
  {
    ComputeScope scope(&ledger, Role::kServer);
    auto kp = crypto::PaillierGenerateKeyPair(config.paillier_bits, rng);
    if (!kp.ok()) return kp.status();
    server_keys = std::move(kp).value();
  }
  std::unique_ptr<crypto::RandomizerPool> pool;
  if (config.use_randomizer_pool) {
    pool = std::make_unique<crypto::RandomizerPool>(
        server_keys.pub, config.randomizer_pool_size, rng,
        config.randomizer_mode);
  }
  const uint64_t cipher_bytes = server_keys.pub.CiphertextBytes();

  // --- User phase: encode, share, encrypt share r ---------------------------
  EosState state;
  state.plain.ell = ell;
  state.plain.columns.assign(r - 1 + 1,
                             std::vector<uint64_t>(total, 0));
  // Column layout: columns[0..r-2] are shufflers 1..r-1's plaintext
  // shares; columns[r-1] is shuffler r's *local* plaintext column, which
  // stays all-zero for user rows (shuffler r receives only ciphertexts)
  // and carries its own fake-share contributions.
  state.cipher_column.resize(total);
  state.e_holder = r - 1;

  {
    ComputeScope scope(&ledger, Role::kUser);
    std::mutex status_mu;
    Status enc_status = Status::OK();
    auto user_range = [&](uint64_t lo, uint64_t hi, uint64_t seed) {
      Rng local_rng(seed);
      crypto::SecureRandom local_sec(seed ^ 0xFEEDFACEULL);
      for (uint64_t i = lo; i < hi; ++i) {
        ldp::LdpReport rep = oracle.Encode(values[i], &local_rng);
        auto shares = crypto::SplitShares2Ell(oracle.PackOrdinal(rep), r,
                                              ell, &local_sec);
        for (uint32_t j = 0; j + 1 < r; ++j) {
          state.plain.columns[j][i] = shares[j];
        }
        Result<crypto::PaillierCiphertext> c =
            pool != nullptr
                ? Result<crypto::PaillierCiphertext>(
                      pool->EncryptFastU64(shares[r - 1], &local_sec))
                : server_keys.pub.EncryptU64(shares[r - 1], &local_sec);
        if (!c.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          enc_status = c.status();
          return;
        }
        state.cipher_column[i] = std::move(c).value();
      }
    };
    // Fixed-size chunks keep the per-chunk seeds — and hence every
    // report and share — independent of the pool's worker count.
    const uint64_t base_seed = rng->NextU64();
    ForChunks(config.pool, 0, n, kUserChunk, [&](uint64_t lo, uint64_t hi) {
      user_range(lo, hi, base_seed ^ (lo * 0x9E3779B97F4A7C15ULL + 1));
    });
    if (!enc_status.ok()) return enc_status;
  }
  // Per-user upload: r − 1 plaintext shares + 1 ciphertext.
  ledger.RecordSend(Role::kUser, Role::kShuffler,
                    n * ((r - 1) * 8 + cipher_bytes));

  // --- Shufflers create fake-report shares ----------------------------------
  {
    ComputeScope scope(&ledger, Role::kShuffler);
    // Every shuffler contributes one uniform share; the sum over honest
    // shufflers is uniform regardless of what malicious ones pick
    // (Algorithm 1 + §VI-A2 masking argument). Shares are drawn serially
    // from the protocol rng; the Paillier encryptions of shuffler r's
    // column are independent per row and run on the thread pool.
    std::vector<uint64_t> share_r_column(config.fake_reports);
    for (uint64_t k = 0; k < config.fake_reports; ++k) {
      const uint64_t row = n + k;
      for (uint32_t j = 0; j + 1 < r; ++j) {
        uint64_t share =
            behaviours[j] == PeosShufflerBehaviour::kBiasedFakeShares
                ? (config.poison_target_packed & mask)
                : (rng->NextU64() & mask);
        state.plain.columns[j][row] = share;
      }
      share_r_column[k] =
          behaviours[r - 1] == PeosShufflerBehaviour::kBiasedFakeShares
              ? (config.poison_target_packed & mask)
              : (rng->NextU64() & mask);
    }
    std::mutex status_mu;
    Status enc_status = Status::OK();
    auto encrypt_range = [&](uint64_t lo, uint64_t hi, uint64_t seed) {
      crypto::SecureRandom local_sec(seed ^ 0xFA4E5EEDULL);
      for (uint64_t k = lo; k < hi; ++k) {
        Result<crypto::PaillierCiphertext> c =
            pool != nullptr
                ? Result<crypto::PaillierCiphertext>(
                      pool->EncryptFastU64(share_r_column[k], &local_sec))
                : server_keys.pub.EncryptU64(share_r_column[k], &local_sec);
        if (!c.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          enc_status = c.status();
          return;
        }
        state.cipher_column[n + k] = std::move(c).value();
      }
    };
    const uint64_t base_seed = rng->NextU64();
    ForChunks(config.pool, 0, config.fake_reports, kUserChunk,
              [&](uint64_t lo, uint64_t hi) {
                encrypt_range(lo, hi,
                              base_seed ^ (lo * 0x9E3779B97F4A7C15ULL));
              });
    if (!enc_status.ok()) return enc_status;
  }

  // --- EOS -------------------------------------------------------------------
  EosOptions eos_opts;
  eos_opts.public_key = &server_keys.pub;
  eos_opts.pool = pool.get();
  eos_opts.thread_pool = config.pool;
  SHUFFLEDP_RETURN_NOT_OK(
      RunEncryptedObliviousShuffle(&state, eos_opts, rng, &ledger));

  // --- Shufflers -> server ----------------------------------------------------
  ledger.RecordSend(Role::kShuffler, Role::kServer,
                    (r - 1) * total * 8 /* plaintext columns */);
  ledger.RecordSend(Role::kShuffler, Role::kServer,
                    total * cipher_bytes /* ciphertext column */);

  // --- Server: streaming decrypt + reconstruct + estimate -------------------
  // Rows are offered to the sharded streaming collector in fixed-size
  // batches; its consumer fans the Paillier decryptions and the
  // domain-sharded support counting out across the pool. Padding-region
  // ordinals (possible only when the ordinal space is not padding-free)
  // and malformed rows are dropped as invalid and accounted for by the
  // ordinal calibration.
  {
    service::StreamingOptions stream_opts = config.streaming;
    stream_opts.pool = config.pool;
    service::StreamingCollector collector(oracle, stream_opts);

    const ldp::ScalarFrequencyOracle* oracle_ptr = &oracle;
    const crypto::PaillierPrivateKey* priv = &server_keys.priv;
    const EosState* state_ptr = &state;
    // Captured pointers outlive the pipeline: FinishRound below drains
    // the queue before `state` or the keys leave scope.
    //
    // Shared by both decode paths: fold the plaintext share columns into
    // the recovered encrypted share and unpack the ordinal.
    auto reconstruct = [oracle_ptr, state_ptr, mask](
                           uint64_t row_index,
                           uint64_t enc_share) -> Result<service::DecodedRow> {
      uint64_t sum = enc_share;
      for (uint32_t j = 0; j < state_ptr->plain.num_shufflers(); ++j) {
        sum = (sum + state_ptr->plain.columns[j][row_index]) & mask;
      }
      service::DecodedRow row;
      auto rep = oracle_ptr->UnpackOrdinal(sum);
      if (!rep.ok()) return row;  // padding ordinal: drop, don't abort
      row.report = *rep;
      row.valid = true;
      return row;
    };
    if (config.packed_decryption) {
      // Slot layout for the packed decryption: the encrypted share starts
      // < 2^ell and every EOS round homomorphically adds one more ell-bit
      // mask adjustment (the invariant EosRounds documents), so the
      // integer plaintext of a row is < (eos_rounds + 1) * 2^ell — give
      // each slot that headroom plus a safety bit.
      const uint64_t eos_rounds = EosRounds(r);
      unsigned extra = 0;
      while ((uint64_t{1} << extra) < eos_rounds + 1) ++extra;
      const unsigned slot_bits = ell + extra + 1;
      const uint64_t group =
          static_cast<uint64_t>(priv->PackedSlotCapacity(slot_bits));
      // Shares recovered by the batch prepare stage, read by the
      // (crypto-free) per-row decode closures of the same batch.
      auto shares = std::make_shared<std::vector<uint64_t>>(total);
      SHUFFLEDP_RETURN_NOT_OK(collector.OfferIndexedPrepared(
          total,
          [priv, state_ptr, shares, slot_bits, ell, group](
              uint64_t lo, uint64_t hi, ThreadPool* fan_out) -> Status {
            std::mutex status_mu;
            Status status = Status::OK();
            // One lane-block of pack groups per fixed-size chunk: the
            // batch decryption splits a chunk into capacity-sized groups
            // at the same multiples of `group` the scalar path used, and
            // runs them as interleaved kernel lanes. Boundaries depend
            // only on the batch slicing, never on the worker count, so
            // the recovered shares — and the estimates — stay bitwise
            // reproducible across SHUFFLEDP_THREADS settings (and across
            // kernel backends, which all return canonical values).
            ForChunks(fan_out, lo, hi,
                      group * crypto::MontgomeryCtx::kMaxBatchLanes,
                      [&](uint64_t glo, uint64_t ghi) {
                        Status st = priv->DecryptPackedMod2EllBatch(
                            &state_ptr->cipher_column[glo], ghi - glo,
                            slot_bits, ell, shares->data() + glo);
                        if (!st.ok()) {
                          std::lock_guard<std::mutex> lock(status_mu);
                          if (status.ok()) status = st;
                        }
                      });
            return status;
          },
          [reconstruct,
           shares](uint64_t row_index) -> Result<service::DecodedRow> {
            return reconstruct(row_index, (*shares)[row_index]);
          }));
    } else {
      SHUFFLEDP_RETURN_NOT_OK(collector.OfferIndexed(
          total,
          [reconstruct, priv, state_ptr,
           ell](uint64_t row_index) -> Result<service::DecodedRow> {
            SHUFFLEDP_ASSIGN_OR_RETURN(
                uint64_t enc_share,
                priv->DecryptMod2Ell(state_ptr->cipher_column[row_index],
                                     ell));
            return reconstruct(row_index, enc_share);
          }));
    }

    SHUFFLEDP_ASSIGN_OR_RETURN(
        service::RoundResult round,
        collector.FinishRound(n, config.fake_reports,
                              service::Calibration::kOrdinal));
    ledger.RecordCompute(Role::kServer, round.stats.busy_seconds);
    result.reports_decoded = round.reports_decoded;
    result.reports_invalid = round.reports_invalid;
    result.estimates = std::move(round.estimates);
    result.streaming = round.stats;
  }

  result.costs = SummarizeCosts(ledger, n, r);
  return result;
}

}  // namespace shuffle
}  // namespace shuffledp

#include "shuffle/peos.h"

#include <atomic>
#include <cassert>
#include <mutex>

#include "crypto/secret_sharing.h"
#include "ldp/estimator.h"
#include "util/rng.h"

namespace shuffledp {
namespace shuffle {

Result<PeosResult> RunPeos(const ldp::ScalarFrequencyOracle& oracle,
                           const std::vector<uint64_t>& values,
                           const PeosConfig& config,
                           crypto::SecureRandom* rng) {
  const uint64_t n = values.size();
  const uint32_t r = config.num_shufflers;
  if (n == 0) return Status::InvalidArgument("PEOS: empty dataset");
  if (r < 2) return Status::InvalidArgument("PEOS: need r >= 2 shufflers");
  // The share group is Z_{2^B} where B is the oracle's padded ordinal
  // width: uniform B-bit fake shares then reconstruct to uniform ordinal
  // values (see frequency_oracle.h). config.ell is validated against it.
  const unsigned share_bits = oracle.PackedBits();
  if (share_bits < 1 || share_bits > 64) {
    return Status::InvalidArgument("PEOS: oracle ordinal width out of range");
  }
  if (config.ell < share_bits) {
    return Status::InvalidArgument(
        "PEOS: ell smaller than the oracle's packed ordinal width");
  }
  std::vector<PeosShufflerBehaviour> behaviours = config.behaviours;
  behaviours.resize(r, PeosShufflerBehaviour::kHonest);

  CostLedger ledger;
  PeosResult result;
  const uint64_t total = n + config.fake_reports;
  const unsigned ell = share_bits;  // share over exactly the ordinal group
  const uint64_t mask =
      ell >= 64 ? ~uint64_t{0} : ((uint64_t{1} << ell) - 1);

  // --- Setup: server AHE key pair ------------------------------------------
  crypto::PaillierKeyPair server_keys;
  {
    ComputeScope scope(&ledger, Role::kServer);
    auto kp = crypto::PaillierGenerateKeyPair(config.paillier_bits, rng);
    if (!kp.ok()) return kp.status();
    server_keys = std::move(kp).value();
  }
  std::unique_ptr<crypto::RandomizerPool> pool;
  if (config.use_randomizer_pool) {
    pool = std::make_unique<crypto::RandomizerPool>(
        server_keys.pub, config.randomizer_pool_size, rng);
  }
  const uint64_t cipher_bytes = server_keys.pub.CiphertextBytes();

  // --- User phase: encode, share, encrypt share r ---------------------------
  EosState state;
  state.plain.ell = ell;
  state.plain.columns.assign(r - 1 + 1,
                             std::vector<uint64_t>(total, 0));
  // Column layout: columns[0..r-2] are shufflers 1..r-1's plaintext
  // shares; columns[r-1] is shuffler r's *local* plaintext column, which
  // stays all-zero for user rows (shuffler r receives only ciphertexts)
  // and carries its own fake-share contributions.
  state.cipher_column.resize(total);
  state.e_holder = r - 1;

  {
    ComputeScope scope(&ledger, Role::kUser);
    std::mutex status_mu;
    Status enc_status = Status::OK();
    auto user_range = [&](uint64_t lo, uint64_t hi, uint64_t seed) {
      Rng local_rng(seed);
      crypto::SecureRandom local_sec(seed ^ 0xFEEDFACEULL);
      for (uint64_t i = lo; i < hi; ++i) {
        ldp::LdpReport rep = oracle.Encode(values[i], &local_rng);
        auto shares = crypto::SplitShares2Ell(oracle.PackOrdinal(rep), r,
                                              ell, &local_sec);
        for (uint32_t j = 0; j + 1 < r; ++j) {
          state.plain.columns[j][i] = shares[j];
        }
        Result<crypto::PaillierCiphertext> c =
            pool != nullptr
                ? Result<crypto::PaillierCiphertext>(
                      pool->EncryptFastU64(shares[r - 1], &local_sec))
                : server_keys.pub.EncryptU64(shares[r - 1], &local_sec);
        if (!c.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          enc_status = c.status();
          return;
        }
        state.cipher_column[i] = std::move(c).value();
      }
    };
    if (config.pool != nullptr) {
      uint64_t base_seed = rng->NextU64();
      config.pool->ParallelFor(0, n, [&](uint64_t lo, uint64_t hi) {
        user_range(lo, hi, base_seed ^ (lo * 0x9E3779B97F4A7C15ULL + 1));
      });
    } else {
      user_range(0, n, rng->NextU64());
    }
    if (!enc_status.ok()) return enc_status;
  }
  // Per-user upload: r − 1 plaintext shares + 1 ciphertext.
  ledger.RecordSend(Role::kUser, Role::kShuffler,
                    n * ((r - 1) * 8 + cipher_bytes));

  // --- Shufflers create fake-report shares ----------------------------------
  {
    ComputeScope scope(&ledger, Role::kShuffler);
    // Every shuffler contributes one uniform share; the sum over honest
    // shufflers is uniform regardless of what malicious ones pick
    // (Algorithm 1 + §VI-A2 masking argument). Shares are drawn serially
    // from the protocol rng; the Paillier encryptions of shuffler r's
    // column are independent per row and run on the thread pool.
    std::vector<uint64_t> share_r_column(config.fake_reports);
    for (uint64_t k = 0; k < config.fake_reports; ++k) {
      const uint64_t row = n + k;
      for (uint32_t j = 0; j + 1 < r; ++j) {
        uint64_t share =
            behaviours[j] == PeosShufflerBehaviour::kBiasedFakeShares
                ? (config.poison_target_packed & mask)
                : (rng->NextU64() & mask);
        state.plain.columns[j][row] = share;
      }
      share_r_column[k] =
          behaviours[r - 1] == PeosShufflerBehaviour::kBiasedFakeShares
              ? (config.poison_target_packed & mask)
              : (rng->NextU64() & mask);
    }
    std::mutex status_mu;
    Status enc_status = Status::OK();
    auto encrypt_range = [&](uint64_t lo, uint64_t hi, uint64_t seed) {
      crypto::SecureRandom local_sec(seed ^ 0xFA4E5EEDULL);
      for (uint64_t k = lo; k < hi; ++k) {
        Result<crypto::PaillierCiphertext> c =
            pool != nullptr
                ? Result<crypto::PaillierCiphertext>(
                      pool->EncryptFastU64(share_r_column[k], &local_sec))
                : server_keys.pub.EncryptU64(share_r_column[k], &local_sec);
        if (!c.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          enc_status = c.status();
          return;
        }
        state.cipher_column[n + k] = std::move(c).value();
      }
    };
    if (config.pool != nullptr) {
      uint64_t base_seed = rng->NextU64();
      config.pool->ParallelFor(0, config.fake_reports,
                               [&](uint64_t lo, uint64_t hi) {
                                 encrypt_range(
                                     lo, hi,
                                     base_seed ^ (lo * 0x9E3779B97F4A7C15ULL));
                               });
    } else {
      encrypt_range(0, config.fake_reports, rng->NextU64());
    }
    if (!enc_status.ok()) return enc_status;
  }

  // --- EOS -------------------------------------------------------------------
  EosOptions eos_opts;
  eos_opts.public_key = &server_keys.pub;
  eos_opts.pool = pool.get();
  eos_opts.thread_pool = config.pool;
  SHUFFLEDP_RETURN_NOT_OK(
      RunEncryptedObliviousShuffle(&state, eos_opts, rng, &ledger));

  // --- Shufflers -> server ----------------------------------------------------
  ledger.RecordSend(Role::kShuffler, Role::kServer,
                    (r - 1) * total * 8 /* plaintext columns */);
  ledger.RecordSend(Role::kShuffler, Role::kServer,
                    total * cipher_bytes /* ciphertext column */);

  // --- Server: decrypt, reconstruct, estimate ---------------------------------
  {
    ComputeScope scope(&ledger, Role::kServer);
    std::vector<uint64_t> packed(total, 0);
    std::mutex status_mu;
    Status dec_status = Status::OK();
    auto decrypt_range = [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        auto m = server_keys.priv.DecryptMod2Ell(state.cipher_column[i],
                                                 ell);
        if (!m.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          dec_status = m.status();
          return;
        }
        packed[i] = *m;
      }
    };
    if (config.pool != nullptr) {
      config.pool->ParallelFor(0, total, [&](uint64_t lo, uint64_t hi) {
        decrypt_range(lo, hi);
      });
    } else {
      decrypt_range(0, total);
    }
    if (!dec_status.ok()) return dec_status;

    for (uint64_t i = 0; i < total; ++i) {
      uint64_t sum = packed[i];
      for (uint32_t j = 0; j < state.plain.num_shufflers(); ++j) {
        sum = (sum + state.plain.columns[j][i]) & mask;
      }
      packed[i] = sum;
    }

    std::vector<ldp::LdpReport> reports;
    reports.reserve(total);
    for (uint64_t i = 0; i < total; ++i) {
      auto rep = oracle.UnpackOrdinal(packed[i]);
      if (rep.ok() && oracle.ValidateReport(*rep).ok()) {
        reports.push_back(*rep);
      } else {
        // Padding-region ordinals (possible only when the ordinal space
        // is not padding-free) and malformed rows support no value; they
        // are dropped and accounted for by the ordinal calibration.
        ++result.reports_invalid;
      }
    }
    result.reports_decoded = reports.size();

    auto supports =
        ldp::SupportCountsFullDomain(oracle, reports, config.pool);
    result.estimates = ldp::CalibrateEstimatesOrdinal(oracle, supports, n,
                                                      config.fake_reports);
  }

  result.costs = SummarizeCosts(ledger, n, r);
  return result;
}

}  // namespace shuffle
}  // namespace shuffledp

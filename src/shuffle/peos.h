// PEOS — Private Encrypted Oblivious Shuffle (paper Algorithm 1).
//
// End-to-end flow:
//   1. User i computes Y_i = FO(v_i) (GRR or SOLH), packs it into a 64-bit
//      word, splits it into r additive shares over Z_{2^ell}; shares
//      1..r−1 go to shufflers in the clear (over secure channels), share r
//      is Paillier-encrypted under the server's public key and goes to
//      shuffler r.
//   2. Shuffler j < r samples n_r fake-report shares uniformly; shuffler r
//      encrypts its fake shares. (A malicious shuffler can bias its own
//      shares — the other shufflers' uniform shares mask them, which the
//      robustness tests verify.)
//   3. All shufflers run EOS over the n + n_r share rows.
//   4. The server receives the r plaintext columns and the ciphertext
//      column, decrypts, reconstructs the packed reports mod 2^ell,
//      unpacks, and estimates with the fake-report-aware calibration.

#ifndef SHUFFLEDP_SHUFFLE_PEOS_H_
#define SHUFFLEDP_SHUFFLE_PEOS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/paillier.h"
#include "crypto/secure_random.h"
#include "ldp/frequency_oracle.h"
#include "service/streaming_collector.h"
#include "shuffle/cost_model.h"
#include "shuffle/oblivious_shuffle.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace shuffle {

/// Malicious-shuffler knobs for the poisoning experiments.
enum class PeosShufflerBehaviour {
  kHonest,
  kBiasedFakeShares,  ///< sets its fake-report shares to a constant
};

/// PEOS protocol configuration.
struct PeosConfig {
  uint32_t num_shufflers = 3;           ///< r
  uint64_t fake_reports = 0;            ///< n_r (total, one share set each)
  unsigned ell = 64;                    ///< share group Z_{2^ell}
  size_t paillier_bits = 1024;          ///< server AHE modulus size
  bool use_randomizer_pool = true;      ///< DESIGN.md §4 item 5
  size_t randomizer_pool_size = 64;
  /// Randomizer construction when use_randomizer_pool is set: the legacy
  /// pairwise pool, or DJN short-exponent fixed-base masks (fresh mask
  /// per ciphertext; see the tradeoff note in crypto/paillier.h).
  crypto::RandomizerPool::Mode randomizer_mode =
      crypto::RandomizerPool::Mode::kPairwise;
  /// Server-side batched AHE decryption: pack a group of ciphertexts into
  /// one Paillier plaintext (Montgomery-domain Horner) and amortize the
  /// two CRT modexps over the group. Exact for every protocol-generated
  /// ciphertext; an adversarially oversized plaintext would corrupt its
  /// whole pack group instead of one row (crypto/paillier.h), so the
  /// per-row path stays available.
  bool packed_decryption = true;
  std::vector<PeosShufflerBehaviour> behaviours;  ///< default: honest
  uint64_t poison_target_packed = 0;    ///< payload for biased shares
  ThreadPool* pool = nullptr;
  /// Server-side ingestion pipeline knobs, including crash-safe
  /// `streaming.checkpoint` persistence; `streaming.pool` is ignored
  /// (the server pipeline shares `pool`).
  service::StreamingOptions streaming;
};

/// Result of one PEOS collection round.
struct PeosResult {
  std::vector<double> estimates;   ///< frequencies over [0, d)
  uint64_t reports_decoded = 0;    ///< valid reports after reconstruction
  uint64_t reports_invalid = 0;    ///< failed ValidateReport (poison noise)
  CostReport costs;
  service::StreamingStats streaming;  ///< server ingestion pipeline stats
};

/// Runs the full PEOS protocol over `values`.
Result<PeosResult> RunPeos(const ldp::ScalarFrequencyOracle& oracle,
                           const std::vector<uint64_t>& values,
                           const PeosConfig& config,
                           crypto::SecureRandom* rng);

/// Collusion analysis helper (§V, §VI-B): reconstructs the *view of the
/// server colluding with all users except `victim_index`* — i.e., the
/// decoded multiset minus every non-victim user's true report. What
/// remains is the victim's report hidden among the n_r fake reports; the
/// attack tests verify the residual matches the Bin(n_r, 1/d') blanket of
/// Corollary 8.
struct CollusionView {
  std::vector<uint64_t> residual_support;  ///< per-value support counts
  ldp::LdpReport victim_report;            ///< ground truth (test oracle)
};

}  // namespace shuffle
}  // namespace shuffledp

#endif  // SHUFFLEDP_SHUFFLE_PEOS_H_

#include "shuffle/sequential_shuffle.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>

#include "crypto/sha256.h"
#include "ldp/estimator.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace shuffledp {
namespace shuffle {

namespace {

// Payload carried inside the onion: packed report (8B) || tag (8B).
// Real users and fake reports use random tags; the server's spot-check
// dummies use HMAC-derived tags so the server can recognize its own
// payloads after shuffling (shufflers cannot distinguish them).
constexpr size_t kPayloadBytes = 16;

// Fixed client-encode chunk: per-chunk RNG seeds derive from the chunk's
// start index, so chunk boundaries must not depend on the worker count
// (see ThreadPool::ParallelForChunks). Keeps Collect bitwise reproducible
// across SHUFFLEDP_THREADS settings.
constexpr uint64_t kEncodeChunk = 4096;

Bytes MakePayload(uint64_t packed_report, uint64_t tag) {
  ByteWriter w(kPayloadBytes);
  w.PutU64(packed_report);
  w.PutU64(tag);
  return w.Release();
}

}  // namespace

Result<SequentialShuffleResult> RunSequentialShuffle(
    const ldp::ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& values, const SequentialShuffleConfig& config,
    crypto::SecureRandom* rng) {
  const uint64_t n = values.size();
  const uint32_t r = config.num_shufflers;
  if (r == 0) {
    return Status::InvalidArgument("SS: need at least one shuffler");
  }
  if (n == 0) return Status::InvalidArgument("SS: empty dataset");
  std::vector<ShufflerBehaviour> behaviours = config.behaviours;
  behaviours.resize(r, ShufflerBehaviour::kHonest);

  CostLedger ledger;
  SequentialShuffleResult result;

  // --- Setup: key material -------------------------------------------------
  crypto::EciesKeyPair server_kp = crypto::EciesGenerateKeyPair(rng);
  std::vector<crypto::EciesKeyPair> shuffler_kps;
  shuffler_kps.reserve(r);
  // Onion layer order: shuffler 1 peels first, server last.
  std::vector<crypto::P256Point> layers;
  for (uint32_t j = 0; j < r; ++j) {
    shuffler_kps.push_back(crypto::EciesGenerateKeyPair(rng));
    layers.push_back(shuffler_kps.back().public_key);
  }
  layers.push_back(server_kp.public_key);

  const Bytes spot_key = rng->RandomBytes(32);

  // --- User phase: encode + onion encrypt ----------------------------------
  // Encoding stays a per-chunk loop (cheap, deterministic per seed); the
  // onion layers run through the batched ECIES path, which shares the
  // fixed-base comb, builds each recipient's wNAF table once, and batches
  // the affine conversions across all reports.
  std::vector<Bytes> in_flight;
  {
    ComputeScope scope(&ledger, Role::kUser);
    std::vector<Bytes> payloads(n);
    // Chunk boundaries are fixed by kEncodeChunk — never by the pool
    // size — so the per-chunk seeds (and hence every report) are
    // identical whether this runs serially or on any number of workers.
    const uint64_t base_seed = rng->NextU64();
    ForChunks(config.pool, 0, n, kEncodeChunk, [&](uint64_t lo, uint64_t hi) {
      const uint64_t seed = base_seed ^ (lo * 0x9E3779B97F4A7C15ULL);
      Rng local_rng(seed);
      crypto::SecureRandom local_sec(seed ^ 0x5331AFULL);
      for (uint64_t i = lo; i < hi; ++i) {
        ldp::LdpReport rep = oracle.Encode(values[i], &local_rng);
        payloads[i] = MakePayload(ldp::PackReport(rep), local_sec.NextU64());
      }
    });
    crypto::SecureRandom onion_rng = rng->Fork();
    in_flight =
        crypto::OnionEncryptBatch(layers, payloads, &onion_rng, config.pool);
  }

  // Spot-check dummies: the server plants accounts whose payloads it can
  // recognize. They are appended to the user stream (indistinguishable to
  // shufflers) and stripped by the streaming collector before estimation.
  std::vector<std::pair<ldp::LdpReport, uint64_t>> dummy_ids;
  {
    ComputeScope scope(&ledger, Role::kServer);
    Rng dummy_rng(rng->NextU64());
    std::vector<Bytes> dummy_payloads;
    for (uint64_t k = 0; k < config.spot_check_dummies; ++k) {
      ldp::LdpReport rep = oracle.MakeFakeReport(&dummy_rng);
      ByteWriter nonce;
      nonce.PutU64(k);
      auto mac = crypto::HmacSha256(spot_key, nonce.Release());
      uint64_t tag;
      std::memcpy(&tag, mac.data(), sizeof(tag));
      dummy_ids.emplace_back(rep, tag);
      dummy_payloads.push_back(MakePayload(ldp::PackReport(rep), tag));
    }
    std::vector<Bytes> dummy_blobs =
        crypto::OnionEncryptBatch(layers, dummy_payloads, rng, config.pool);
    in_flight.insert(in_flight.end(),
                     std::make_move_iterator(dummy_blobs.begin()),
                     std::make_move_iterator(dummy_blobs.end()));
  }

  // Users -> first shuffler.
  for (const Bytes& blob : in_flight) {
    ledger.RecordSend(Role::kUser, Role::kShuffler, blob.size());
  }

  // --- Shuffler chain -------------------------------------------------------
  const uint64_t fakes_per_shuffler =
      r == 0 ? 0 : config.fake_reports_total / r;
  uint64_t fakes_injected = 0;

  for (uint32_t j = 0; j < r; ++j) {
    ComputeScope scope(&ledger, Role::kShuffler);
    // Peel one onion layer from every blob (parallelizable).
    std::vector<Bytes> peeled(in_flight.size());
    std::mutex status_mu;
    Status peel_status = Status::OK();
    auto peel_range = [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        auto inner = crypto::OnionPeel(shuffler_kps[j].private_key,
                                       in_flight[i]);
        if (!inner.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          peel_status = inner.status();
          return;
        }
        peeled[i] = std::move(inner).value();
      }
    };
    if (config.pool != nullptr) {
      config.pool->ParallelFor(0, in_flight.size(),
                               [&](uint64_t lo, uint64_t hi) {
                                 peel_range(lo, hi);
                               });
    } else {
      peel_range(0, in_flight.size());
    }
    if (!peel_status.ok()) return peel_status;
    in_flight = std::move(peeled);

    // Malicious behaviours.
    Rng misc_rng(rng->NextU64());
    crypto::SecureRandom fake_sec = rng->Fork();
    std::vector<crypto::P256Point> remaining_layers(
        layers.begin() + j + 1, layers.end());
    switch (behaviours[j]) {
      case ShufflerBehaviour::kReplaceReports: {
        ldp::LdpReport target;
        target.value = static_cast<uint32_t>(config.poison_target_value);
        std::vector<Bytes> poison_payloads(in_flight.size());
        for (auto& payload : poison_payloads) {
          payload = MakePayload(ldp::PackReport(target), fake_sec.NextU64());
        }
        in_flight = crypto::OnionEncryptBatch(remaining_layers,
                                              poison_payloads, &fake_sec,
                                              config.pool);
        break;
      }
      case ShufflerBehaviour::kDropReports: {
        std::vector<Bytes> kept;
        for (size_t i = 0; i < in_flight.size(); ++i) {
          if (i % 2 == 0) kept.push_back(std::move(in_flight[i]));
        }
        in_flight = std::move(kept);
        break;
      }
      case ShufflerBehaviour::kHonest:
      case ShufflerBehaviour::kBiasedFakes:
        break;
    }

    // Inject fake reports (uniform if honest, biased if malicious).
    uint64_t quota = (j + 1 == r)
                         ? config.fake_reports_total - fakes_injected
                         : fakes_per_shuffler;
    std::vector<Bytes> fake_payloads(quota);
    for (uint64_t k = 0; k < quota; ++k) {
      ldp::LdpReport rep;
      if (behaviours[j] == ShufflerBehaviour::kBiasedFakes) {
        rep.value = static_cast<uint32_t>(config.poison_target_value);
      } else {
        rep = oracle.MakeFakeReport(&misc_rng);
      }
      fake_payloads[k] = MakePayload(ldp::PackReport(rep), fake_sec.NextU64());
    }
    std::vector<Bytes> fake_blobs = crypto::OnionEncryptBatch(
        remaining_layers, fake_payloads, &fake_sec, config.pool);
    in_flight.insert(in_flight.end(),
                     std::make_move_iterator(fake_blobs.begin()),
                     std::make_move_iterator(fake_blobs.end()));
    fakes_injected += quota;

    // Shuffle.
    Rng shuffle_rng(rng->NextU64());
    shuffle_rng.Shuffle(&in_flight);

    // Forward to the next hop.
    Role next = (j + 1 == r) ? Role::kServer : Role::kShuffler;
    for (const Bytes& blob : in_flight) {
      ledger.RecordSend(Role::kShuffler, next, blob.size());
    }
  }

  // --- Server: streaming peel + spot-check + count + estimate --------------
  // The monolithic peel-everything-then-count pass is replaced by the
  // sharded streaming pipeline: blobs are offered in fixed-size batches;
  // the collector's consumer fans ECIES decryption and domain-sharded
  // support counting out across the pool and strips the registered
  // spot-check dummies before estimation.
  {
    service::StreamingOptions stream_opts = config.streaming;
    stream_opts.pool = config.pool;
    service::StreamingCollector collector(oracle, stream_opts);
    collector.ExpectDummies(dummy_ids);

    auto blobs = std::make_shared<std::vector<Bytes>>(std::move(in_flight));
    const crypto::Scalar256 server_priv = server_kp.private_key;
    SHUFFLEDP_RETURN_NOT_OK(collector.OfferIndexed(
        blobs->size(),
        [blobs, server_priv](uint64_t row_index)
            -> Result<service::DecodedRow> {
          SHUFFLEDP_ASSIGN_OR_RETURN(
              Bytes payload,
              crypto::EciesDecrypt(server_priv, (*blobs)[row_index]));
          service::DecodedRow row;
          ByteReader reader(payload);
          auto packed = reader.GetU64();
          if (!packed.ok()) return row;  // short payload: drop, don't abort
          row.report = ldp::UnpackReport(*packed);
          auto tag = reader.GetU64();
          row.tag = tag.ok() ? *tag : 0;
          row.valid = true;
          return row;
        }));

    SHUFFLEDP_ASSIGN_OR_RETURN(
        service::RoundResult round,
        collector.FinishRound(n, config.fake_reports_total,
                              service::Calibration::kStandard));
    ledger.RecordCompute(Role::kServer, round.stats.busy_seconds);
    result.spot_check_passed = round.spot_check_passed;
    result.reports_at_server = round.reports_decoded;
    result.estimates = std::move(round.estimates);
    result.streaming = round.stats;
  }

  result.costs = SummarizeCosts(ledger, n, r);
  return result;
}

}  // namespace shuffle
}  // namespace shuffledp

#include "shuffle/sequential_shuffle.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>

#include "crypto/sha256.h"
#include "ldp/estimator.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace shuffledp {
namespace shuffle {

namespace {

// Payload carried inside the onion: packed report (8B) || tag (8B).
// Real users and fake reports use random tags; the server's spot-check
// dummies use HMAC-derived tags so the server can recognize its own
// payloads after shuffling (shufflers cannot distinguish them).
constexpr size_t kPayloadBytes = 16;

Bytes MakePayload(uint64_t packed_report, uint64_t tag) {
  ByteWriter w(kPayloadBytes);
  w.PutU64(packed_report);
  w.PutU64(tag);
  return w.Release();
}

}  // namespace

Result<SequentialShuffleResult> RunSequentialShuffle(
    const ldp::ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& values, const SequentialShuffleConfig& config,
    crypto::SecureRandom* rng) {
  const uint64_t n = values.size();
  const uint32_t r = config.num_shufflers;
  if (r == 0) {
    return Status::InvalidArgument("SS: need at least one shuffler");
  }
  if (n == 0) return Status::InvalidArgument("SS: empty dataset");
  std::vector<ShufflerBehaviour> behaviours = config.behaviours;
  behaviours.resize(r, ShufflerBehaviour::kHonest);

  CostLedger ledger;
  SequentialShuffleResult result;

  // --- Setup: key material -------------------------------------------------
  crypto::EciesKeyPair server_kp = crypto::EciesGenerateKeyPair(rng);
  std::vector<crypto::EciesKeyPair> shuffler_kps;
  shuffler_kps.reserve(r);
  // Onion layer order: shuffler 1 peels first, server last.
  std::vector<crypto::P256Point> layers;
  for (uint32_t j = 0; j < r; ++j) {
    shuffler_kps.push_back(crypto::EciesGenerateKeyPair(rng));
    layers.push_back(shuffler_kps.back().public_key);
  }
  layers.push_back(server_kp.public_key);

  const Bytes spot_key = rng->RandomBytes(32);

  // --- User phase: encode + onion encrypt ----------------------------------
  // Encoding stays a per-chunk loop (cheap, deterministic per seed); the
  // onion layers run through the batched ECIES path, which shares the
  // fixed-base comb, builds each recipient's wNAF table once, and batches
  // the affine conversions across all reports.
  std::vector<Bytes> in_flight;
  {
    ComputeScope scope(&ledger, Role::kUser);
    std::vector<Bytes> payloads(n);
    auto encode_range = [&](uint64_t lo, uint64_t hi, uint64_t seed) {
      Rng local_rng(seed);
      crypto::SecureRandom local_sec(seed ^ 0x5331AFULL);
      for (uint64_t i = lo; i < hi; ++i) {
        ldp::LdpReport rep = oracle.Encode(values[i], &local_rng);
        payloads[i] = MakePayload(ldp::PackReport(rep), local_sec.NextU64());
      }
    };
    if (config.pool != nullptr) {
      uint64_t base_seed = rng->NextU64();
      config.pool->ParallelFor(0, n, [&](uint64_t lo, uint64_t hi) {
        encode_range(lo, hi, base_seed ^ (lo * 0x9E3779B97F4A7C15ULL));
      });
    } else {
      encode_range(0, n, rng->NextU64());
    }
    crypto::SecureRandom onion_rng = rng->Fork();
    in_flight =
        crypto::OnionEncryptBatch(layers, payloads, &onion_rng, config.pool);
  }

  // Spot-check dummies: the server plants accounts whose payloads it can
  // recognize. They are appended to the user stream (indistinguishable to
  // shufflers) and removed by the server before estimation.
  std::vector<Bytes> dummy_payloads;
  {
    ComputeScope scope(&ledger, Role::kServer);
    Rng dummy_rng(rng->NextU64());
    for (uint64_t k = 0; k < config.spot_check_dummies; ++k) {
      ldp::LdpReport rep = oracle.MakeFakeReport(&dummy_rng);
      ByteWriter nonce;
      nonce.PutU64(k);
      auto mac = crypto::HmacSha256(spot_key, nonce.Release());
      uint64_t tag;
      std::memcpy(&tag, mac.data(), sizeof(tag));
      dummy_payloads.push_back(MakePayload(ldp::PackReport(rep), tag));
    }
    std::vector<Bytes> dummy_blobs =
        crypto::OnionEncryptBatch(layers, dummy_payloads, rng, config.pool);
    in_flight.insert(in_flight.end(),
                     std::make_move_iterator(dummy_blobs.begin()),
                     std::make_move_iterator(dummy_blobs.end()));
  }

  // Users -> first shuffler.
  for (const Bytes& blob : in_flight) {
    ledger.RecordSend(Role::kUser, Role::kShuffler, blob.size());
  }

  // --- Shuffler chain -------------------------------------------------------
  const uint64_t fakes_per_shuffler =
      r == 0 ? 0 : config.fake_reports_total / r;
  uint64_t fakes_injected = 0;

  for (uint32_t j = 0; j < r; ++j) {
    ComputeScope scope(&ledger, Role::kShuffler);
    // Peel one onion layer from every blob (parallelizable).
    std::vector<Bytes> peeled(in_flight.size());
    std::mutex status_mu;
    Status peel_status = Status::OK();
    auto peel_range = [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        auto inner = crypto::OnionPeel(shuffler_kps[j].private_key,
                                       in_flight[i]);
        if (!inner.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          peel_status = inner.status();
          return;
        }
        peeled[i] = std::move(inner).value();
      }
    };
    if (config.pool != nullptr) {
      config.pool->ParallelFor(0, in_flight.size(),
                               [&](uint64_t lo, uint64_t hi) {
                                 peel_range(lo, hi);
                               });
    } else {
      peel_range(0, in_flight.size());
    }
    if (!peel_status.ok()) return peel_status;
    in_flight = std::move(peeled);

    // Malicious behaviours.
    Rng misc_rng(rng->NextU64());
    crypto::SecureRandom fake_sec = rng->Fork();
    std::vector<crypto::P256Point> remaining_layers(
        layers.begin() + j + 1, layers.end());
    switch (behaviours[j]) {
      case ShufflerBehaviour::kReplaceReports: {
        ldp::LdpReport target;
        target.value = static_cast<uint32_t>(config.poison_target_value);
        std::vector<Bytes> poison_payloads(in_flight.size());
        for (auto& payload : poison_payloads) {
          payload = MakePayload(ldp::PackReport(target), fake_sec.NextU64());
        }
        in_flight = crypto::OnionEncryptBatch(remaining_layers,
                                              poison_payloads, &fake_sec,
                                              config.pool);
        break;
      }
      case ShufflerBehaviour::kDropReports: {
        std::vector<Bytes> kept;
        for (size_t i = 0; i < in_flight.size(); ++i) {
          if (i % 2 == 0) kept.push_back(std::move(in_flight[i]));
        }
        in_flight = std::move(kept);
        break;
      }
      case ShufflerBehaviour::kHonest:
      case ShufflerBehaviour::kBiasedFakes:
        break;
    }

    // Inject fake reports (uniform if honest, biased if malicious).
    uint64_t quota = (j + 1 == r)
                         ? config.fake_reports_total - fakes_injected
                         : fakes_per_shuffler;
    std::vector<Bytes> fake_payloads(quota);
    for (uint64_t k = 0; k < quota; ++k) {
      ldp::LdpReport rep;
      if (behaviours[j] == ShufflerBehaviour::kBiasedFakes) {
        rep.value = static_cast<uint32_t>(config.poison_target_value);
      } else {
        rep = oracle.MakeFakeReport(&misc_rng);
      }
      fake_payloads[k] = MakePayload(ldp::PackReport(rep), fake_sec.NextU64());
    }
    std::vector<Bytes> fake_blobs = crypto::OnionEncryptBatch(
        remaining_layers, fake_payloads, &fake_sec, config.pool);
    in_flight.insert(in_flight.end(),
                     std::make_move_iterator(fake_blobs.begin()),
                     std::make_move_iterator(fake_blobs.end()));
    fakes_injected += quota;

    // Shuffle.
    Rng shuffle_rng(rng->NextU64());
    shuffle_rng.Shuffle(&in_flight);

    // Forward to the next hop.
    Role next = (j + 1 == r) ? Role::kServer : Role::kShuffler;
    for (const Bytes& blob : in_flight) {
      ledger.RecordSend(Role::kShuffler, next, blob.size());
    }
  }

  // --- Server: peel, spot-check, estimate ----------------------------------
  std::vector<ldp::LdpReport> reports;
  {
    ComputeScope scope(&ledger, Role::kServer);
    std::vector<Bytes> payloads(in_flight.size());
    std::mutex status_mu;
    Status peel_status = Status::OK();
    auto peel_range = [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        auto payload =
            crypto::EciesDecrypt(server_kp.private_key, in_flight[i]);
        if (!payload.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          peel_status = payload.status();
          return;
        }
        payloads[i] = std::move(payload).value();
      }
    };
    if (config.pool != nullptr) {
      config.pool->ParallelFor(0, in_flight.size(),
                               [&](uint64_t lo, uint64_t hi) {
                                 peel_range(lo, hi);
                               });
    } else {
      peel_range(0, in_flight.size());
    }
    if (!peel_status.ok()) return peel_status;

    // Multiset of payload bytes for spot checking and dummy removal.
    std::map<Bytes, uint64_t> multiset;
    for (const Bytes& p : payloads) ++multiset[p];
    for (const Bytes& dummy : dummy_payloads) {
      auto it = multiset.find(dummy);
      if (it == multiset.end() || it->second == 0) {
        result.spot_check_passed = false;
      } else {
        --it->second;  // remove the dummy before estimation
      }
    }

    reports.reserve(payloads.size());
    for (const auto& [payload, count] : multiset) {
      ByteReader reader(payload);
      auto packed = reader.GetU64();
      if (!packed.ok()) continue;
      ldp::LdpReport rep = ldp::UnpackReport(*packed);
      if (!oracle.ValidateReport(rep).ok()) continue;
      for (uint64_t c = 0; c < count; ++c) reports.push_back(rep);
    }
    result.reports_at_server = reports.size();

    auto supports =
        ldp::SupportCountsFullDomain(oracle, reports, config.pool);
    result.estimates = ldp::CalibrateEstimates(oracle, supports, n,
                                               config.fake_reports_total);
  }

  result.costs = SummarizeCosts(ledger, n, r);
  return result;
}

}  // namespace shuffle
}  // namespace shuffledp

// SS — sequential shuffling with onion encryption (paper §VI-A1, evaluated
// as the baseline protocol in Table III).
//
// Users onion-encrypt their LDP report for the chain
// shuffler_1 -> ... -> shuffler_r -> server. Each shuffler peels one
// layer, injects n_r / r fake reports (encrypted under the remaining
// layers), shuffles, and forwards. The server peels the last layer and
// estimates. The protocol's two weaknesses — shufflers can bias their
// fake reports and can replace user reports — are reproducible through
// the malicious-behaviour knobs, and the spot-checking mitigation (server
// plants dummy accounts) is implemented as described.

#ifndef SHUFFLEDP_SHUFFLE_SEQUENTIAL_SHUFFLE_H_
#define SHUFFLEDP_SHUFFLE_SEQUENTIAL_SHUFFLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/ecies.h"
#include "crypto/secure_random.h"
#include "ldp/frequency_oracle.h"
#include "service/streaming_collector.h"
#include "shuffle/cost_model.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace shuffle {

/// Ways a shuffler can deviate (for the robustness experiments).
enum class ShufflerBehaviour {
  kHonest,
  kBiasedFakes,     ///< draws all fake reports as a fixed target value
  kReplaceReports,  ///< replaces user reports with the target value
  kDropReports,     ///< silently drops half of the reports
};

/// SS protocol configuration.
struct SequentialShuffleConfig {
  uint32_t num_shufflers = 3;
  uint64_t fake_reports_total = 0;       ///< n_r, split evenly
  uint64_t spot_check_dummies = 0;       ///< server-planted dummy accounts
  uint64_t poison_target_value = 0;      ///< used by malicious behaviours
  std::vector<ShufflerBehaviour> behaviours;  ///< per shuffler; default honest
  ThreadPool* pool = nullptr;            ///< parallel user encryption
  /// Server-side ingestion pipeline knobs (batch size, queue capacity,
  /// shard count, crash-safe `streaming.checkpoint` persistence).
  /// `streaming.pool` is ignored — the server pipeline shares `pool`.
  service::StreamingOptions streaming;
};

/// Result of one SS collection round.
struct SequentialShuffleResult {
  std::vector<double> estimates;       ///< frequency estimates over [0, d)
  bool spot_check_passed = true;       ///< all dummies arrived untampered
  uint64_t reports_at_server = 0;      ///< |reports| after the last peel
  CostReport costs;
  service::StreamingStats streaming;   ///< server ingestion pipeline stats
};

/// Runs the full SS protocol over `values` with the given oracle.
///
/// The estimation de-biases both the fake reports and (when spot checks
/// are planted) the dummy reports; a failed spot check is reported but
/// estimation still proceeds so callers can observe the poisoned result.
Result<SequentialShuffleResult> RunSequentialShuffle(
    const ldp::ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& values, const SequentialShuffleConfig& config,
    crypto::SecureRandom* rng);

}  // namespace shuffle
}  // namespace shuffledp

#endif  // SHUFFLEDP_SHUFFLE_SEQUENTIAL_SHUFFLE_H_

// Byte-level serialization used by the protocol layer.
//
// Every message that crosses a simulated network channel is serialized
// through ByteWriter / ByteReader so that the communication accounting in
// Table III measures real wire bytes, not in-memory object sizes.
// Integers are little-endian fixed width or LEB128 varints.

#ifndef SHUFFLEDP_UTIL_BYTES_H_
#define SHUFFLEDP_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace shuffledp {

using Bytes = std::vector<uint8_t>;

/// Appends primitive values to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Reserves capacity up-front to avoid reallocation in hot loops.
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v); }
  void PutU32(uint32_t v) { PutLittleEndian(v); }
  void PutU64(uint64_t v) { PutLittleEndian(v); }

  /// LEB128 unsigned varint (1-10 bytes).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Raw bytes without a length prefix.
  void PutBytes(const uint8_t* data, size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }
  void PutBytes(const Bytes& data) { PutBytes(data.data(), data.size()); }

  /// Length-prefixed (varint) byte string.
  void PutLengthPrefixed(const Bytes& data) {
    PutVarint(data.size());
    PutBytes(data);
  }
  void PutLengthPrefixed(const std::string& data) {
    PutVarint(data.size());
    PutBytes(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  /// IEEE-754 double, little-endian bit pattern.
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  size_t size() const { return buf_.size(); }
  const Bytes& data() const { return buf_; }
  Bytes Release() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Sequentially decodes a byte buffer; every accessor checks bounds and
/// returns DataLoss on truncation.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : p_(data), end_(data + len) {}
  explicit ByteReader(const Bytes& data)
      : ByteReader(data.data(), data.size()) {}

  Result<uint8_t> GetU8() {
    if (Remaining() < 1) return Truncated("u8");
    return *p_++;
  }
  Result<uint16_t> GetU16() { return GetLittleEndian<uint16_t>(); }
  Result<uint32_t> GetU32() { return GetLittleEndian<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetLittleEndian<uint64_t>(); }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (p_ < end_ && shift < 64) {
      uint8_t b = *p_++;
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
    return Truncated("varint");
  }

  Result<Bytes> GetBytes(size_t len) {
    if (Remaining() < len) return Truncated("bytes");
    Bytes out(p_, p_ + len);
    p_ += len;
    return out;
  }

  Result<Bytes> GetLengthPrefixed() {
    auto len = GetVarint();
    if (!len.ok()) return len.status();
    return GetBytes(static_cast<size_t>(*len));
  }

  Result<double> GetDouble() {
    auto bits = GetU64();
    if (!bits.ok()) return bits.status();
    double v;
    uint64_t b = *bits;
    std::memcpy(&v, &b, sizeof(v));
    return v;
  }

  size_t Remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

 private:
  template <typename T>
  Result<T> GetLittleEndian() {
    if (Remaining() < sizeof(T)) return Truncated("fixed int");
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(p_[i]) << (8 * i);
    }
    p_ += sizeof(T);
    return v;
  }

  static Status Truncated(const char* what) {
    return Status::DataLoss(std::string("truncated payload reading ") + what);
  }

  const uint8_t* p_;
  const uint8_t* end_;
};

/// Hex encoding for debugging and test vectors.
std::string ToHex(const Bytes& data);

/// Parses a hex string (no separators). Returns DataLoss on bad input.
Result<Bytes> FromHex(const std::string& hex);

}  // namespace shuffledp

#endif  // SHUFFLEDP_UTIL_BYTES_H_

#include "util/hash.h"

#include <cstring>

namespace shuffledp {
namespace {

constexpr uint64_t kPrime64_1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime64_2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime64_3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime64_4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime64_5 = 0x27D4EB2F165667C5ULL;

constexpr uint32_t kPrime32_1 = 0x9E3779B1U;
constexpr uint32_t kPrime32_2 = 0x85EBCA77U;
constexpr uint32_t kPrime32_3 = 0xC2B2AE3DU;
constexpr uint32_t kPrime32_4 = 0x27D4EB2FU;
constexpr uint32_t kPrime32_5 = 0x165667B1U;

inline uint64_t Rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }
inline uint32_t Rotl32(uint32_t x, int r) { return (x << r) | (x >> (32 - r)); }

inline uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian host assumed (x86-64 / aarch64)
}

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round64(uint64_t acc, uint64_t input) {
  acc += input * kPrime64_2;
  acc = Rotl64(acc, 31);
  acc *= kPrime64_1;
  return acc;
}

inline uint64_t MergeRound64(uint64_t acc, uint64_t val) {
  val = Round64(0, val);
  acc ^= val;
  acc = acc * kPrime64_1 + kPrime64_4;
  return acc;
}

}  // namespace

uint64_t XxHash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + len;
  uint64_t h64;

  if (len >= 32) {
    const uint8_t* limit = end - 32;
    uint64_t v1 = seed + kPrime64_1 + kPrime64_2;
    uint64_t v2 = seed + kPrime64_2;
    uint64_t v3 = seed + 0;
    uint64_t v4 = seed - kPrime64_1;
    do {
      v1 = Round64(v1, Read64(p));
      p += 8;
      v2 = Round64(v2, Read64(p));
      p += 8;
      v3 = Round64(v3, Read64(p));
      p += 8;
      v4 = Round64(v4, Read64(p));
      p += 8;
    } while (p <= limit);

    h64 = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h64 = MergeRound64(h64, v1);
    h64 = MergeRound64(h64, v2);
    h64 = MergeRound64(h64, v3);
    h64 = MergeRound64(h64, v4);
  } else {
    h64 = seed + kPrime64_5;
  }

  h64 += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    uint64_t k1 = Round64(0, Read64(p));
    h64 ^= k1;
    h64 = Rotl64(h64, 27) * kPrime64_1 + kPrime64_4;
    p += 8;
  }
  if (p + 4 <= end) {
    h64 ^= static_cast<uint64_t>(Read32(p)) * kPrime64_1;
    h64 = Rotl64(h64, 23) * kPrime64_2 + kPrime64_3;
    p += 4;
  }
  while (p < end) {
    h64 ^= static_cast<uint64_t>(*p) * kPrime64_5;
    h64 = Rotl64(h64, 11) * kPrime64_1;
    ++p;
  }

  h64 ^= h64 >> 33;
  h64 *= kPrime64_2;
  h64 ^= h64 >> 29;
  h64 *= kPrime64_3;
  h64 ^= h64 >> 32;
  return h64;
}

uint32_t XxHash32(const void* data, size_t len, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + len;
  uint32_t h32;

  if (len >= 16) {
    const uint8_t* limit = end - 16;
    uint32_t v1 = seed + kPrime32_1 + kPrime32_2;
    uint32_t v2 = seed + kPrime32_2;
    uint32_t v3 = seed + 0;
    uint32_t v4 = seed - kPrime32_1;
    do {
      v1 = Rotl32(v1 + Read32(p) * kPrime32_2, 13) * kPrime32_1;
      p += 4;
      v2 = Rotl32(v2 + Read32(p) * kPrime32_2, 13) * kPrime32_1;
      p += 4;
      v3 = Rotl32(v3 + Read32(p) * kPrime32_2, 13) * kPrime32_1;
      p += 4;
      v4 = Rotl32(v4 + Read32(p) * kPrime32_2, 13) * kPrime32_1;
      p += 4;
    } while (p <= limit);
    h32 = Rotl32(v1, 1) + Rotl32(v2, 7) + Rotl32(v3, 12) + Rotl32(v4, 18);
  } else {
    h32 = seed + kPrime32_5;
  }

  h32 += static_cast<uint32_t>(len);

  while (p + 4 <= end) {
    h32 += Read32(p) * kPrime32_3;
    h32 = Rotl32(h32, 17) * kPrime32_4;
    p += 4;
  }
  while (p < end) {
    h32 += static_cast<uint32_t>(*p) * kPrime32_5;
    h32 = Rotl32(h32, 11) * kPrime32_1;
    ++p;
  }

  h32 ^= h32 >> 15;
  h32 *= kPrime32_2;
  h32 ^= h32 >> 13;
  h32 *= kPrime32_3;
  h32 ^= h32 >> 16;
  return h32;
}

namespace {

// Byte-at-a-time table for the reflected IEEE polynomial, built once.
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const Crc32Table table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFU;
  for (size_t i = 0; i < len; ++i) {
    c = table.entries[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace shuffledp

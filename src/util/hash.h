// xxHash32 / xxHash64 (from scratch) and the universal-hash wrapper used by
// the local-hashing frequency oracles (OLH / SOLH).
//
// Local hashing reports a pair <seed, GRR(H_seed(v))>; the seed identifies a
// member of the hash family. We instantiate the family as
//   H_seed(v) = xxhash64(v, seed) mod d'
// exactly as in the paper's implementation ("we use 32 bits to denote the
// seed of the hash function").

#ifndef SHUFFLEDP_UTIL_HASH_H_
#define SHUFFLEDP_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace shuffledp {

/// xxHash64 of `data[0..len)` with `seed`. Matches the reference vectors of
/// the xxHash specification.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed);

/// xxHash32 of `data[0..len)` with `seed`.
uint32_t XxHash32(const void* data, size_t len, uint32_t seed);

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of
/// `data[0..len)`. Guards the transport frames and checkpoint files in
/// src/service/ against torn writes and corruption; matches zlib's
/// crc32() so payloads can be cross-checked with standard tooling.
/// `seed` chains incremental computations (pass the previous return
/// value); 0 starts a fresh checksum.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Convenience overloads.
inline uint64_t XxHash64(std::string_view s, uint64_t seed) {
  return XxHash64(s.data(), s.size(), seed);
}
inline uint32_t XxHash32(std::string_view s, uint32_t seed) {
  return XxHash32(s.data(), s.size(), seed);
}

/// Straight-line xxHash64 specialization for an exactly-8-byte
/// little-endian key — the only shape the local-hashing oracles ever
/// hash. The generic XxHash64 length dispatch (len < 32 header, one
/// 8-byte round, no 4-/1-byte tail) collapses to the ~dozen operations
/// below; the result is bitwise identical to
/// `XxHash64(&key, sizeof(key), seed)` (pinned by tests/util/hash_test
/// and tests/ldp/support_kernel_test). The bulk support-aggregation
/// kernels (ldp/support_kernels.h) evaluate this same sequence
/// lane-parallel; keep the two in sync.
inline uint64_t XxHash64Key8(uint64_t key, uint64_t seed) {
  constexpr uint64_t kP1 = 0x9E3779B185EBCA87ULL;
  constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
  constexpr uint64_t kP3 = 0x165667B19E3779F9ULL;
  constexpr uint64_t kP4 = 0x85EBCA77C2B2AE63ULL;
  constexpr uint64_t kP5 = 0x27D4EB2F165667C5ULL;
  auto rotl = [](uint64_t x, int r) {
    return (x << r) | (x >> (64 - r));
  };
  uint64_t k1 = rotl(key * kP2, 31) * kP1;
  uint64_t h = (seed + kP5 + 8) ^ k1;
  h = rotl(h, 27) * kP1 + kP4;
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

/// Universal hash used by OLH/SOLH: maps `value` in [0, d) to [0, range)
/// under the family member identified by `seed`.
///
/// For a fixed value, varying the seed gives (empirically) pairwise-
/// independent outputs, which is the property the estimator calibration
/// (Eq. 3) relies on: Pr_seed[H(v) = H(v')] = 1/range for v != v'.
inline uint32_t UniversalHash(uint64_t value, uint32_t seed, uint32_t range) {
  return static_cast<uint32_t>(XxHash64Key8(value, seed) % range);
}

}  // namespace shuffledp

#endif  // SHUFFLEDP_UTIL_HASH_H_

#include "util/math.h"

#include <cmath>
#include <limits>
#include <numeric>

namespace shuffledp {

double Comb(uint64_t n, uint64_t k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  if (k == 0) return 1.0;
  if (n < 60) {
    double r = 1.0;
    for (uint64_t i = 0; i < k; ++i) {
      r = r * static_cast<double>(n - i) / static_cast<double>(i + 1);
    }
    return r;
  }
  return std::exp(LogComb(n, k));
}

double LogComb(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  double nd = static_cast<double>(n), kd = static_cast<double>(k);
  return std::lgamma(nd + 1.0) - std::lgamma(kd + 1.0) -
         std::lgamma(nd - kd + 1.0);
}

uint64_t CombU64(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t r = 1;
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t num = n - i;
    uint64_t den = i + 1;
    // r * num may overflow; divide first where exact.
    uint64_t g = std::gcd(num, den);
    num /= g;
    den /= g;
    g = std::gcd(r, den);
    r /= g;
    den /= g;
    if (den != 1) return UINT64_MAX;  // should not happen for valid nCr
    if (num != 0 && r > UINT64_MAX / num) return UINT64_MAX;
    r *= num;
  }
  return r;
}

uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

int Log2Exact(uint64_t pow2) {
  int l = 0;
  while (pow2 > 1) {
    pow2 >>= 1;
    ++l;
  }
  return l;
}

double BernoulliKl(double q, double p) {
  const double eps = 1e-300;
  double a = (q <= 0.0) ? 0.0 : q * std::log(q / std::max(p, eps));
  double b = (q >= 1.0) ? 0.0
                        : (1.0 - q) * std::log((1.0 - q) /
                                               std::max(1.0 - p, eps));
  return a + b;
}

double BinomialUpperTail(uint64_t n, double p, double a) {
  double nd = static_cast<double>(n);
  if (a <= nd * p) return 1.0;
  if (a >= nd) return std::pow(p, nd);
  return std::exp(-nd * BernoulliKl(a / nd, p));
}

double BinomialLowerTail(uint64_t n, double p, double a) {
  double nd = static_cast<double>(n);
  if (a >= nd * p) return 1.0;
  if (a <= 0.0) return std::pow(1.0 - p, nd);
  return std::exp(-nd * BernoulliKl(a / nd, p));
}

double GoldenSectionMinimize(double lo, double hi,
                             const std::vector<double>* /*unused*/,
                             double (*f)(double, const void*), const void* ctx,
                             double tol) {
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - gr * (b - a);
  double d = a + gr * (b - a);
  double fc = f(c, ctx), fd = f(d, ctx);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - gr * (b - a);
      fc = f(c, ctx);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + gr * (b - a);
      fd = f(d, ctx);
    }
  }
  return (a + b) / 2.0;
}

double BinarySearchLargest(double lo, double hi,
                           bool (*pred)(double, const void*), const void* ctx,
                           double tol) {
  if (!pred(lo, ctx)) return lo;
  if (pred(hi, ctx)) return hi;
  while (hi - lo > tol * std::max(1.0, std::fabs(lo))) {
    double mid = 0.5 * (lo + hi);
    if (pred(mid, ctx)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace shuffledp

// Small numeric helpers shared across the privacy-analysis code.

#ifndef SHUFFLEDP_UTIL_MATH_H_
#define SHUFFLEDP_UTIL_MATH_H_

#include <cstdint>
#include <vector>

namespace shuffledp {

/// n choose k as a double (exact for small arguments, lgamma-based
/// otherwise). Returns +inf on overflow.
double Comb(uint64_t n, uint64_t k);

/// ln(n choose k) via lgamma; returns -inf for k > n.
double LogComb(uint64_t n, uint64_t k);

/// n choose k as exact uint64; saturates at UINT64_MAX on overflow.
uint64_t CombU64(uint64_t n, uint64_t k);

/// Smallest power of two >= v (v = 0 maps to 1).
uint64_t NextPow2(uint64_t v);

/// Integer log2 of a power of two.
int Log2Exact(uint64_t pow2);

/// Chernoff upper bound on Pr[Bin(n, p) >= a], a >= n*p:
/// exp(-n * KL(a/n || p)). Returns 1.0 when a <= n*p.
double BinomialUpperTail(uint64_t n, double p, double a);

/// Chernoff upper bound on Pr[Bin(n, p) <= a], a <= n*p.
double BinomialLowerTail(uint64_t n, double p, double a);

/// Kullback-Leibler divergence KL(q || p) for Bernoulli parameters.
double BernoulliKl(double q, double p);

/// Golden-section minimization of a unimodal function on [lo, hi].
/// Returns the minimizing x with absolute tolerance `tol`.
double GoldenSectionMinimize(double lo, double hi,
                             const std::vector<double>* unused,
                             double (*f)(double, const void*), const void* ctx,
                             double tol = 1e-9);

/// Binary search for the largest x in [lo, hi] with pred(x) true, assuming
/// pred is monotone non-increasing in x. Returns lo if pred(lo) is false.
double BinarySearchLargest(double lo, double hi, bool (*pred)(double, const void*),
                           const void* ctx, double tol = 1e-12);

}  // namespace shuffledp

#endif  // SHUFFLEDP_UTIL_MATH_H_

#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace shuffledp {
namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro requires a nonzero state; SplitMix64 of any seed yields one with
  // overwhelming probability, but guard the degenerate case anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDoublePositive() {
  return (static_cast<double>(NextU64() >> 11) + 1.0) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

namespace {

// BINV: sequential CDF inversion, O(n*p) expected time.
uint64_t BinomialInversion(Rng* rng, uint64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  double r = std::pow(q, static_cast<double>(n));  // P(X = 0)
  double u = rng->UniformDouble();
  uint64_t x = 0;
  // The loop terminates because r eventually underflows past u; cap defends
  // against pathological floating-point corner cases.
  while (u > r && x < n) {
    u -= r;
    ++x;
    r *= (a / static_cast<double>(x)) - s;
    if (r <= 0.0) break;
  }
  return x;
}

// BTRS (Hormann 1993): transformed rejection, O(1) for n*p >= 10, p <= 0.5.
uint64_t BinomialBtrs(Rng* rng, uint64_t n, double p) {
  const double nd = static_cast<double>(n);
  const double spq = std::sqrt(nd * p * (1.0 - p));
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(p / (1.0 - p));
  const double m = std::floor((nd + 1.0) * p);  // mode
  const double h =
      std::lgamma(m + 1.0) + std::lgamma(nd - m + 1.0);

  for (;;) {
    double u = rng->UniformDouble() - 0.5;
    double v = rng->UniformDouble();
    double us = 0.5 - std::fabs(u);
    double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<uint64_t>(kd);
    v = std::log(v * alpha / (a / (us * us) + b));
    double bound = h - std::lgamma(kd + 1.0) - std::lgamma(nd - kd + 1.0) +
                   (kd - m) * lpq;
    if (v <= bound) return static_cast<uint64_t>(kd);
  }
}

}  // namespace

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const bool flipped = p > 0.5;
  const double pp = flipped ? 1.0 - p : p;
  uint64_t x;
  if (static_cast<double>(n) * pp < 10.0) {
    x = BinomialInversion(this, n, pp);
  } else {
    x = BinomialBtrs(this, n, pp);
  }
  return flipped ? n - x : x;
}

double Rng::Laplace(double scale) {
  double u = UniformDouble() - 0.5;
  double sign = (u >= 0.0) ? 1.0 : -1.0;
  double mag = std::fabs(u);
  // Guard against log(0) when |u| == 0.5 exactly.
  double inner = 1.0 - 2.0 * mag;
  if (inner <= 0.0) inner = 0x1.0p-53;
  return -scale * sign * std::log(inner);
}

double Rng::Gaussian() {
  // Marsaglia polar method, one deviate returned per call (second discarded
  // to keep the generator state deterministic per call count).
  for (;;) {
    double x = 2.0 * UniformDouble() - 1.0;
    double y = 2.0 * UniformDouble() - 1.0;
    double s = x * x + y * y;
    if (s > 0.0 && s < 1.0) {
      return x * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

uint64_t Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = UniformDoublePositive();
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected time and memory.
  std::unordered_set<uint64_t> chosen;
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = UniformU64(j + 1);
    if (chosen.count(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace shuffledp

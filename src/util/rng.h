// Deterministic pseudo-random generation and distribution samplers.
//
// All simulation randomness in the library flows through `Rng` so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via SplitMix64; distribution samplers cover everything
// the paper's mechanisms need (Bernoulli, binomial, Laplace, geometric,
// uniform, permutations).
//
// NOTE: `Rng` is NOT cryptographically secure. Protocol code that needs
// unpredictable randomness (key generation, secret shares) uses
// crypto::SecureRandom, which may be seeded from an Rng only in tests.

#ifndef SHUFFLEDP_UTIL_RNG_H_
#define SHUFFLEDP_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace shuffledp {

/// xoshiro256** PRNG with SplitMix64 seeding and distribution samplers.
///
/// Not thread-safe; use one instance per thread (see `Rng::Fork`).
class Rng {
 public:
  /// Seeds the four 256-bit state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5DEECE66DULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextU64();

  /// Returns an unbiased uniform integer in [0, bound). Pre: bound > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Pre: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Returns a uniform double in (0, 1] (never exactly zero; safe for log()).
  double UniformDoublePositive();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a Binomial(n, p) sample.
  ///
  /// Uses BINV inversion for n*min(p,1-p) < 10 and Hormann's BTRS
  /// transformed-rejection algorithm otherwise, so it is exact and O(1)
  /// amortized even for n = 10^9.
  uint64_t Binomial(uint64_t n, double p);

  /// Returns a Laplace(0, scale) sample.
  double Laplace(double scale);

  /// Returns a standard normal sample (Marsaglia polar method).
  double Gaussian();

  /// Returns a Geometric sample: number of failures before first success
  /// with success probability `p` in (0, 1].
  uint64_t Geometric(double p);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->size() < 2) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Returns a uniformly random permutation of [0, n).
  std::vector<uint32_t> Permutation(uint32_t n);

  /// Returns `k` distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Derives an independent child generator (for per-thread use).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace shuffledp

#endif  // SHUFFLEDP_UTIL_RNG_H_

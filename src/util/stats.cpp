#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace shuffledp {

double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& estimate) {
  assert(truth.size() == estimate.size());
  if (truth.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double d = truth[i] - estimate[i];
    sum += d * d;
  }
  return sum / static_cast<double>(truth.size());
}

double MeanSquaredErrorAt(const std::vector<double>& truth,
                          const std::vector<double>& estimate,
                          const std::vector<uint64_t>& eval_points) {
  assert(truth.size() == estimate.size());
  if (eval_points.empty()) return 0.0;
  double sum = 0.0;
  for (uint64_t v : eval_points) {
    assert(v < truth.size());
    double d = truth[v] - estimate[v];
    sum += d * d;
  }
  return sum / static_cast<double>(eval_points.size());
}

double TopKPrecision(const std::vector<uint64_t>& predicted,
                     const std::vector<uint64_t>& truth) {
  if (truth.empty()) return 0.0;
  std::unordered_set<uint64_t> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (uint64_t v : predicted) {
    if (truth_set.count(v)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

namespace {

// Lower regularized incomplete gamma P(a, x) by its power series; valid
// (fast-converging) for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double term = 1.0 / a;
  double sum = term;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper regularized incomplete gamma Q(a, x) by Lentz's continued
// fraction; valid for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedGammaQ(double a, double x) {
  if (x <= 0.0) return 1.0;
  if (a <= 0.0) return 0.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquarePValue(double stat, double dof) {
  if (dof <= 0.0) return 1.0;
  if (std::isinf(stat)) return 0.0;  // impossible observation
  return RegularizedGammaQ(dof / 2.0, stat / 2.0);
}

namespace {

// Pearson statistic plus the number of cells it actually included, so
// the goodness-of-fit dof is derived from the same inclusion rule. A
// count landing in a cell with (near-)zero expected mass is an outright
// rejection: stat = +inf.
struct ChiSquareAccumulation {
  double stat = 0.0;
  size_t included_cells = 0;
};

ChiSquareAccumulation AccumulateChiSquare(
    const std::vector<uint64_t>& observed,
    const std::vector<double>& expected_probs) {
  assert(observed.size() == expected_probs.size());
  ChiSquareAccumulation acc;
  uint64_t total = 0;
  double prob_mass = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    total += observed[i];
    prob_mass += expected_probs[i];
  }
  if (total == 0 || prob_mass <= 0.0) return acc;
  for (size_t i = 0; i < observed.size(); ++i) {
    double expected =
        static_cast<double>(total) * expected_probs[i] / prob_mass;
    if (expected < 1e-12) {
      if (observed[i] > 0) {
        acc.stat = std::numeric_limits<double>::infinity();
        return acc;
      }
      continue;
    }
    ++acc.included_cells;
    double diff = static_cast<double>(observed[i]) - expected;
    acc.stat += diff * diff / expected;
  }
  return acc;
}

}  // namespace

double ChiSquareStat(const std::vector<uint64_t>& observed,
                     const std::vector<double>& expected_probs) {
  return AccumulateChiSquare(observed, expected_probs).stat;
}

double ChiSquareGofPValue(const std::vector<uint64_t>& observed,
                          const std::vector<double>& expected_probs) {
  ChiSquareAccumulation acc = AccumulateChiSquare(observed, expected_probs);
  if (std::isinf(acc.stat)) return 0.0;  // count in an impossible cell
  if (acc.included_cells < 2) return 1.0;
  return ChiSquarePValue(acc.stat,
                         static_cast<double>(acc.included_cells - 1));
}

double TwoSampleKsStat(const std::vector<double>& a,
                       const std::vector<double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::vector<double> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  size_t i = 0, j = 0;
  double d_max = 0.0;
  while (i < sa.size() && j < sb.size()) {
    double x = std::min(sa[i], sb[j]);
    // Advance past ties so both CDFs are evaluated *after* the jump at x.
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    double diff =
        std::fabs(static_cast<double>(i) / na - static_cast<double>(j) / nb);
    d_max = std::max(d_max, diff);
  }
  return d_max;
}

double TwoSampleKsPValue(double d_stat, size_t n, size_t m) {
  if (n == 0 || m == 0) return 1.0;
  const double ne = static_cast<double>(n) * static_cast<double>(m) /
                    static_cast<double>(n + m);
  double lambda = d_stat * std::sqrt(ne);
  if (lambda < 1e-9) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int jj = 1; jj <= 100; ++jj) {
    double term = std::exp(-2.0 * jj * jj * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::min(1.0, std::max(0.0, 2.0 * sum));
}

}  // namespace shuffledp

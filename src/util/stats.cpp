#include "util/stats.h"

#include <cassert>
#include <unordered_set>

namespace shuffledp {

double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& estimate) {
  assert(truth.size() == estimate.size());
  if (truth.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double d = truth[i] - estimate[i];
    sum += d * d;
  }
  return sum / static_cast<double>(truth.size());
}

double MeanSquaredErrorAt(const std::vector<double>& truth,
                          const std::vector<double>& estimate,
                          const std::vector<uint64_t>& eval_points) {
  assert(truth.size() == estimate.size());
  if (eval_points.empty()) return 0.0;
  double sum = 0.0;
  for (uint64_t v : eval_points) {
    assert(v < truth.size());
    double d = truth[v] - estimate[v];
    sum += d * d;
  }
  return sum / static_cast<double>(eval_points.size());
}

double TopKPrecision(const std::vector<uint64_t>& predicted,
                     const std::vector<uint64_t>& truth) {
  if (truth.empty()) return 0.0;
  std::unordered_set<uint64_t> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (uint64_t v : predicted) {
    if (truth_set.count(v)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace shuffledp

// Streaming statistics used by the benchmark harness and tests.

#ifndef SHUFFLEDP_UTIL_STATS_H_
#define SHUFFLEDP_UTIL_STATS_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace shuffledp {

/// Welford single-pass mean / variance accumulator.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  double stderr_mean() const {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean squared error between an estimated and a true frequency vector:
///   MSE = (1/|D|) * sum_v (f_v - f~_v)^2            (paper Section VII-A)
double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& estimate);

/// MSE restricted to the domain points in `eval_points` (unbiased estimate
/// of the full-domain MSE when the points are sampled uniformly).
double MeanSquaredErrorAt(const std::vector<double>& truth,
                          const std::vector<double>& estimate,
                          const std::vector<uint64_t>& eval_points);

/// Precision of a predicted top-k set against the true top-k set:
/// |predicted ∩ truth| / k (the Figure 4 metric).
double TopKPrecision(const std::vector<uint64_t>& predicted,
                     const std::vector<uint64_t>& truth);

// --- Goodness-of-fit machinery (distribution-conformance tests) -----------

/// Regularized upper incomplete gamma Q(a, x) = Γ(a, x)/Γ(a), a > 0,
/// x >= 0. Series expansion for x < a + 1, continued fraction otherwise
/// (Numerical Recipes style; absolute error < 1e-12 over the tested range).
double RegularizedGammaQ(double a, double x);

/// Upper-tail p-value of a chi-square statistic with `dof` degrees of
/// freedom: Pr[X >= stat] = Q(dof/2, stat/2).
double ChiSquarePValue(double stat, double dof);

/// Pearson chi-square statistic of observed category counts against
/// expected cell probabilities (cells with expected count < 1e-12 are
/// skipped; `expected_probs` need not be normalized — it is rescaled to
/// sum to 1). Pre: observed.size() == expected_probs.size().
double ChiSquareStat(const std::vector<uint64_t>& observed,
                     const std::vector<double>& expected_probs);

/// One-call goodness-of-fit p-value: ChiSquareStat with dof = cells − 1.
double ChiSquareGofPValue(const std::vector<uint64_t>& observed,
                          const std::vector<double>& expected_probs);

/// Two-sample Kolmogorov–Smirnov statistic D = sup_x |F_a(x) − F_b(x)|.
/// Ties are handled by comparing the empirical CDFs at every jump point;
/// inputs are copied and sorted internally.
double TwoSampleKsStat(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Asymptotic two-sample KS p-value via the Kolmogorov distribution
/// Q_KS(λ) = 2 Σ_{j>=1} (−1)^{j−1} e^{−2 j² λ²} with
/// λ = D·sqrt(n·m/(n+m)). Conservative in the presence of ties.
double TwoSampleKsPValue(double d_stat, size_t n, size_t m);

}  // namespace shuffledp

#endif  // SHUFFLEDP_UTIL_STATS_H_

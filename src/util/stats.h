// Streaming statistics used by the benchmark harness and tests.

#ifndef SHUFFLEDP_UTIL_STATS_H_
#define SHUFFLEDP_UTIL_STATS_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace shuffledp {

/// Welford single-pass mean / variance accumulator.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  double stderr_mean() const {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean squared error between an estimated and a true frequency vector:
///   MSE = (1/|D|) * sum_v (f_v - f~_v)^2            (paper Section VII-A)
double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& estimate);

/// MSE restricted to the domain points in `eval_points` (unbiased estimate
/// of the full-domain MSE when the points are sampled uniformly).
double MeanSquaredErrorAt(const std::vector<double>& truth,
                          const std::vector<double>& estimate,
                          const std::vector<uint64_t>& eval_points);

/// Precision of a predicted top-k set against the true top-k set:
/// |predicted ∩ truth| / k (the Figure 4 metric).
double TopKPrecision(const std::vector<uint64_t>& predicted,
                     const std::vector<uint64_t>& truth);

}  // namespace shuffledp

#endif  // SHUFFLEDP_UTIL_STATS_H_

#include "util/status.h"

namespace shuffledp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCryptoError:
      return "CryptoError";
    case StatusCode::kProtocolViolation:
      return "ProtocolViolation";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace shuffledp

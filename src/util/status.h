// Status / Result error-handling primitives (RocksDB / Arrow style).
//
// The library does not use C++ exceptions (Google C++ style). Fallible
// operations return `Status` or `Result<T>`; callers must check `ok()`
// before using a result value.

#ifndef SHUFFLEDP_UTIL_STATUS_H_
#define SHUFFLEDP_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace shuffledp {

/// Machine-readable failure categories.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed an out-of-contract parameter.
  kOutOfRange = 2,        ///< Index / value outside the permitted range.
  kFailedPrecondition = 3,///< Object not in the required state.
  kNotFound = 4,          ///< Requested entity does not exist.
  kAlreadyExists = 5,     ///< Entity already present.
  kCryptoError = 6,       ///< Cryptographic operation failed (bad key, tag, ...).
  kProtocolViolation = 7, ///< A party deviated from the prescribed protocol.
  kDataLoss = 8,          ///< Truncated / corrupt serialized payload.
  kInternal = 9,          ///< Invariant violation inside the library.
  kUnimplemented = 10,    ///< Feature not available in this build.
  kUnavailable = 11,      ///< Transient transport failure (peer down, reset).
  kDeadlineExceeded = 12, ///< Operation did not finish inside its deadline.
  kResourceExhausted = 13,///< Storage/quota exhausted (ENOSPC, EDQUOT).
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error carrier. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// Factory helpers, one per category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status CryptoError(std::string m) {
    return Status(StatusCode::kCryptoError, std::move(m));
  }
  static Status ProtocolViolation(std::string m) {
    return Status(StatusCode::kProtocolViolation, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The failure category (kOk when `ok()`).
  StatusCode code() const { return code_; }

  /// Diagnostic message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>", for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Holds either a value of type `T` or a non-OK `Status`.
///
/// Usage:
///   Result<Foo> r = MakeFoo();
///   if (!r.ok()) return r.status();
///   Foo& foo = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error; OK() when a value is held.
  const Status& status() const { return status_; }

  /// Pre-condition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Pre-condition: ok(). Convenience dereference operators.
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ has a value.
};

}  // namespace shuffledp

/// Propagates a non-OK Status from an expression (RocksDB idiom).
#define SHUFFLEDP_RETURN_NOT_OK(expr)                  \
  do {                                                 \
    ::shuffledp::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                         \
  } while (false)

/// Assigns `lhs` from a Result expression, propagating errors.
#define SHUFFLEDP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#define SHUFFLEDP_ASSIGN_OR_RETURN(lhs, rexpr) \
  SHUFFLEDP_ASSIGN_OR_RETURN_IMPL(             \
      SHUFFLEDP_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define SHUFFLEDP_CONCAT_INNER_(a, b) a##b
#define SHUFFLEDP_CONCAT_(a, b) SHUFFLEDP_CONCAT_INNER_(a, b)

#endif  // SHUFFLEDP_UTIL_STATUS_H_

#include "util/thread_pool.h"

#include <algorithm>

namespace shuffledp {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, uint64_t)>& body) {
  if (begin >= end) return;
  const uint64_t total = end - begin;
  const uint64_t chunks =
      std::min<uint64_t>(total, static_cast<uint64_t>(num_threads()) * 4);
  const uint64_t step = (total + chunks - 1) / chunks;
  for (uint64_t lo = begin; lo < end; lo += step) {
    uint64_t hi = std::min(end, lo + step);
    Submit([&body, lo, hi] { body(lo, hi); });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace shuffledp

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace shuffledp {

namespace {

// Which pool (if any) owns the current thread; lets ParallelFor detect
// nested invocations from its own workers and run them inline instead of
// deadlocking against the occupied worker slot.
thread_local const ThreadPool* t_owner_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::InWorkerThread() const { return t_owner_pool == this; }

unsigned ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("SHUFFLEDP_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, uint64_t)>& body) {
  if (begin >= end) return;
  // Worker-count-scaled chunking (callers that need pool-independent
  // boundaries use ParallelForChunks directly).
  const uint64_t total = end - begin;
  const uint64_t chunks =
      std::min<uint64_t>(total, static_cast<uint64_t>(num_threads()) * 4);
  ParallelForChunks(begin, end, (total + chunks - 1) / chunks, body);
}

void ThreadPool::ParallelForChunks(
    uint64_t begin, uint64_t end, uint64_t chunk_size,
    const std::function<void(uint64_t, uint64_t)>& body) {
  if (begin >= end) return;
  if (chunk_size == 0) chunk_size = 1;
  if (InWorkerThread()) {
    // Nested call from one of our own workers: dispatching to the pool
    // would wait on a worker slot this thread occupies. Run the chunks
    // inline, preserving the boundaries so chunk-seeded callers stay
    // deterministic.
    for (uint64_t lo = begin; lo < end; lo += chunk_size) {
      body(lo, std::min(end, lo + chunk_size));
    }
    return;
  }
  // Per-call completion latch: the call must not return while its own
  // chunks run, but should not wait on unrelated tasks either.
  struct Latch {
    std::mutex m;
    std::condition_variable cv;
    uint64_t remaining;
  } latch;
  latch.remaining = (end - begin + chunk_size - 1) / chunk_size;

  for (uint64_t lo = begin; lo < end; lo += chunk_size) {
    uint64_t hi = std::min(end, lo + chunk_size);
    Submit([&body, &latch, lo, hi] {
      body(lo, hi);
      std::lock_guard<std::mutex> lock(latch.m);
      if (--latch.remaining == 0) latch.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch.m);
  latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  t_owner_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::DefaultNumThreads());
  return *pool;
}

void ForChunks(ThreadPool* pool, uint64_t begin, uint64_t end,
               uint64_t chunk_size,
               const std::function<void(uint64_t, uint64_t)>& body) {
  if (begin >= end) return;
  if (chunk_size == 0) chunk_size = 1;
  if (pool != nullptr) {
    pool->ParallelForChunks(begin, end, chunk_size, body);
    return;
  }
  for (uint64_t lo = begin; lo < end; lo += chunk_size) {
    body(lo, std::min(end, lo + chunk_size));
  }
}

}  // namespace shuffledp

// Fixed-size worker pool used to parallelize per-user protocol work
// (encryption, decryption, frequency-oracle aggregation).

#ifndef SHUFFLEDP_UTIL_THREAD_POOL_H_
#define SHUFFLEDP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace shuffledp {

/// A minimal fixed-size thread pool. Tasks are void() closures; completion
/// is observed via WaitIdle(). Not copyable.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency, >= 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Splits [begin, end) into contiguous chunks and runs `body(lo, hi)` on
  /// the pool, blocking until done. `body` must be thread-safe across
  /// disjoint ranges. Completion is tracked per call, so concurrent
  /// ParallelFor invocations do not wait on each other's tasks. When
  /// called from one of this pool's own worker threads the range runs
  /// inline instead (a nested dispatch would deadlock waiting for the
  /// occupied worker).
  void ParallelFor(uint64_t begin, uint64_t end,
                   const std::function<void(uint64_t, uint64_t)>& body);

  /// Like ParallelFor, but with chunk boundaries fixed by `chunk_size`
  /// alone — never by the worker count. Protocol code that seeds a
  /// per-chunk RNG from `lo` must use this variant so results are bitwise
  /// identical across SHUFFLEDP_THREADS settings.
  void ParallelForChunks(uint64_t begin, uint64_t end, uint64_t chunk_size,
                         const std::function<void(uint64_t, uint64_t)>& body);

  /// True iff the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  /// Worker count for GlobalThreadPool(): the SHUFFLEDP_THREADS
  /// environment variable when set to a positive integer, otherwise
  /// hardware concurrency.
  static unsigned DefaultNumThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  uint64_t in_flight_ = 0;
  bool stop_ = false;
};

/// Process-wide shared pool (lazily constructed; sized by
/// ThreadPool::DefaultNumThreads, i.e. SHUFFLEDP_THREADS when set).
ThreadPool& GlobalThreadPool();

/// Runs `body` over [begin, end) in fixed-size chunks: on `pool` when one
/// is supplied, serially otherwise. Both paths produce the exact same
/// chunk boundaries, so per-chunk RNG seeding derived from `lo` yields
/// results independent of the pool (and of its size).
void ForChunks(ThreadPool* pool, uint64_t begin, uint64_t end,
               uint64_t chunk_size,
               const std::function<void(uint64_t, uint64_t)>& body);

}  // namespace shuffledp

#endif  // SHUFFLEDP_UTIL_THREAD_POOL_H_

#include "core/memoized_reporter.h"

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/local_hash.h"

namespace shuffledp {
namespace core {
namespace {

TEST(MemoizedReporterTest, ReplaysTheSameReport) {
  Rng rng(1);
  MemoizedReporter reporter(&rng);
  ldp::Grr grr(1.0, 16);
  auto first = reporter.Report(grr, 5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(reporter.Report(grr, 5), first);
  }
  EXPECT_EQ(reporter.cache_size(), 1u);
}

TEST(MemoizedReporterTest, DistinctValuesGetDistinctEntries) {
  Rng rng(2);
  MemoizedReporter reporter(&rng);
  ldp::Grr grr(1.0, 16);
  reporter.Report(grr, 1);
  reporter.Report(grr, 2);
  reporter.Report(grr, 1);
  EXPECT_EQ(reporter.cache_size(), 2u);
}

TEST(MemoizedReporterTest, ReconfiguredOracleDrawsFresh) {
  Rng rng(3);
  MemoizedReporter reporter(&rng);
  ldp::Grr grr_a(1.0, 16);
  ldp::Grr grr_b(2.0, 16);  // different ε: different configuration
  reporter.Report(grr_a, 5);
  reporter.Report(grr_b, 5);
  EXPECT_EQ(reporter.cache_size(), 2u);

  ldp::LocalHash lh(1.0, 16, 4);  // different mechanism entirely
  reporter.Report(lh, 5);
  EXPECT_EQ(reporter.cache_size(), 3u);
}

TEST(MemoizedReporterTest, DefeatsAveragingAttack) {
  // Without memoization, averaging k = 400 GRR reports of the same value
  // identifies it almost surely; with memoization the adversary only ever
  // sees one report. Compare the attacker's success empirically.
  const uint64_t d = 8, value = 3;
  const int k = 400;
  ldp::Grr grr(1.0, d);

  // Fresh randomness each round: majority vote over k reports.
  Rng fresh_rng(4);
  std::vector<int> counts(d, 0);
  for (int i = 0; i < k; ++i) ++counts[grr.Encode(value, &fresh_rng).value];
  uint64_t fresh_guess = static_cast<uint64_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  EXPECT_EQ(fresh_guess, value);  // averaging attack succeeds

  // Memoized: k rounds all replay one report; the attacker learns no
  // more than a single ε-LDP observation (which is wrong with
  // probability 1 − p ≈ 0.72 at ε = 1, d = 8 — so over many victims the
  // majority of single-report guesses fail).
  Rng memo_rng(5);
  int correct_single_guesses = 0;
  const int kVictims = 300;
  for (int v = 0; v < kVictims; ++v) {
    MemoizedReporter reporter(&memo_rng);
    ldp::LdpReport only_report = reporter.Report(grr, value);
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ(reporter.Report(grr, value), only_report);
    }
    correct_single_guesses += (only_report.value == value);
  }
  // p = e/(e+7) ~ 0.28: the attack can no longer do better than one draw.
  EXPECT_LT(correct_single_guesses, kVictims / 2);
}

TEST(MemoizedReporterTest, ClearForgetsEverything) {
  Rng rng(6);
  MemoizedReporter reporter(&rng);
  ldp::Grr grr(1.0, 16);
  reporter.Report(grr, 1);
  reporter.Clear();
  EXPECT_EQ(reporter.cache_size(), 0u);
}

}  // namespace
}  // namespace core
}  // namespace shuffledp

#include "core/methods.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace shuffledp {
namespace core {
namespace {

constexpr double kDelta = 1e-9;

TEST(MethodRegistryTest, NamesAndClassification) {
  EXPECT_STREQ(MethodName(Method::kSolh), "SOLH");
  EXPECT_STREQ(MethodName(Method::kRapRemoval), "RAP_R");
  EXPECT_STREQ(MethodName(Method::kBase), "Base");
  EXPECT_TRUE(IsShuffleMethod(Method::kSolh));
  EXPECT_TRUE(IsShuffleMethod(Method::kAue));
  EXPECT_FALSE(IsShuffleMethod(Method::kOlh));
  EXPECT_FALSE(IsShuffleMethod(Method::kLap));
  EXPECT_EQ(AllMethods().size(), 9u);
}

TEST(MethodRegistryTest, RejectsBadArguments) {
  Rng rng(1);
  std::vector<uint64_t> counts = {10, 20};
  EXPECT_FALSE(
      RunUtilityTrial(Method::kSolh, counts, 30, -1.0, kDelta, {0}, &rng)
          .ok());
  EXPECT_FALSE(
      RunUtilityTrial(Method::kSolh, counts, 0, 0.5, kDelta, {0}, &rng)
          .ok());
  std::vector<uint64_t> tiny = {5};
  EXPECT_FALSE(
      RunUtilityTrial(Method::kSolh, tiny, 5, 0.5, kDelta, {0}, &rng).ok());
}

TEST(MethodRegistryTest, BaseReturnsUniform) {
  Rng rng(2);
  std::vector<uint64_t> counts = {100, 0, 0, 0};
  auto est =
      RunUtilityTrial(Method::kBase, counts, 100, 0.5, kDelta, {0, 3}, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ((*est)[0], 0.25);
  EXPECT_DOUBLE_EQ((*est)[1], 0.25);
}

// Every method's trial is (approximately) unbiased and its empirical MSE
// matches the analytic variance prediction. This is the single test that
// pins the whole Figure 3 machinery.
class MethodAccuracy : public ::testing::TestWithParam<Method> {};

TEST_P(MethodAccuracy, UnbiasedAndVarianceMatchesPrediction) {
  const Method method = GetParam();
  const uint64_t n = 602325 / 8;  // IPUMS scale / 8 for speed
  const uint64_t d = 915;
  const double eps_c = 0.5;
  // Zipf-ish counts.
  std::vector<uint64_t> counts(d, 0);
  uint64_t assigned = 0;
  for (uint64_t v = 0; v < d; ++v) {
    counts[v] = (n / 10) / (v + 1);
    assigned += counts[v];
  }
  counts[0] += n - assigned;

  Rng rng(3 + static_cast<int>(method));
  RunningStat est0;
  RunningStat sq_err_tail;  // value with tiny frequency
  const uint64_t tail_v = d - 1;
  const double truth0 = static_cast<double>(counts[0]) / n;
  const double truth_tail = static_cast<double>(counts[tail_v]) / n;
  const int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    auto est = RunUtilityTrial(method, counts, n, eps_c, kDelta,
                               {0, tail_v}, &rng);
    ASSERT_TRUE(est.ok());
    est0.Add((*est)[0]);
    double dtail = (*est)[1] - truth_tail;
    sq_err_tail.Add(dtail * dtail);
  }
  EXPECT_NEAR(est0.mean(), truth0, 6 * est0.stderr_mean() + 1e-6)
      << MethodName(method);

  auto predicted = PredictVariance(method, n, d, eps_c, kDelta);
  ASSERT_TRUE(predicted.ok());
  // Empirical MSE at a near-zero-frequency value ~ predicted variance.
  EXPECT_GT(sq_err_tail.mean(), 0.3 * *predicted) << MethodName(method);
  EXPECT_LT(sq_err_tail.mean(), 3.0 * *predicted) << MethodName(method);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodAccuracy,
    ::testing::Values(Method::kOlh, Method::kHad, Method::kLap, Method::kSh,
                      Method::kSolh, Method::kAue, Method::kRap,
                      Method::kRapRemoval),
    [](const ::testing::TestParamInfo<Method>& info) {
      std::string name = MethodName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '_'), name.end());
      return name;
    });

// The Figure 3 headline: shuffle methods sit orders of magnitude below
// LDP methods, and Lap below the shuffle methods.
TEST(MethodOrderingTest, Figure3OrderingHolds) {
  const uint64_t n = 602325, d = 915;
  const double eps_c = 0.5;
  double solh = *PredictVariance(Method::kSolh, n, d, eps_c, kDelta);
  double olh = *PredictVariance(Method::kOlh, n, d, eps_c, kDelta);
  double had = *PredictVariance(Method::kHad, n, d, eps_c, kDelta);
  double lap = *PredictVariance(Method::kLap, n, d, eps_c, kDelta);
  double rap_r = *PredictVariance(Method::kRapRemoval, n, d, eps_c, kDelta);
  EXPECT_LT(solh, olh / 100.0);   // ~3 orders in the paper
  EXPECT_LT(solh, had / 100.0);
  EXPECT_LT(lap, solh);           // Lap ~2 orders below SOLH
  EXPECT_LT(rap_r, solh);         // RAP_R is the best shuffle method
}

TEST(MethodOrderingTest, ShBelowThresholdIsWorseThanSolh) {
  // Figure 3: for ε_c below SH's amplification threshold SOLH wins big.
  const uint64_t n = 602325, d = 915;
  const double eps_c = 0.2;  // below sqrt(14 ln(2/δ) d/(n−1)) ~ 0.675
  double sh = *PredictVariance(Method::kSh, n, d, eps_c, kDelta);
  double solh = *PredictVariance(Method::kSolh, n, d, eps_c, kDelta);
  EXPECT_LT(solh, sh / 100.0);
}

TEST(RoundEstimatorTest, DrivesTreeHistAccurately) {
  auto estimator = MakeRoundEstimator(Method::kSolh, 0.5 / 2, kDelta / 2);
  ASSERT_TRUE(estimator.ok());
  // Planted 16-bit heavy hitters.
  std::vector<uint64_t> values;
  for (int i = 0; i < 60000; ++i) values.push_back(0xAB12);
  for (int i = 0; i < 40000; ++i) values.push_back(0x7788);
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<uint64_t>(i) & 0xFFFF);
  }
  hist::TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 2;
  Rng rng(11);
  auto result = hist::RunTreeHist(values, config, *estimator, &rng);
  ASSERT_TRUE(result.ok());
  std::vector<uint64_t> sorted = result->heavy_hitters;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint64_t>{0x7788, 0xAB12}));
}

TEST(RoundEstimatorTest, RejectsBadBudgets) {
  EXPECT_FALSE(MakeRoundEstimator(Method::kSolh, 0.0, kDelta).ok());
  EXPECT_FALSE(MakeRoundEstimator(Method::kSolh, 0.5, 0.0).ok());
  EXPECT_FALSE(MakeRoundEstimator(Method::kBase, 0.5, kDelta).ok());
}

}  // namespace
}  // namespace core
}  // namespace shuffledp

#include "core/planner.h"

#include <gtest/gtest.h>

#include "dp/amplification.h"

namespace shuffledp {
namespace core {
namespace {

PrivacyGoals DefaultGoals() {
  PrivacyGoals goals;
  goals.eps_server = 0.5;
  goals.eps_users = 2.0;
  goals.eps_local = 8.0;
  goals.delta = 1e-9;
  return goals;
}

TEST(PlannerTest, PlanSatisfiesAllThreeConstraints) {
  auto plan = PlanPeos(DefaultGoals(), 602325, 915);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_LE(plan->eps_server_achieved, 0.5 * (1 + 1e-9));
  EXPECT_LE(plan->eps_users_achieved, 2.0 * (1 + 1e-9));
  EXPECT_LE(plan->eps_local_achieved, 8.0 * (1 + 1e-9));
  EXPECT_GT(plan->n_r, 0u);
  EXPECT_GT(plan->predicted_variance, 0.0);
  // The plan re-derives consistently through the dp:: formulas.
  double eps_c = dp::PeosEpsAgainstServer(plan->eps_l, 602325, plan->n_r,
                                          plan->d_prime, 1e-9);
  EXPECT_LE(eps_c, 0.5 * (1 + 1e-6));
}

TEST(PlannerTest, PrefersSolhOnLargeDomains) {
  auto plan = PlanPeos(DefaultGoals(), 1000000, 42178);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->use_grr);
  EXPECT_LT(plan->d_prime, 42178u);
}

TEST(PlannerTest, DPrimeIsPowerOfTwo) {
  auto plan = PlanPeos(DefaultGoals(), 602325, 915);
  ASSERT_TRUE(plan.ok());
  if (!plan->use_grr) {
    EXPECT_EQ(plan->d_prime & (plan->d_prime - 1), 0u);
  }
}

TEST(PlannerTest, TighterUserPrivacyNeedsMoreFakes) {
  PrivacyGoals loose = DefaultGoals();
  loose.eps_users = 4.0;
  PrivacyGoals tight = DefaultGoals();
  tight.eps_users = 0.5;
  auto plan_loose = PlanPeos(loose, 602325, 915);
  auto plan_tight = PlanPeos(tight, 602325, 915);
  ASSERT_TRUE(plan_loose.ok() && plan_tight.ok());
  EXPECT_GE(plan_tight->n_r, plan_loose->n_r);
  // And ε₂ actually achieved in both.
  EXPECT_LE(plan_tight->eps_users_achieved, 0.5 * (1 + 1e-9));
}

TEST(PlannerTest, InfeasibleGoalsRejected) {
  PrivacyGoals goals = DefaultGoals();
  goals.eps_users = 1e-6;  // would need astronomically many fakes
  auto plan = PlanPeos(goals, 10000, 915, /*max_n_r=*/100000);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlannerTest, RejectsBadArguments) {
  PrivacyGoals goals = DefaultGoals();
  EXPECT_FALSE(PlanPeos(goals, 1, 915).ok());
  EXPECT_FALSE(PlanPeos(goals, 1000, 1).ok());
  goals.eps_server = -1;
  EXPECT_FALSE(PlanPeos(goals, 1000, 915).ok());
  goals = DefaultGoals();
  goals.delta = 2.0;
  EXPECT_FALSE(PlanPeos(goals, 1000, 915).ok());
  goals = DefaultGoals();
  goals.eps_server = 10.0;
  goals.eps_local = 5.0;  // server target looser than LDP floor
  EXPECT_FALSE(PlanPeos(goals, 1000, 915).ok());
}

TEST(PlannerTest, VarianceBeatsPlainSolhThanksToFakes) {
  // The planner's PEOS configuration (with fakes) should predict variance
  // at least as good as plain SOLH at the same ε_c (see
  // VarianceTest.PeosFakeReportsImproveUtilityAtFixedEpsC).
  const uint64_t n = 602325, d = 915;
  auto plan = PlanPeos(DefaultGoals(), n, d);
  ASSERT_TRUE(plan.ok());
  uint64_t d_plain = dp::OptimalSolhDPrime(0.5, n, 1e-9);
  double plain = dp::SolhVarianceCentral(0.5, n, d_plain, 1e-9);
  EXPECT_LE(plan->predicted_variance, plain * 1.05);
}

TEST(PlannerTest, ToStringMentionsKeyNumbers) {
  auto plan = PlanPeos(DefaultGoals(), 602325, 915);
  ASSERT_TRUE(plan.ok());
  std::string s = plan->ToString();
  EXPECT_NE(s.find("n_r="), std::string::npos);
  EXPECT_NE(s.find("eps_c="), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace shuffledp

// Backend-dispatch coverage for AES-128: the FIPS-197 / SP 800-38A known
// answers must hold on both the portable table-based code and (when the
// CPU has it) the AES-NI path, and the two backends must agree on every
// mode. Forced-fallback mode pins the portable backend so both
// implementations run in CI regardless of the host CPU.

#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace shuffledp {
namespace crypto {
namespace {

// Restores the automatically selected backend when a test scope ends.
class ScopedAesBackend {
 public:
  explicit ScopedAesBackend(AesBackend backend) { SetAesBackend(backend); }
  ~ScopedAesBackend() { SetAesBackend(BestAesBackend()); }
};

std::array<uint8_t, 16> Key16(const std::string& hex) {
  auto b = FromHex(hex);
  EXPECT_TRUE(b.ok());
  std::array<uint8_t, 16> out{};
  std::copy(b->begin(), b->end(), out.begin());
  return out;
}

std::vector<AesBackend> BackendsToTest() {
  std::vector<AesBackend> backends = {AesBackend::kPortable};
  if (BestAesBackend() == AesBackend::kAesNi) {
    backends.push_back(AesBackend::kAesNi);
  }
  return backends;
}

TEST(AesBackendTest, ForcedFallbackDegradesGracefully) {
  ScopedAesBackend guard(AesBackend::kPortable);
  EXPECT_EQ(ActiveAesBackend(), AesBackend::kPortable);
  Aes128 aes(Key16("000102030405060708090a0b0c0d0e0f"));
  EXPECT_EQ(aes.backend(), AesBackend::kPortable);
  // Requesting AES-NI never fails: unsupported hosts fall back.
  SetAesBackend(AesBackend::kAesNi);
  EXPECT_EQ(ActiveAesBackend(), BestAesBackend());
}

TEST(AesBackendTest, BackendNames) {
  EXPECT_STREQ(AesBackendName(AesBackend::kPortable), "portable");
  EXPECT_STREQ(AesBackendName(AesBackend::kAesNi), "aesni");
}

// FIPS-197 Appendix C.1 on every available backend.
TEST(AesBackendTest, Fips197KnownAnswerBothBackends) {
  for (AesBackend backend : BackendsToTest()) {
    ScopedAesBackend guard(backend);
    Aes128 aes(Key16("000102030405060708090a0b0c0d0e0f"));
    ASSERT_EQ(aes.backend(), backend);
    auto pt = *FromHex("00112233445566778899aabbccddeeff");
    uint8_t ct[16];
    aes.EncryptBlock(pt.data(), ct);
    EXPECT_EQ(ToHex(Bytes(ct, ct + 16)), "69c4e0d86a7b0430d8cdb78070b4c55a")
        << AesBackendName(backend);
    uint8_t back[16];
    aes.DecryptBlock(ct, back);
    EXPECT_EQ(ToHex(Bytes(back, back + 16)),
              "00112233445566778899aabbccddeeff")
        << AesBackendName(backend);
  }
}

// NIST SP 800-38A F.5.1 (CTR-AES128) on every available backend.
TEST(AesBackendTest, Sp80038aCtrBothBackends) {
  for (AesBackend backend : BackendsToTest()) {
    ScopedAesBackend guard(backend);
    auto key = Key16("2b7e151628aed2a6abf7158809cf4f3c");
    std::array<uint8_t, 12> nonce{};
    auto nb = *FromHex("f0f1f2f3f4f5f6f7f8f9fafb");
    std::copy(nb.begin(), nb.end(), nonce.begin());
    auto pt = *FromHex("6bc1bee22e409f96e93d7e117393172a");
    Bytes out = AesCtrCrypt(key, nonce, pt, 0xfcfdfeffu);
    EXPECT_EQ(ToHex(out), "874d6191b620e3261bef6864990db6ce")
        << AesBackendName(backend);
  }
}

TEST(AesBackendTest, BackendsAgreeOnBulkData) {
  if (BestAesBackend() != AesBackend::kAesNi) {
    GTEST_SKIP() << "host has no AES-NI; portable-only";
  }
  auto key = Key16("00112233445566778899aabbccddeeff");
  auto iv = Key16("0f0e0d0c0b0a09080706050403020100");
  std::array<uint8_t, 12> nonce{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2};
  for (size_t len : {1, 16, 17, 64, 100, 1000, 4096}) {
    Bytes pt(len);
    for (size_t i = 0; i < len; ++i) pt[i] = static_cast<uint8_t>(i * 31 + 7);

    SetAesBackend(AesBackend::kPortable);
    Bytes cbc_portable = AesCbcEncrypt(key, iv, pt);
    Bytes ctr_portable = AesCtrCrypt(key, nonce, pt, 77);
    SetAesBackend(AesBackend::kAesNi);
    Bytes cbc_ni = AesCbcEncrypt(key, iv, pt);
    Bytes ctr_ni = AesCtrCrypt(key, nonce, pt, 77);
    EXPECT_EQ(cbc_portable, cbc_ni) << "len=" << len;
    EXPECT_EQ(ctr_portable, ctr_ni) << "len=" << len;

    // Cross-backend round trip: hardware decrypts software's output.
    auto back = AesCbcDecrypt(key, cbc_portable);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, pt);
  }
  SetAesBackend(BestAesBackend());
}

TEST(AesBackendTest, EncryptBlocksMatchesBlockwise) {
  for (AesBackend backend : BackendsToTest()) {
    ScopedAesBackend guard(backend);
    Aes128 aes(Key16("a0a1a2a3a4a5a6a7a8a9aaabacadaeaf"));
    // 9 blocks: exercises the 4-wide pipeline plus the remainder loop.
    Bytes in(16 * 9);
    for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<uint8_t>(i);
    Bytes batched(in.size());
    aes.EncryptBlocks(in.data(), batched.data(), 9);
    for (size_t b = 0; b < 9; ++b) {
      uint8_t one[16];
      aes.EncryptBlock(in.data() + 16 * b, one);
      EXPECT_EQ(0, std::memcmp(one, batched.data() + 16 * b, 16))
          << AesBackendName(backend) << " block " << b;
    }
  }
}

TEST(AesBackendTest, EncryptBlocksInPlace) {
  for (AesBackend backend : BackendsToTest()) {
    ScopedAesBackend guard(backend);
    Aes128 aes(Key16("000102030405060708090a0b0c0d0e0f"));
    Bytes data(16 * 5, 0x42);
    Bytes expected(data.size());
    aes.EncryptBlocks(data.data(), expected.data(), 5);
    aes.EncryptBlocks(data.data(), data.data(), 5);  // out aliases in
    EXPECT_EQ(data, expected) << AesBackendName(backend);
  }
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

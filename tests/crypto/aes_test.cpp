#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace shuffledp {
namespace crypto {
namespace {

std::array<uint8_t, 16> Key16(const std::string& hex) {
  auto b = FromHex(hex);
  EXPECT_TRUE(b.ok());
  std::array<uint8_t, 16> out{};
  std::copy(b->begin(), b->end(), out.begin());
  return out;
}

// FIPS-197 Appendix C.1.
TEST(Aes128Test, Fips197KnownAnswer) {
  Aes128 aes(Key16("000102030405060708090a0b0c0d0e0f"));
  auto pt = *FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(Bytes(ct, ct + 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");

  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(ToHex(Bytes(back, back + 16)), "00112233445566778899aabbccddeeff");
}

// NIST SP 800-38A F.2.1 (CBC-AES128.Encrypt, first block).
TEST(Aes128Test, Sp80038aCbcFirstBlock) {
  auto key = Key16("2b7e151628aed2a6abf7158809cf4f3c");
  auto iv = Key16("000102030405060708090a0b0c0d0e0f");
  auto pt = *FromHex("6bc1bee22e409f96e93d7e117393172a");
  Bytes out = AesCbcEncrypt(key, iv, pt);
  // out = IV || C1 || padding block; check C1.
  Bytes c1(out.begin() + 16, out.begin() + 32);
  EXPECT_EQ(ToHex(c1), "7649abac8119b246cee98e9b12e9197d");
}

// NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt, first block).
TEST(Aes128Test, Sp80038aCtrFirstBlock) {
  auto key = Key16("2b7e151628aed2a6abf7158809cf4f3c");
  std::array<uint8_t, 12> nonce{};
  auto nb = *FromHex("f0f1f2f3f4f5f6f7f8f9fafb");
  std::copy(nb.begin(), nb.end(), nonce.begin());
  auto pt = *FromHex("6bc1bee22e409f96e93d7e117393172a");
  Bytes out = AesCtrCrypt(key, nonce, pt, 0xfcfdfeffu);
  EXPECT_EQ(ToHex(out), "874d6191b620e3261bef6864990db6ce");
}

TEST(AesCbcTest, RoundTripVariousLengths) {
  auto key = Key16("00112233445566778899aabbccddeeff");
  auto iv = Key16("0f0e0d0c0b0a09080706050403020100");
  for (size_t len : {0, 1, 15, 16, 17, 31, 32, 100, 1000}) {
    Bytes pt(len);
    for (size_t i = 0; i < len; ++i) pt[i] = static_cast<uint8_t>(i * 13);
    Bytes ct = AesCbcEncrypt(key, iv, pt);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), len);  // IV + at least one padding byte
    auto back = AesCbcDecrypt(key, ct);
    ASSERT_TRUE(back.ok()) << "len=" << len;
    EXPECT_EQ(*back, pt) << "len=" << len;
  }
}

TEST(AesCbcTest, WrongKeyFailsPaddingOrGarbles) {
  auto key = Key16("00112233445566778899aabbccddeeff");
  auto wrong = Key16("00112233445566778899aabbccddee00");
  auto iv = Key16("000102030405060708090a0b0c0d0e0f");
  Bytes pt(64, 0x5a);
  Bytes ct = AesCbcEncrypt(key, iv, pt);
  auto back = AesCbcDecrypt(wrong, ct);
  if (back.ok()) {
    EXPECT_NE(*back, pt);  // padding happened to validate; contents differ
  } else {
    EXPECT_EQ(back.status().code(), StatusCode::kCryptoError);
  }
}

TEST(AesCbcTest, TamperedCiphertextDetectedOrGarbled) {
  auto key = Key16("00112233445566778899aabbccddeeff");
  auto iv = Key16("000102030405060708090a0b0c0d0e0f");
  Bytes pt(48, 0x11);
  Bytes ct = AesCbcEncrypt(key, iv, pt);
  ct[20] ^= 0x01;
  auto back = AesCbcDecrypt(key, ct);
  if (back.ok()) EXPECT_NE(*back, pt);
}

TEST(AesCbcTest, MalformedInputRejected) {
  auto key = Key16("00112233445566778899aabbccddeeff");
  EXPECT_FALSE(AesCbcDecrypt(key, Bytes(8, 0)).ok());     // too short
  EXPECT_FALSE(AesCbcDecrypt(key, Bytes(40, 0)).ok());    // not multiple of 16
}

TEST(AesCtrTest, RoundTripIsXorInvolution) {
  auto key = Key16("aabbccddeeff00112233445566778899");
  std::array<uint8_t, 12> nonce{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  Bytes pt(777);
  for (size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<uint8_t>(i);
  Bytes ct = AesCtrCrypt(key, nonce, pt);
  EXPECT_EQ(ct.size(), pt.size());
  EXPECT_NE(ct, pt);
  EXPECT_EQ(AesCtrCrypt(key, nonce, ct), pt);
}

TEST(AesCtrTest, DifferentNoncesProduceDifferentStreams) {
  auto key = Key16("aabbccddeeff00112233445566778899");
  std::array<uint8_t, 12> n1{}, n2{};
  n2[0] = 1;
  Bytes pt(64, 0);
  EXPECT_NE(AesCtrCrypt(key, n1, pt), AesCtrCrypt(key, n2, pt));
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

#include "crypto/bigint.h"

#include <gtest/gtest.h>

#include "crypto/secure_random.h"

namespace shuffledp {
namespace crypto {
namespace {

BigInt Hex(const std::string& s) {
  auto r = BigInt::FromHexString(s);
  EXPECT_TRUE(r.ok()) << s;
  return *r;
}

TEST(BigIntTest, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsOdd());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToHexString(), "0");
  EXPECT_EQ(z.ToDecimalString(), "0");
  EXPECT_EQ(z.ToU64Saturating(), 0u);
}

TEST(BigIntTest, HexRoundTrip) {
  for (const std::string& s :
       {"1", "ff", "deadbeef", "123456789abcdef0123456789abcdef",
        "ffffffffffffffffffffffffffffffffffffffffffffffffff"}) {
    EXPECT_EQ(Hex(s).ToHexString(), s);
  }
}

TEST(BigIntTest, DecimalRoundTrip) {
  for (const std::string& s :
       {"0", "1", "42", "18446744073709551615", "18446744073709551616",
        "340282366920938463463374607431768211455",
        "99999999999999999999999999999999999999999999"}) {
    auto v = BigInt::FromDecimalString(s);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->ToDecimalString(), s);
  }
}

TEST(BigIntTest, InvalidLiteralsRejected) {
  EXPECT_FALSE(BigInt::FromHexString("xyz").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("12a").ok());
}

TEST(BigIntTest, BytesRoundTrip) {
  Bytes b = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  BigInt v = BigInt::FromBytesBigEndian(b);
  EXPECT_EQ(v.ToHexString(), "10203040506070809");
  EXPECT_EQ(v.ToBytesBigEndian(9), b);
  // Padding.
  Bytes padded = v.ToBytesBigEndian(12);
  EXPECT_EQ(padded.size(), 12u);
  EXPECT_EQ(padded[0], 0);
  EXPECT_EQ(padded[3], 0x01);
}

TEST(BigIntTest, AddCarriesAcrossLimbs) {
  BigInt a = Hex("ffffffffffffffff");  // 2^64 - 1
  BigInt b(1);
  EXPECT_EQ(a.Add(b).ToHexString(), "10000000000000000");
  BigInt c = Hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ(c.Add(BigInt(1)).ToHexString(), "100000000000000000000000000000000");
}

TEST(BigIntTest, SubBorrowsAcrossLimbs) {
  BigInt a = Hex("10000000000000000");
  EXPECT_EQ(a.Sub(BigInt(1)).ToHexString(), "ffffffffffffffff");
  EXPECT_TRUE(a.Sub(a).IsZero());
}

TEST(BigIntTest, MulKnownProduct) {
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  BigInt a = Hex("ffffffffffffffff");
  EXPECT_EQ(a.Mul(a).ToHexString(), "fffffffffffffffe0000000000000001");
  EXPECT_TRUE(a.Mul(BigInt()).IsZero());
  EXPECT_EQ(a.Mul(BigInt(1)), a);
}

TEST(BigIntTest, MulMatchesModularCrossCheck) {
  // Randomized consistency: (a*b) mod m == ((a mod m)*(b mod m)) mod m
  // for word-size m, exercising both schoolbook and Karatsuba sizes.
  SecureRandom rng(uint64_t{12345});
  for (size_t bits : {64, 192, 512, 2048, 4096}) {
    for (int trial = 0; trial < 4; ++trial) {
      BigInt a = BigInt::RandomWithBits(bits, &rng);
      BigInt b = BigInt::RandomWithBits(bits, &rng);
      BigInt m(0xFFFFFFFFFFFFFFC5ULL);  // large 64-bit prime
      BigInt lhs = a.Mul(b).Mod(m);
      unsigned __int128 am = a.Mod(m).ToU64Saturating();
      unsigned __int128 bm = b.Mod(m).ToU64Saturating();
      uint64_t rhs = static_cast<uint64_t>((am * bm) % 0xFFFFFFFFFFFFFFC5ULL);
      EXPECT_EQ(lhs.ToU64Saturating(), rhs) << "bits=" << bits;
    }
  }
}

TEST(BigIntTest, ShiftRoundTrip) {
  BigInt a = Hex("123456789abcdef");
  for (size_t s : {1, 13, 64, 65, 127, 200}) {
    EXPECT_EQ(a.ShiftLeft(s).ShiftRight(s), a) << s;
  }
  EXPECT_TRUE(a.ShiftRight(100).IsZero());
}

TEST(BigIntTest, DivModReconstructs) {
  SecureRandom rng(uint64_t{777});
  for (size_t nbits : {64, 128, 300, 1024, 2050}) {
    for (size_t dbits : {8, 64, 65, 128, 299, 1024}) {
      if (dbits > nbits) continue;
      BigInt n = BigInt::RandomWithBits(nbits, &rng);
      BigInt d = BigInt::RandomWithBits(dbits, &rng);
      BigInt q, r;
      ASSERT_TRUE(n.DivMod(d, &q, &r).ok());
      EXPECT_TRUE(r < d) << nbits << "/" << dbits;
      EXPECT_EQ(q.Mul(d).Add(r), n) << nbits << "/" << dbits;
    }
  }
}

TEST(BigIntTest, DivModKnownValues) {
  BigInt n = Hex("fedcba9876543210fedcba9876543210");
  BigInt d = Hex("f00dfeed");
  BigInt q, r;
  ASSERT_TRUE(n.DivMod(d, &q, &r).ok());
  EXPECT_EQ(q.Mul(d).Add(r), n);
  EXPECT_TRUE(r < d);
  // Dividend smaller than divisor.
  BigInt q2, r2;
  ASSERT_TRUE(d.DivMod(n, &q2, &r2).ok());
  EXPECT_TRUE(q2.IsZero());
  EXPECT_EQ(r2, d);
}

TEST(BigIntTest, DivisionByZeroIsError) {
  BigInt q, r;
  EXPECT_EQ(BigInt(5).DivMod(BigInt(), &q, &r).code(),
            StatusCode::kInvalidArgument);
}

// Knuth-D "add back" regression: dividends engineered so the trial qhat
// overshoots (top limbs of dividend just below divisor pattern).
TEST(BigIntTest, DivModAddBackCase) {
  BigInt d = Hex("80000000000000000000000000000001");
  BigInt n = d.Mul(Hex("ffffffffffffffff")).Add(d.Sub(BigInt(1)));
  BigInt q, r;
  ASSERT_TRUE(n.DivMod(d, &q, &r).ok());
  EXPECT_EQ(q.Mul(d).Add(r), n);
  EXPECT_TRUE(r < d);
}

TEST(BigIntTest, ModExpSmallKnownValues) {
  // 3^10 mod 1000 = 59049 mod 1000 = 49.
  EXPECT_EQ(BigInt(3).ModExp(BigInt(10), BigInt(1000)).ToU64Saturating(), 49u);
  // Exponent zero.
  EXPECT_EQ(BigInt(7).ModExp(BigInt(), BigInt(13)).ToU64Saturating(), 1u);
  // Modulus one.
  EXPECT_TRUE(BigInt(7).ModExp(BigInt(5), BigInt(1)).IsZero());
}

TEST(BigIntTest, ModExpFermatLittleTheorem) {
  // For prime p and gcd(a, p)=1: a^(p-1) = 1 mod p.
  BigInt p = Hex("ffffffffffffffc5");  // 2^64 - 59, prime
  SecureRandom rng(uint64_t{31337});
  for (int i = 0; i < 5; ++i) {
    BigInt a = BigInt::RandomBelow(p.Sub(BigInt(2)), &rng).Add(BigInt(1));
    EXPECT_EQ(a.ModExp(p.Sub(BigInt(1)), p).ToU64Saturating(), 1u);
  }
}

TEST(BigIntTest, ModExpMatchesIteratedModMul) {
  SecureRandom rng(uint64_t{999});
  BigInt m = BigInt::RandomWithBits(128, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  BigInt a = BigInt::RandomBelow(m, &rng);
  BigInt expected(1);
  for (int i = 0; i < 23; ++i) expected = expected.ModMul(a, m);
  EXPECT_EQ(a.ModExp(BigInt(23), m), expected);
}

TEST(BigIntTest, ModMulDispatchMatchesMulThenMod) {
  // ModMul routes odd sub-Karatsuba-threshold moduli through the cached
  // Montgomery path; every route must equal the plain multiply+divide
  // composition — across odd/even moduli, limb widths on both sides of
  // the dispatch threshold, and operands at/above the modulus.
  SecureRandom rng(uint64_t{4242});
  for (size_t bits : {64, 65, 192, 512, 1024, 1536, 2048, 4096}) {
    for (int parity = 0; parity < 2; ++parity) {
      BigInt m = BigInt::RandomWithBits(bits, &rng);
      if (m.IsOdd() == (parity == 1)) m = m.Add(BigInt(1));
      if (m.BitLength() != bits) continue;  // carry overflowed; skip
      std::vector<BigInt> operands = {
          BigInt(), BigInt(1), m.Sub(BigInt(1)), m, m.Add(BigInt(9))};
      for (int i = 0; i < 4; ++i) {
        operands.push_back(BigInt::RandomBelow(m, &rng));
      }
      for (const BigInt& a : operands) {
        for (const BigInt& b : operands) {
          EXPECT_EQ(a.ModMul(b, m), a.Mul(b).Mod(m))
              << "bits=" << bits << " odd=" << m.IsOdd();
        }
      }
    }
  }
}

TEST(BigIntTest, GcdAndLcm) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToU64Saturating(), 6u);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToU64Saturating(), 1u);
  EXPECT_EQ(BigInt::Gcd(BigInt(), BigInt(5)).ToU64Saturating(), 5u);
  EXPECT_EQ(BigInt::Lcm(BigInt(4), BigInt(6)).ToU64Saturating(), 12u);
  EXPECT_TRUE(BigInt::Lcm(BigInt(), BigInt(5)).IsZero());
}

TEST(BigIntTest, ModInverseCorrect) {
  SecureRandom rng(uint64_t{555});
  BigInt m = Hex("ffffffffffffffc5");  // prime modulus
  for (int i = 0; i < 8; ++i) {
    BigInt a = BigInt::RandomBelow(m.Sub(BigInt(1)), &rng).Add(BigInt(1));
    auto inv = a.ModInverse(m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(a.ModMul(*inv, m).ToU64Saturating(), 1u);
  }
}

TEST(BigIntTest, ModInverseOfNonInvertibleFails) {
  EXPECT_FALSE(BigInt(6).ModInverse(BigInt(9)).ok());   // gcd 3
  EXPECT_FALSE(BigInt(0).ModInverse(BigInt(7)).ok());   // zero
  EXPECT_FALSE(BigInt(5).ModInverse(BigInt()).ok());    // zero modulus
}

TEST(BigIntTest, MillerRabinKnownPrimesAndComposites) {
  SecureRandom rng(uint64_t{2024});
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 97ULL, 65537ULL,
                     0xFFFFFFFFFFFFFFC5ULL}) {
    EXPECT_TRUE(BigInt(p).IsProbablePrime(20, &rng)) << p;
  }
  for (uint64_t c : {1ULL, 4ULL, 91ULL /* 7*13 */, 561ULL /* Carmichael */,
                     65536ULL, 0xFFFFFFFFFFFFFFC4ULL}) {
    EXPECT_FALSE(BigInt(c).IsProbablePrime(20, &rng)) << c;
  }
}

TEST(BigIntTest, GeneratePrimeHasRequestedSize) {
  SecureRandom rng(uint64_t{4242});
  for (size_t bits : {32, 64, 128}) {
    BigInt p = BigInt::GeneratePrime(bits, &rng);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(p.IsProbablePrime(20, &rng));
  }
}

TEST(BigIntTest, RandomBelowIsBelow) {
  SecureRandom rng(uint64_t{808});
  BigInt bound = Hex("10000000000000001");
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(BigInt::RandomBelow(bound, &rng) < bound);
  }
}

TEST(BigIntTest, CompareTotalOrder) {
  BigInt a(1), b(2);
  BigInt c = Hex("10000000000000000");
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(c > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
  EXPECT_TRUE(a != b);
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

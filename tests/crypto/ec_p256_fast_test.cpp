// Cross-checks for the accelerated P-256 scalar-multiplication paths:
// the fixed-base comb (ScalarBaseMult), the width-5 wNAF variable-point
// path (ScalarMult / P256Precomputed), and the batched affine conversion,
// all validated against the retained double-and-add reference ladder.

#include "crypto/ec_p256.h"

#include <gtest/gtest.h>

#include <vector>

#include "crypto/secure_random.h"

namespace shuffledp {
namespace crypto {
namespace {

std::vector<Scalar256> EdgeScalars() {
  Scalar256 n = P256::Order();
  Scalar256 n_minus_1 = n;
  n_minus_1[0] -= 1;  // order is odd, no borrow
  Scalar256 n_plus_1 = n;
  n_plus_1[0] += 1;  // no carry: low limb of n is well below 2^64-1
  return {Scalar256{0, 0, 0, 0}, Scalar256{1, 0, 0, 0}, Scalar256{2, 0, 0, 0},
          n_minus_1, n, n_plus_1};
}

TEST(P256FastTest, CombMatchesReferenceOnRandomScalars) {
  SecureRandom rng(uint64_t{101});
  for (int trial = 0; trial < 1000; ++trial) {
    Scalar256 k = P256::RandomScalar(&rng);
    P256Point fast = P256::ScalarBaseMult(k);
    P256Point ref = P256::ScalarBaseMultReference(k);
    ASSERT_EQ(fast, ref) << "trial " << trial;
  }
}

TEST(P256FastTest, CombMatchesReferenceOnEdgeScalars) {
  for (const Scalar256& k : EdgeScalars()) {
    EXPECT_EQ(P256::ScalarBaseMult(k), P256::ScalarBaseMultReference(k));
  }
  // n*G and 0*G are the point at infinity; (n+1)*G wraps to G.
  EXPECT_TRUE(P256::ScalarBaseMult(Scalar256{0, 0, 0, 0}).infinity);
  EXPECT_TRUE(P256::ScalarBaseMult(P256::Order()).infinity);
  Scalar256 n_plus_1 = P256::Order();
  n_plus_1[0] += 1;
  EXPECT_EQ(P256::ScalarBaseMult(n_plus_1), P256::Generator());
}

TEST(P256FastTest, WnafMatchesReferenceOnRandomPoints) {
  SecureRandom rng(uint64_t{103});
  for (int trial = 0; trial < 200; ++trial) {
    P256Point p = P256::ScalarBaseMult(P256::RandomScalar(&rng));
    Scalar256 k = P256::RandomScalar(&rng);
    P256Point fast = P256::ScalarMult(k, p);
    P256Point ref = P256::ScalarMultReference(k, p);
    ASSERT_EQ(fast, ref) << "trial " << trial;
    ASSERT_TRUE(P256::IsOnCurve(fast));
  }
}

TEST(P256FastTest, WnafMatchesReferenceOnEdgeScalars) {
  SecureRandom rng(uint64_t{107});
  P256Point p = P256::ScalarBaseMult(P256::RandomScalar(&rng));
  for (const Scalar256& k : EdgeScalars()) {
    EXPECT_EQ(P256::ScalarMult(k, p), P256::ScalarMultReference(k, p));
  }
  EXPECT_TRUE(P256::ScalarMult(P256::Order(), p).infinity);
}

TEST(P256FastTest, ScalarMultOfInfinityIsInfinity) {
  SecureRandom rng(uint64_t{109});
  P256Point inf;
  EXPECT_TRUE(P256::ScalarMult(P256::RandomScalar(&rng), inf).infinity);
}

TEST(P256FastTest, PrecomputedMatchesOneShot) {
  SecureRandom rng(uint64_t{113});
  P256Point p = P256::ScalarBaseMult(P256::RandomScalar(&rng));
  P256Precomputed pre(p);
  EXPECT_EQ(pre.point(), p);
  for (int trial = 0; trial < 100; ++trial) {
    Scalar256 k = P256::RandomScalar(&rng);
    ASSERT_EQ(pre.Mult(k), P256::ScalarMultReference(k, p)) << trial;
  }
  for (const Scalar256& k : EdgeScalars()) {
    EXPECT_EQ(pre.Mult(k), P256::ScalarMultReference(k, p));
  }
}

TEST(P256FastTest, PrecomputedInfinityPoint) {
  SecureRandom rng(uint64_t{127});
  P256Precomputed pre(P256Point{});
  EXPECT_TRUE(pre.Mult(P256::RandomScalar(&rng)).infinity);
  auto batch = pre.MultBatch({P256::RandomScalar(&rng), Scalar256{1, 0, 0, 0}});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].infinity);
  EXPECT_TRUE(batch[1].infinity);
}

TEST(P256FastTest, BatchBaseMultMatchesPerPoint) {
  SecureRandom rng(uint64_t{131});
  std::vector<Scalar256> ks;
  for (int i = 0; i < 100; ++i) ks.push_back(P256::RandomScalar(&rng));
  // Interleave infinity-producing scalars to exercise the batch
  // normalization's infinity handling mid-run.
  ks.insert(ks.begin() + 7, Scalar256{0, 0, 0, 0});
  ks.insert(ks.begin() + 41, P256::Order());
  std::vector<P256Point> batch = P256::ScalarBaseMultBatch(ks);
  ASSERT_EQ(batch.size(), ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    ASSERT_EQ(batch[i], P256::ScalarBaseMult(ks[i])) << "index " << i;
  }
}

TEST(P256FastTest, BatchPrecomputedMatchesPerPoint) {
  SecureRandom rng(uint64_t{137});
  P256Point p = P256::ScalarBaseMult(P256::RandomScalar(&rng));
  P256Precomputed pre(p);
  std::vector<Scalar256> ks;
  for (int i = 0; i < 60; ++i) ks.push_back(P256::RandomScalar(&rng));
  ks.push_back(P256::Order());  // infinity row at the tail
  std::vector<P256Point> batch = pre.MultBatch(ks);
  ASSERT_EQ(batch.size(), ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    ASSERT_EQ(batch[i], pre.Mult(ks[i])) << "index " << i;
  }
}

TEST(P256FastTest, EmptyBatches) {
  EXPECT_TRUE(P256::ScalarBaseMultBatch({}).empty());
  P256Precomputed pre(P256::Generator());
  EXPECT_TRUE(pre.MultBatch({}).empty());
}

TEST(P256FastTest, DiffieHellmanAgreementAcrossPaths) {
  // a * (b G) == b * (a G) with every fast path in play.
  SecureRandom rng(uint64_t{139});
  for (int trial = 0; trial < 20; ++trial) {
    Scalar256 a = P256::RandomScalar(&rng);
    Scalar256 b = P256::RandomScalar(&rng);
    P256Point ag = P256::ScalarBaseMult(a);
    P256Point bg = P256::ScalarBaseMult(b);
    P256Point shared1 = P256::ScalarMult(a, bg);
    P256Point shared2 = P256Precomputed(ag).Mult(b);
    ASSERT_EQ(shared1, shared2);
    ASSERT_EQ(shared1, P256::ScalarMultReference(a, bg));
  }
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

#include "crypto/ec_p256.h"

#include <gtest/gtest.h>

#include "crypto/secure_random.h"
#include "util/bytes.h"

namespace shuffledp {
namespace crypto {
namespace {

Scalar256 ScalarFromHex(const std::string& hex) {
  auto b = FromHex(hex);
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 32u);
  return ScalarFromBytes(b->data());
}

Scalar256 SmallScalar(uint64_t k) { return Scalar256{k, 0, 0, 0}; }

TEST(P256Test, GeneratorIsOnCurve) {
  EXPECT_TRUE(P256::IsOnCurve(P256::Generator()));
}

TEST(P256Test, InfinityIsOnCurve) {
  EXPECT_TRUE(P256::IsOnCurve(P256Point{}));
}

// NIST point-multiplication sample vector: 2G.
TEST(P256Test, TwoGKnownAnswer) {
  P256Point two_g = P256::ScalarBaseMult(SmallScalar(2));
  EXPECT_FALSE(two_g.infinity);
  EXPECT_EQ(
      two_g.x,
      ScalarFromHex(
          "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978"));
  EXPECT_EQ(
      two_g.y,
      ScalarFromHex(
          "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"));
}

TEST(P256Test, AdditionMatchesScalarMult) {
  P256Point g = P256::Generator();
  P256Point acc = g;
  for (uint64_t k = 2; k <= 10; ++k) {
    acc = P256::Add(acc, g);
    EXPECT_EQ(acc, P256::ScalarBaseMult(SmallScalar(k))) << "k=" << k;
    EXPECT_TRUE(P256::IsOnCurve(acc));
  }
}

TEST(P256Test, AdditionWithInfinityIsIdentity) {
  P256Point g = P256::Generator();
  P256Point inf;
  EXPECT_EQ(P256::Add(g, inf), g);
  EXPECT_EQ(P256::Add(inf, g), g);
  EXPECT_EQ(P256::Add(inf, inf), inf);
}

TEST(P256Test, OrderTimesGeneratorIsInfinity) {
  P256Point ng = P256::ScalarBaseMult(P256::Order());
  EXPECT_TRUE(ng.infinity);
}

TEST(P256Test, ScalarMultDistributesOverAddition) {
  // (a + b) G == aG + bG for random small scalars.
  SecureRandom rng(uint64_t{11});
  for (int trial = 0; trial < 5; ++trial) {
    uint64_t a = rng.UniformU64(1u << 30) + 1;
    uint64_t b = rng.UniformU64(1u << 30) + 1;
    P256Point lhs = P256::ScalarBaseMult(SmallScalar(a + b));
    P256Point rhs = P256::Add(P256::ScalarBaseMult(SmallScalar(a)),
                              P256::ScalarBaseMult(SmallScalar(b)));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(P256Test, ScalarMultIsAssociativeAcrossFullRange) {
  // k1 * (k2 * G) == k2 * (k1 * G) for random 256-bit scalars.
  SecureRandom rng(uint64_t{13});
  for (int trial = 0; trial < 3; ++trial) {
    Scalar256 k1 = P256::RandomScalar(&rng);
    Scalar256 k2 = P256::RandomScalar(&rng);
    P256Point p1 = P256::ScalarMult(k1, P256::ScalarBaseMult(k2));
    P256Point p2 = P256::ScalarMult(k2, P256::ScalarBaseMult(k1));
    EXPECT_EQ(p1, p2);
    EXPECT_TRUE(P256::IsOnCurve(p1));
  }
}

TEST(P256Test, NegatedPointSumsToInfinity) {
  // G + (n-1)G = nG = infinity.
  Scalar256 n = P256::Order();
  Scalar256 n_minus_1 = n;
  n_minus_1[0] -= 1;  // order is odd, no borrow
  P256Point sum =
      P256::Add(P256::Generator(), P256::ScalarBaseMult(n_minus_1));
  EXPECT_TRUE(sum.infinity);
}

TEST(P256Test, SerializeParseRoundTrip) {
  SecureRandom rng(uint64_t{17});
  Scalar256 k = P256::RandomScalar(&rng);
  P256Point p = P256::ScalarBaseMult(k);
  Bytes wire = P256::Serialize(p);
  EXPECT_EQ(wire.size(), P256::kPointBytes);
  EXPECT_EQ(wire[0], 0x04);
  auto parsed = P256::Parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, p);
}

TEST(P256Test, ParseRejectsMalformedPoints) {
  Bytes too_short(10, 0);
  EXPECT_FALSE(P256::Parse(too_short).ok());

  Bytes bad_prefix(P256::kPointBytes, 0);
  bad_prefix[0] = 0x02;
  EXPECT_FALSE(P256::Parse(bad_prefix).ok());

  // Valid length/prefix but not on curve.
  Bytes off_curve = P256::Serialize(P256::Generator());
  off_curve[64] ^= 0x01;  // twiddle Y
  EXPECT_FALSE(P256::Parse(off_curve).ok());
}

TEST(P256Test, RandomScalarInRange) {
  SecureRandom rng(uint64_t{23});
  Scalar256 n = P256::Order();
  for (int i = 0; i < 20; ++i) {
    Scalar256 k = P256::RandomScalar(&rng);
    // k != 0
    EXPECT_TRUE(k[0] || k[1] || k[2] || k[3]);
    // k < n (compare big-endian limb order)
    bool less = false;
    for (int limb = 3; limb >= 0; --limb) {
      if (k[limb] != n[limb]) {
        less = k[limb] < n[limb];
        break;
      }
    }
    EXPECT_TRUE(less);
  }
}

TEST(ScalarBytesTest, RoundTrip) {
  Scalar256 s = {0x0123456789abcdefULL, 0xfedcba9876543210ULL,
                 0x1111111111111111ULL, 0x2222222222222222ULL};
  Bytes b = ScalarToBytes(s);
  EXPECT_EQ(b.size(), 32u);
  EXPECT_EQ(ScalarFromBytes(b.data()), s);
  // Big-endian: most significant limb first.
  EXPECT_EQ(b[0], 0x22);
  EXPECT_EQ(b[31], 0xef);
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

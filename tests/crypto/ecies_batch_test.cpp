// Coverage for the batched ECIES report-encryption API: every blob from
// EciesEncryptBatch / OnionEncryptBatch must decrypt exactly like its
// single-shot counterpart, with and without a thread pool.

#include "crypto/ecies.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/thread_pool.h"

namespace shuffledp {
namespace crypto {
namespace {

std::vector<Bytes> MakePlaintexts(size_t n) {
  std::vector<Bytes> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Bytes(16 + i % 48, static_cast<uint8_t>(i * 7 + 1));
  }
  return out;
}

TEST(EciesBatchTest, BatchRoundTripsThroughSingleShotDecrypt) {
  SecureRandom rng(uint64_t{211});
  auto kp = EciesGenerateKeyPair(&rng);
  auto plaintexts = MakePlaintexts(40);
  auto blobs = EciesEncryptBatch(kp.public_key, plaintexts, &rng);
  ASSERT_EQ(blobs.size(), plaintexts.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    auto back = EciesDecrypt(kp.private_key, blobs[i]);
    ASSERT_TRUE(back.ok()) << "index " << i;
    EXPECT_EQ(*back, plaintexts[i]) << "index " << i;
  }
}

TEST(EciesBatchTest, BlobFormatMatchesSingleShot) {
  SecureRandom rng(uint64_t{223});
  auto kp = EciesGenerateKeyPair(&rng);
  Bytes msg(32, 0x5A);
  Bytes single = EciesEncrypt(kp.public_key, msg, &rng);
  auto batch = EciesEncryptBatch(kp.public_key, {msg}, &rng);
  ASSERT_EQ(batch.size(), 1u);
  // Fresh ephemeral keys make the bytes differ, but structure must match.
  EXPECT_EQ(batch[0].size(), single.size());
  EXPECT_EQ(batch[0][0], 0x04);
  EXPECT_NE(batch[0], single);
}

TEST(EciesBatchTest, EphemeralKeysAreIndependent) {
  SecureRandom rng(uint64_t{227});
  auto kp = EciesGenerateKeyPair(&rng);
  Bytes msg(24, 0x11);
  auto blobs = EciesEncryptBatch(kp.public_key, {msg, msg, msg}, &rng);
  EXPECT_NE(blobs[0], blobs[1]);
  EXPECT_NE(blobs[1], blobs[2]);
  // Distinct ephemeral points, not just distinct ciphertexts.
  EXPECT_NE(Bytes(blobs[0].begin(), blobs[0].begin() + 65),
            Bytes(blobs[1].begin(), blobs[1].begin() + 65));
}

TEST(EciesBatchTest, EmptyBatchAndEmptyPlaintext) {
  SecureRandom rng(uint64_t{229});
  auto kp = EciesGenerateKeyPair(&rng);
  EXPECT_TRUE(EciesEncryptBatch(kp.public_key, {}, &rng).empty());
  auto blobs = EciesEncryptBatch(kp.public_key, {Bytes{}}, &rng);
  ASSERT_EQ(blobs.size(), 1u);
  auto back = EciesDecrypt(kp.private_key, blobs[0]);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(EciesBatchTest, ParallelBatchMatchesSerialSemantics) {
  ThreadPool pool(4);
  SecureRandom rng(uint64_t{233});
  auto kp = EciesGenerateKeyPair(&rng);
  auto plaintexts = MakePlaintexts(64);
  auto blobs = EciesEncryptBatch(kp.public_key, plaintexts, &rng, &pool);
  ASSERT_EQ(blobs.size(), plaintexts.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    auto back = EciesDecrypt(kp.private_key, blobs[i]);
    ASSERT_TRUE(back.ok()) << "index " << i;
    EXPECT_EQ(*back, plaintexts[i]) << "index " << i;
  }
}

TEST(EciesBatchTest, OnionBatchPeelsLikeSingleShotOnion) {
  ThreadPool pool(2);
  SecureRandom rng(uint64_t{239});
  auto kp1 = EciesGenerateKeyPair(&rng);
  auto kp2 = EciesGenerateKeyPair(&rng);
  auto kp3 = EciesGenerateKeyPair(&rng);
  std::vector<P256Point> layers = {kp1.public_key, kp2.public_key,
                                   kp3.public_key};
  auto payloads = MakePlaintexts(12);
  auto onions = OnionEncryptBatch(layers, payloads, &rng, &pool);
  ASSERT_EQ(onions.size(), payloads.size());
  for (size_t i = 0; i < onions.size(); ++i) {
    auto l1 = OnionPeel(kp1.private_key, onions[i]);
    ASSERT_TRUE(l1.ok());
    auto l2 = OnionPeel(kp2.private_key, *l1);
    ASSERT_TRUE(l2.ok());
    auto l3 = OnionPeel(kp3.private_key, *l2);
    ASSERT_TRUE(l3.ok());
    EXPECT_EQ(*l3, payloads[i]) << "index " << i;
  }
}

TEST(EciesBatchTest, WrongKeyStillFails) {
  SecureRandom rng(uint64_t{241});
  auto kp = EciesGenerateKeyPair(&rng);
  auto other = EciesGenerateKeyPair(&rng);
  auto blobs = EciesEncryptBatch(kp.public_key, {Bytes(32, 1)}, &rng);
  auto back = EciesDecrypt(other.private_key, blobs[0]);
  if (back.ok()) EXPECT_NE(*back, Bytes(32, 1));
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

#include "crypto/ecies.h"

#include <gtest/gtest.h>

namespace shuffledp {
namespace crypto {
namespace {

TEST(EciesTest, RoundTrip) {
  SecureRandom rng(uint64_t{1});
  auto kp = EciesGenerateKeyPair(&rng);
  Bytes msg = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Bytes blob = EciesEncrypt(kp.public_key, msg, &rng);
  auto back = EciesDecrypt(kp.private_key, blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, msg);
}

TEST(EciesTest, EmptyMessageRoundTrip) {
  SecureRandom rng(uint64_t{2});
  auto kp = EciesGenerateKeyPair(&rng);
  Bytes blob = EciesEncrypt(kp.public_key, Bytes{}, &rng);
  auto back = EciesDecrypt(kp.private_key, blob);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(EciesTest, CiphertextIsRandomized) {
  SecureRandom rng(uint64_t{3});
  auto kp = EciesGenerateKeyPair(&rng);
  Bytes msg(32, 0x42);
  Bytes b1 = EciesEncrypt(kp.public_key, msg, &rng);
  Bytes b2 = EciesEncrypt(kp.public_key, msg, &rng);
  EXPECT_NE(b1, b2);  // fresh ephemeral key each time
}

TEST(EciesTest, WrongKeyFails) {
  SecureRandom rng(uint64_t{4});
  auto kp1 = EciesGenerateKeyPair(&rng);
  auto kp2 = EciesGenerateKeyPair(&rng);
  Bytes msg(100, 0x7);
  Bytes blob = EciesEncrypt(kp1.public_key, msg, &rng);
  auto back = EciesDecrypt(kp2.private_key, blob);
  if (back.ok()) EXPECT_NE(*back, msg);
}

TEST(EciesTest, TruncatedBlobRejected) {
  SecureRandom rng(uint64_t{5});
  auto kp = EciesGenerateKeyPair(&rng);
  Bytes blob = EciesEncrypt(kp.public_key, Bytes(10, 1), &rng);
  blob.resize(40);
  EXPECT_FALSE(EciesDecrypt(kp.private_key, blob).ok());
}

TEST(EciesTest, OverheadMatchesConstant) {
  SecureRandom rng(uint64_t{6});
  auto kp = EciesGenerateKeyPair(&rng);
  // 16-byte message pads to 32; total = 65 + 16 + 32.
  Bytes blob = EciesEncrypt(kp.public_key, Bytes(16, 0), &rng);
  EXPECT_EQ(blob.size(), kEciesOverhead + 32);
}

TEST(OnionTest, ThreeLayerPeeling) {
  SecureRandom rng(uint64_t{7});
  std::vector<EciesKeyPair> parties;
  std::vector<P256Point> layer_keys;
  for (int i = 0; i < 3; ++i) {
    parties.push_back(EciesGenerateKeyPair(&rng));
    layer_keys.push_back(parties.back().public_key);
  }
  Bytes payload = {0xDE, 0xAD, 0xBE, 0xEF};
  Bytes onion = OnionEncrypt(layer_keys, payload, &rng);

  // Peel in order: party 0 first.
  Bytes current = onion;
  for (int i = 0; i < 3; ++i) {
    auto peeled = OnionPeel(parties[i].private_key, current);
    ASSERT_TRUE(peeled.ok()) << "layer " << i;
    current = *peeled;
  }
  EXPECT_EQ(current, payload);
}

TEST(OnionTest, OutOfOrderPeelFails) {
  SecureRandom rng(uint64_t{8});
  auto kp1 = EciesGenerateKeyPair(&rng);
  auto kp2 = EciesGenerateKeyPair(&rng);
  Bytes onion =
      OnionEncrypt({kp1.public_key, kp2.public_key}, Bytes(8, 0x1), &rng);
  // Trying to peel with party 2's key first must not reveal the payload.
  auto wrong = OnionPeel(kp2.private_key, onion);
  if (wrong.ok()) {
    auto inner = OnionPeel(kp1.private_key, *wrong);
    EXPECT_FALSE(inner.ok() && *inner == Bytes(8, 0x1));
  }
}

TEST(OnionTest, SizeGrowsLinearlyInLayers) {
  SecureRandom rng(uint64_t{9});
  std::vector<P256Point> keys;
  Bytes payload(32, 0);
  size_t prev = 0;
  for (int layers = 1; layers <= 4; ++layers) {
    keys.push_back(EciesGenerateKeyPair(&rng).public_key);
    size_t size = OnionEncrypt(keys, payload, &rng).size();
    EXPECT_GT(size, prev);
    prev = size;
  }
  // Each layer adds kEciesOverhead + padding (<= 16 extra).
  EXPECT_LE(prev, 4 * (kEciesOverhead + 16) + payload.size() + 16);
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

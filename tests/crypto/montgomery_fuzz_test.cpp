// Property-based fuzz loop for MontgomeryCtx: random operation
// sequences (scalar, batch, and constant-time kernels, random aliasing
// within the documented contract, one shared Scratch, random backend
// flips) executed against a plain-domain BigInt shadow model, with
// every touched buffer cross-checked through the division-based
// reference after each step.
//
// Replayable: the seed is printed at startup and can be pinned with
// SHUFFLEDP_FUZZ_SEED. Iteration count is controlled with
// SHUFFLEDP_FUZZ_ITERS; each iteration is one modulus plus a bounded
// op sequence. The loop is additionally time-boxed so CI latency stays
// flat even if iterations are cranked up locally.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/bigint.h"
#include "crypto/montgomery.h"
#include "crypto/secure_random.h"

namespace shuffledp {
namespace crypto {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

class MontgomeryFuzz {
 public:
  MontgomeryFuzz(uint64_t seed, const BigInt& m)
      : rng_(seed),
        ctx_(std::move(MontgomeryCtx::Create(m)).value()),
        scratch_(ctx_),
        n_(ctx_.limbs()) {
    pool_.resize(kPool, std::vector<uint64_t>(n_, 0));
    shadow_.resize(kPool);
    for (size_t i = 0; i < kPool; ++i) {
      shadow_[i] = BigInt::RandomBelow(ctx_.modulus(), &rng_);
      ctx_.ToMontInto(shadow_[i], pool_[i].data(), &scratch_);
    }
  }

  // One random operation; returns false on a shadow-model mismatch.
  bool Step() {
    switch (rng_.NextU64() % 8) {
      case 0: {  // scalar mul, any aliasing
        size_t a = Pick(), b = Pick(), o = Pick();
        ctx_.MulInto(pool_[a].data(), pool_[b].data(), pool_[o].data(),
                     &scratch_);
        shadow_[o] = shadow_[a].Mul(shadow_[b]).Mod(ctx_.modulus());
        return Check(o, "MulInto");
      }
      case 1: {  // scalar sqr, possibly in place
        size_t a = Pick(), o = Pick();
        ctx_.SqrInto(pool_[a].data(), pool_[o].data(), &scratch_);
        shadow_[o] = shadow_[a].Mul(shadow_[a]).Mod(ctx_.modulus());
        return Check(o, "SqrInto");
      }
      case 2: {  // ct mul, any aliasing
        size_t a = Pick(), b = Pick(), o = Pick();
        ctx_.CtMulInto(pool_[a].data(), pool_[b].data(), pool_[o].data(),
                       &scratch_);
        shadow_[o] = shadow_[a].Mul(shadow_[b]).Mod(ctx_.modulus());
        return Check(o, "CtMulInto");
      }
      case 3: {  // ct sqr
        size_t a = Pick(), o = Pick();
        ctx_.CtSqrInto(pool_[a].data(), pool_[o].data(), &scratch_);
        shadow_[o] = shadow_[a].Mul(shadow_[a]).Mod(ctx_.modulus());
        return Check(o, "CtSqrInto");
      }
      case 4:  // batch mul: random lane shapes within the contract
        return BatchMul();
      case 5:  // batch sqr
        return BatchSqr();
      case 6: {  // refresh a buffer from a fresh plain value (ToMont)
        size_t o = Pick();
        shadow_[o] = BigInt::RandomBelow(ctx_.modulus(), &rng_);
        ctx_.ToMontInto(shadow_[o], pool_[o].data(), &scratch_);
        return Check(o, "ToMontInto");
      }
      default: {  // flip the batch backend under everything else
        auto backends = Backends();
        SetMontBackend(backends[rng_.NextU64() % backends.size()]);
        return true;
      }
    }
  }

  std::string failure() const { return failure_; }

 private:
  static constexpr size_t kPool = 8;

  static std::vector<MontBackend> Backends() {
    std::vector<MontBackend> out = {MontBackend::kPortable};
    if (BestMontBackend() == MontBackend::kAvx2) {
      out.push_back(MontBackend::kAvx2);
    }
    return out;
  }

  size_t Pick() { return rng_.NextU64() % kPool; }

  // Random k distinct output lanes; each lane's inputs drawn from
  // {its own output buffer} ∪ {buffers outside the output set}, per the
  // batch aliasing contract.
  void PickLanes(size_t* k, std::vector<size_t>* outs,
                 std::vector<size_t>* safe) {
    *k = 1 + rng_.NextU64() % kPool;  // 1..kPool distinct outs
    std::vector<size_t> perm(kPool);
    for (size_t i = 0; i < kPool; ++i) perm[i] = i;
    for (size_t i = kPool; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng_.NextU64() % i]);
    }
    outs->assign(perm.begin(), perm.begin() + *k);
    safe->assign(perm.begin() + *k, perm.end());
  }

  size_t PickInput(size_t own_out, const std::vector<size_t>& safe) {
    if (safe.empty() || rng_.NextU64() % 3 == 0) return own_out;
    return safe[rng_.NextU64() % safe.size()];
  }

  bool BatchMul() {
    size_t k;
    std::vector<size_t> outs, safe;
    PickLanes(&k, &outs, &safe);
    std::vector<const uint64_t*> ap(k), bp(k);
    std::vector<uint64_t*> op(k);
    std::vector<size_t> ai(k), bi(k);
    for (size_t l = 0; l < k; ++l) {
      ai[l] = PickInput(outs[l], safe);
      bi[l] = PickInput(outs[l], safe);
      ap[l] = pool_[ai[l]].data();
      bp[l] = pool_[bi[l]].data();
      op[l] = pool_[outs[l]].data();
    }
    scratch_.EnsureLanes(ctx_, std::min(k, MontgomeryCtx::kMaxBatchLanes));
    ctx_.MulManyInto(k, ap.data(), bp.data(), op.data(), &scratch_);
    for (size_t l = 0; l < k; ++l) {
      shadow_[outs[l]] =
          shadow_[ai[l]].Mul(shadow_[bi[l]]).Mod(ctx_.modulus());
    }
    for (size_t l = 0; l < k; ++l) {
      if (!Check(outs[l], "MulManyInto")) return false;
    }
    return true;
  }

  bool BatchSqr() {
    size_t k;
    std::vector<size_t> outs, safe;
    PickLanes(&k, &outs, &safe);
    std::vector<const uint64_t*> ap(k);
    std::vector<uint64_t*> op(k);
    std::vector<size_t> ai(k);
    for (size_t l = 0; l < k; ++l) {
      ai[l] = PickInput(outs[l], safe);
      ap[l] = pool_[ai[l]].data();
      op[l] = pool_[outs[l]].data();
    }
    scratch_.EnsureLanes(ctx_, std::min(k, MontgomeryCtx::kMaxBatchLanes));
    ctx_.SqrManyInto(k, ap.data(), op.data(), &scratch_);
    for (size_t l = 0; l < k; ++l) {
      shadow_[outs[l]] =
          shadow_[ai[l]].Mul(shadow_[ai[l]]).Mod(ctx_.modulus());
    }
    for (size_t l = 0; l < k; ++l) {
      if (!Check(outs[l], "SqrManyInto")) return false;
    }
    return true;
  }

  bool Check(size_t idx, const char* op) {
    BigInt got = ctx_.FromMontLimbs(pool_[idx].data(), &scratch_);
    if (got == shadow_[idx]) return true;
    failure_ = std::string(op) + " buffer " + std::to_string(idx) +
               " diverged from the shadow model (backend " +
               MontBackendName(ActiveMontBackend()) + ")";
    return false;
  }

  SecureRandom rng_;
  MontgomeryCtx ctx_;
  MontgomeryCtx::Scratch scratch_;
  const size_t n_;
  std::vector<std::vector<uint64_t>> pool_;
  std::vector<BigInt> shadow_;
  std::string failure_;
};

TEST(MontgomeryFuzzTest, RandomOpSequencesMatchShadowModel) {
  const uint64_t seed = EnvU64("SHUFFLEDP_FUZZ_SEED", 0x5eed2026u);
  const uint64_t iters = EnvU64("SHUFFLEDP_FUZZ_ITERS", 300);
  std::cout << "[fuzz] SHUFFLEDP_FUZZ_SEED=" << seed
            << " SHUFFLEDP_FUZZ_ITERS=" << iters << " (replay with env)\n";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  SecureRandom meta_rng(seed);
  const size_t mod_bits[] = {65, 127, 192, 320, 512, 777, 1024};
  MontBackend prev = ActiveMontBackend();
  uint64_t ran = 0;
  for (uint64_t it = 0; it < iters; ++it) {
    if (std::chrono::steady_clock::now() > deadline) break;
    BigInt m = BigInt::RandomWithBits(
        mod_bits[meta_rng.NextU64() % (sizeof(mod_bits) / sizeof(*mod_bits))],
        &meta_rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    const uint64_t iter_seed = meta_rng.NextU64();
    MontgomeryFuzz fuzz(iter_seed, m);
    const int steps = 40 + static_cast<int>(meta_rng.NextU64() % 60);
    for (int s = 0; s < steps; ++s) {
      ASSERT_TRUE(fuzz.Step())
          << fuzz.failure() << " — replay with SHUFFLEDP_FUZZ_SEED=" << seed
          << " (iteration " << it << ", step " << s << ")";
    }
    ++ran;
  }
  SetMontBackend(prev);
  std::cout << "[fuzz] completed " << ran << " iterations\n";
  EXPECT_GE(ran, 1u);
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

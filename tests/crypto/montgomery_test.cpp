#include "crypto/montgomery.h"

#include <gtest/gtest.h>

#include "crypto/secure_random.h"

namespace shuffledp {
namespace crypto {
namespace {

TEST(MontgomeryTest, RejectsBadModuli) {
  EXPECT_FALSE(MontgomeryCtx::Create(BigInt()).ok());
  EXPECT_FALSE(MontgomeryCtx::Create(BigInt(1)).ok());
  EXPECT_FALSE(MontgomeryCtx::Create(BigInt(100)).ok());  // even
}

TEST(MontgomeryTest, RoundTripThroughMontgomeryForm) {
  SecureRandom rng(uint64_t{1});
  for (size_t bits : {64, 128, 512, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int trial = 0; trial < 5; ++trial) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      EXPECT_EQ(ctx->FromMont(ctx->ToMont(a)), a) << bits;
    }
  }
}

TEST(MontgomeryTest, MontMulMatchesModMul) {
  SecureRandom rng(uint64_t{2});
  for (size_t bits : {64, 192, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int trial = 0; trial < 8; ++trial) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      BigInt b = BigInt::RandomBelow(m, &rng);
      BigInt expected = a.ModMul(b, m);
      BigInt got =
          ctx->FromMont(ctx->MontMul(ctx->ToMont(a), ctx->ToMont(b)));
      EXPECT_EQ(got, expected) << "bits=" << bits;
    }
  }
}

TEST(MontgomeryTest, ModExpMatchesIteratedMultiplication) {
  SecureRandom rng(uint64_t{3});
  BigInt m = BigInt::RandomWithBits(256, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = BigInt::RandomBelow(m, &rng);
  BigInt expected(1);
  for (int i = 0; i < 37; ++i) expected = expected.ModMul(a, m);
  EXPECT_EQ(ctx->ModExp(a, BigInt(37)), expected);
}

TEST(MontgomeryTest, ModExpEdgeCases) {
  SecureRandom rng(uint64_t{4});
  BigInt m = BigInt::RandomWithBits(128, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = BigInt::RandomBelow(m, &rng);
  EXPECT_EQ(ctx->ModExp(a, BigInt()), BigInt(1));       // a^0 = 1
  EXPECT_EQ(ctx->ModExp(a, BigInt(1)), a);              // a^1 = a
  EXPECT_EQ(ctx->ModExp(BigInt(), BigInt(5)), BigInt()); // 0^5 = 0
}

TEST(MontgomeryTest, FermatLittleTheorem) {
  SecureRandom rng(uint64_t{5});
  BigInt p = BigInt::GeneratePrime(192, &rng);
  auto ctx = MontgomeryCtx::Create(p);
  ASSERT_TRUE(ctx.ok());
  for (int trial = 0; trial < 4; ++trial) {
    BigInt a = BigInt::RandomBelow(p.Sub(BigInt(2)), &rng).Add(BigInt(1));
    EXPECT_EQ(ctx->ModExp(a, p.Sub(BigInt(1))), BigInt(1));
  }
}

// BigInt::ModExp dispatches to Montgomery for odd moduli; both paths
// must agree (regression guard for the dispatch).
TEST(MontgomeryTest, BigIntModExpDispatchAgrees) {
  SecureRandom rng(uint64_t{6});
  BigInt m = BigInt::RandomWithBits(512, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  BigInt a = BigInt::RandomBelow(m, &rng);
  BigInt e = BigInt::RandomWithBits(256, &rng);
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(a.ModExp(e, m), ctx->ModExp(a, e));
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

#include "crypto/montgomery.h"

#include <gtest/gtest.h>

#include "crypto/secure_random.h"

namespace shuffledp {
namespace crypto {
namespace {

TEST(MontgomeryTest, RejectsBadModuli) {
  EXPECT_FALSE(MontgomeryCtx::Create(BigInt()).ok());
  EXPECT_FALSE(MontgomeryCtx::Create(BigInt(1)).ok());
  EXPECT_FALSE(MontgomeryCtx::Create(BigInt(100)).ok());  // even
}

TEST(MontgomeryTest, RoundTripThroughMontgomeryForm) {
  SecureRandom rng(uint64_t{1});
  for (size_t bits : {64, 128, 512, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int trial = 0; trial < 5; ++trial) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      EXPECT_EQ(ctx->FromMont(ctx->ToMont(a)), a) << bits;
    }
  }
}

TEST(MontgomeryTest, MontMulMatchesModMul) {
  SecureRandom rng(uint64_t{2});
  for (size_t bits : {64, 192, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int trial = 0; trial < 8; ++trial) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      BigInt b = BigInt::RandomBelow(m, &rng);
      BigInt expected = a.ModMul(b, m);
      BigInt got =
          ctx->FromMont(ctx->MontMul(ctx->ToMont(a), ctx->ToMont(b)));
      EXPECT_EQ(got, expected) << "bits=" << bits;
    }
  }
}

TEST(MontgomeryTest, ModExpMatchesIteratedMultiplication) {
  SecureRandom rng(uint64_t{3});
  BigInt m = BigInt::RandomWithBits(256, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = BigInt::RandomBelow(m, &rng);
  BigInt expected(1);
  for (int i = 0; i < 37; ++i) expected = expected.ModMul(a, m);
  EXPECT_EQ(ctx->ModExp(a, BigInt(37)), expected);
}

TEST(MontgomeryTest, ModExpEdgeCases) {
  SecureRandom rng(uint64_t{4});
  BigInt m = BigInt::RandomWithBits(128, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = BigInt::RandomBelow(m, &rng);
  EXPECT_EQ(ctx->ModExp(a, BigInt()), BigInt(1));       // a^0 = 1
  EXPECT_EQ(ctx->ModExp(a, BigInt(1)), a);              // a^1 = a
  EXPECT_EQ(ctx->ModExp(BigInt(), BigInt(5)), BigInt()); // 0^5 = 0
}

TEST(MontgomeryTest, FermatLittleTheorem) {
  SecureRandom rng(uint64_t{5});
  BigInt p = BigInt::GeneratePrime(192, &rng);
  auto ctx = MontgomeryCtx::Create(p);
  ASSERT_TRUE(ctx.ok());
  for (int trial = 0; trial < 4; ++trial) {
    BigInt a = BigInt::RandomBelow(p.Sub(BigInt(2)), &rng).Add(BigInt(1));
    EXPECT_EQ(ctx->ModExp(a, p.Sub(BigInt(1))), BigInt(1));
  }
}

// BigInt::ModExp dispatches to Montgomery for odd moduli; both paths
// must agree (regression guard for the dispatch).
TEST(MontgomeryTest, BigIntModExpDispatchAgrees) {
  SecureRandom rng(uint64_t{6});
  BigInt m = BigInt::RandomWithBits(512, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  BigInt a = BigInt::RandomBelow(m, &rng);
  BigInt e = BigInt::RandomWithBits(256, &rng);
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(a.ModExp(e, m), ctx->ModExp(a, e));
}

// Division-based references, independent of every Montgomery kernel.
BigInt RefModMul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return a.Mul(b).Mod(m);
}

BigInt RefModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  BigInt acc(1);
  acc = acc.Mod(m);
  BigInt b = base.Mod(m);
  for (size_t i = exp.BitLength(); i-- > 0;) {
    acc = RefModMul(acc, acc, m);
    if (exp.GetBit(i)) acc = RefModMul(acc, b, m);
  }
  return acc;
}

// Randomized ModMul cross-check against the generic multiply+divide
// reference, over odd moduli of assorted (including non-limb-aligned)
// widths and edge operands: 0, 1, m-1, and operands >= m.
TEST(MontgomeryTest, ModMulMatchesReferenceRandomized) {
  SecureRandom rng(uint64_t{7});
  for (size_t bits : {65, 127, 192, 513, 1000, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    std::vector<BigInt> operands = {
        BigInt(),                     // 0
        BigInt(1),                    // 1
        m.Sub(BigInt(1)),             // m - 1
        m,                            // == m (reduces to 0)
        m.Add(BigInt(5)),             // > m
        m.Mul(BigInt(2)).Add(BigInt(3)),  // > 2m
    };
    for (int trial = 0; trial < 6; ++trial) {
      operands.push_back(BigInt::RandomBelow(m, &rng));
    }
    for (const BigInt& a : operands) {
      for (const BigInt& b : operands) {
        EXPECT_EQ(ctx->ModMul(a, b), RefModMul(a, b, m))
            << "bits=" << bits;
      }
    }
  }
}

// Randomized ModExp cross-check against binary square-and-multiply on
// the division path; covers the sliding-window width breakpoints and
// edge exponents/bases.
TEST(MontgomeryTest, ModExpMatchesReferenceRandomized) {
  SecureRandom rng(uint64_t{8});
  for (size_t bits : {65, 192, 513, 1024}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    std::vector<BigInt> bases = {BigInt(), BigInt(1), m.Sub(BigInt(1)),
                                 m.Add(BigInt(7)),
                                 BigInt::RandomBelow(m, &rng)};
    // Exponent sizes straddling every window-width breakpoint.
    std::vector<BigInt> exps = {BigInt(), BigInt(1), BigInt(2), BigInt(3),
                                m.Sub(BigInt(1))};
    for (size_t ebits : {16, 25, 81, 241, 700}) {
      exps.push_back(BigInt::RandomWithBits(ebits, &rng));
    }
    for (const BigInt& a : bases) {
      for (const BigInt& e : exps) {
        EXPECT_EQ(ctx->ModExp(a, e), RefModExp(a, e, m))
            << "bits=" << bits << " ebits=" << e.BitLength();
      }
    }
  }
}

// The dedicated squaring kernel must agree with the general multiply.
TEST(MontgomeryTest, MontSqrMatchesMontMul) {
  SecureRandom rng(uint64_t{9});
  for (size_t bits : {64, 127, 576, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int trial = 0; trial < 12; ++trial) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      EXPECT_EQ(ctx->MontSqr(a), ctx->MontMul(a, a)) << "bits=" << bits;
    }
    EXPECT_EQ(ctx->MontSqr(BigInt()), BigInt());
    BigInt top = m.Sub(BigInt(1));
    EXPECT_EQ(ctx->MontSqr(top), ctx->MontMul(top, top));
  }
}

// Raw kernels with one reused scratch, in-place outputs, and mixed
// Mul/Sqr interleavings must match the BigInt wrappers.
TEST(MontgomeryTest, KernelScratchReuseAndAliasing) {
  SecureRandom rng(uint64_t{10});
  BigInt m = BigInt::RandomWithBits(1024, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  const size_t n = ctx->limbs();
  MontgomeryCtx::Scratch scratch(*ctx);

  BigInt a = BigInt::RandomBelow(m, &rng);
  BigInt b = BigInt::RandomBelow(m, &rng);
  std::vector<uint64_t> va(n), vb(n);
  ctx->ToMontInto(a, va.data(), &scratch);
  ctx->ToMontInto(b, vb.data(), &scratch);

  // ((a*b)^2 * a) with aliased outputs and a single scratch...
  std::vector<uint64_t> acc(n);
  ctx->MulInto(va.data(), vb.data(), acc.data(), &scratch);
  ctx->SqrInto(acc.data(), acc.data(), &scratch);
  ctx->MulInto(acc.data(), va.data(), acc.data(), &scratch);
  BigInt got = ctx->FromMontLimbs(acc.data(), &scratch);

  // ...against the BigInt-level wrappers.
  BigInt am = ctx->ToMont(a), bm = ctx->ToMont(b);
  BigInt expect = ctx->MontMul(am, bm);
  expect = ctx->MontSqr(expect);
  expect = ctx->MontMul(expect, am);
  EXPECT_EQ(got, ctx->FromMont(expect));

  // And against the plain-domain reference.
  BigInt ab = RefModMul(a, b, m);
  EXPECT_EQ(got, RefModMul(RefModMul(ab, ab, m), a, m));
}

// ---------------------------------------------------------------------------
// Interleaved batch kernels (MulManyInto / SqrManyInto / ToMontManyInto)
// ---------------------------------------------------------------------------

// Backends to exercise: always portable; AVX2 too when the host has it.
std::vector<MontBackend> TestableBackends() {
  std::vector<MontBackend> out = {MontBackend::kPortable};
  if (BestMontBackend() == MontBackend::kAvx2) {
    out.push_back(MontBackend::kAvx2);
  }
  return out;
}

// RAII pin so a failing test can't leak a forced backend into later tests.
class BackendPin {
 public:
  explicit BackendPin(MontBackend b) : prev_(ActiveMontBackend()) {
    SetMontBackend(b);
  }
  ~BackendPin() { SetMontBackend(prev_); }

 private:
  MontBackend prev_;
};

// Montgomery-domain operand sets with adversarial raw values: 0, 1, m-1
// (all valid residues), plus uniform randoms.
std::vector<std::vector<uint64_t>> MakeLaneOperands(const MontgomeryCtx& ctx,
                                                    size_t count,
                                                    SecureRandom* rng) {
  const size_t n = ctx.limbs();
  MontgomeryCtx::Scratch scratch(ctx);
  std::vector<std::vector<uint64_t>> lanes;
  for (size_t i = 0; i < count; ++i) {
    std::vector<uint64_t> v(n, 0);
    switch (i % 4) {
      case 0:  // random residue in Montgomery form
        ctx.ToMontInto(BigInt::RandomBelow(ctx.modulus(), rng), v.data(),
                       &scratch);
        break;
      case 1:  // raw 0
        break;
      case 2:  // raw 1
        v[0] = 1;
        break;
      case 3: {  // raw m - 1
        BigInt top = ctx.modulus().Sub(BigInt(1));
        for (size_t w = 0; w < n; ++w) v[w] = top.limb(w);
        break;
      }
    }
    lanes.push_back(std::move(v));
  }
  return lanes;
}

// Every batch width from 1 through past kMaxBatchLanes, on every
// available backend, must be bitwise identical to k scalar MulInto calls.
TEST(MontgomeryBatchTest, MulManyBitwiseEqualsScalar) {
  SecureRandom rng(uint64_t{20});
  for (MontBackend backend : TestableBackends()) {
    BackendPin pin(backend);
    for (size_t bits : {65, 127, 512, 1000, 2048}) {
      BigInt m = BigInt::RandomWithBits(bits, &rng);
      if (!m.IsOdd()) m = m.Add(BigInt(1));
      auto ctx = MontgomeryCtx::Create(m);
      ASSERT_TRUE(ctx.ok());
      const size_t n = ctx->limbs();
      MontgomeryCtx::Scratch scratch(*ctx);
      for (size_t k : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 17u}) {
        auto as = MakeLaneOperands(*ctx, k, &rng);
        auto bs = MakeLaneOperands(*ctx, k, &rng);
        std::vector<std::vector<uint64_t>> got(k, std::vector<uint64_t>(n));
        std::vector<const uint64_t*> ap(k), bp(k);
        std::vector<uint64_t*> op(k);
        for (size_t l = 0; l < k; ++l) {
          ap[l] = as[l].data();
          bp[l] = bs[l].data();
          op[l] = got[l].data();
        }
        ctx->MulManyInto(k, ap.data(), bp.data(), op.data(), &scratch);
        for (size_t l = 0; l < k; ++l) {
          std::vector<uint64_t> want(n);
          ctx->MulInto(as[l].data(), bs[l].data(), want.data(), &scratch);
          EXPECT_EQ(got[l], want)
              << MontBackendName(backend) << " bits=" << bits << " k=" << k
              << " lane=" << l;
        }
      }
    }
  }
}

TEST(MontgomeryBatchTest, SqrManyBitwiseEqualsScalar) {
  SecureRandom rng(uint64_t{21});
  for (MontBackend backend : TestableBackends()) {
    BackendPin pin(backend);
    for (size_t bits : {65, 192, 513, 1024, 2048}) {
      BigInt m = BigInt::RandomWithBits(bits, &rng);
      if (!m.IsOdd()) m = m.Add(BigInt(1));
      auto ctx = MontgomeryCtx::Create(m);
      ASSERT_TRUE(ctx.ok());
      const size_t n = ctx->limbs();
      MontgomeryCtx::Scratch scratch(*ctx);
      for (size_t k : {1u, 2u, 3u, 4u, 6u, 8u, 11u}) {
        auto as = MakeLaneOperands(*ctx, k, &rng);
        std::vector<std::vector<uint64_t>> got(k, std::vector<uint64_t>(n));
        std::vector<const uint64_t*> ap(k);
        std::vector<uint64_t*> op(k);
        for (size_t l = 0; l < k; ++l) {
          ap[l] = as[l].data();
          op[l] = got[l].data();
        }
        ctx->SqrManyInto(k, ap.data(), op.data(), &scratch);
        for (size_t l = 0; l < k; ++l) {
          std::vector<uint64_t> want(n);
          ctx->SqrInto(as[l].data(), want.data(), &scratch);
          EXPECT_EQ(got[l], want)
              << MontBackendName(backend) << " bits=" << bits << " k=" << k
              << " lane=" << l;
        }
      }
    }
  }
}

TEST(MontgomeryBatchTest, ToMontManyBitwiseEqualsScalar) {
  SecureRandom rng(uint64_t{22});
  for (MontBackend backend : TestableBackends()) {
    BackendPin pin(backend);
    BigInt m = BigInt::RandomWithBits(1024, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    const size_t n = ctx->limbs();
    MontgomeryCtx::Scratch scratch(*ctx);
    const size_t k = 13;  // forces an 8-lane block plus a ragged tail
    std::vector<BigInt> vals = {BigInt(), BigInt(1), m.Sub(BigInt(1)),
                                m.Add(BigInt(9))};  // >= m: must reduce
    while (vals.size() < k) vals.push_back(BigInt::RandomBelow(m, &rng));
    std::vector<const BigInt*> vp(k);
    std::vector<std::vector<uint64_t>> got(k, std::vector<uint64_t>(n));
    std::vector<uint64_t*> op(k);
    for (size_t l = 0; l < k; ++l) {
      vp[l] = &vals[l];
      op[l] = got[l].data();
    }
    ctx->ToMontManyInto(k, vp.data(), op.data(), &scratch);
    for (size_t l = 0; l < k; ++l) {
      std::vector<uint64_t> want(n);
      ctx->ToMontInto(vals[l], want.data(), &scratch);
      EXPECT_EQ(got[l], want) << MontBackendName(backend) << " lane=" << l;
    }
  }
}

// Adversarial lane mixing within the documented contract: one input
// buffer shared by every lane, plus in-place lanes (out[l] aliasing its
// own lane's inputs), with pairwise-distinct out pointers.
TEST(MontgomeryBatchTest, LaneMixingAliasedBatches) {
  SecureRandom rng(uint64_t{23});
  for (MontBackend backend : TestableBackends()) {
    BackendPin pin(backend);
    BigInt m = BigInt::RandomWithBits(512, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    const size_t n = ctx->limbs();
    MontgomeryCtx::Scratch scratch(*ctx);

    const size_t k = 8;
    auto vals = MakeLaneOperands(*ctx, k, &rng);
    auto orig = vals;  // scalar reference computed from pristine copies

    // Every lane multiplies in place by one shared mask buffer (the
    // production rerandomize shape: out[l] == a[l], b shared).
    std::vector<uint64_t> mask = orig[0];
    std::vector<const uint64_t*> ap(k), bp(k);
    std::vector<uint64_t*> op(k);
    for (size_t l = 0; l < k; ++l) {
      ap[l] = vals[l].data();
      bp[l] = mask.data();
      op[l] = vals[l].data();
    }
    ctx->MulManyInto(k, ap.data(), bp.data(), op.data(), &scratch);
    for (size_t l = 0; l < k; ++l) {
      std::vector<uint64_t> want(n);
      ctx->MulInto(orig[l].data(), orig[0].data(), want.data(), &scratch);
      EXPECT_EQ(vals[l], want)
          << MontBackendName(backend) << " lane=" << l;
    }

    // All lanes reading the same single buffer, squared in place into
    // distinct outputs.
    std::vector<uint64_t> shared = orig[0];
    std::vector<std::vector<uint64_t>> outs(k, std::vector<uint64_t>(n));
    for (size_t l = 0; l < k; ++l) {
      ap[l] = shared.data();
      op[l] = outs[l].data();
    }
    ctx->SqrManyInto(k, ap.data(), op.data(), &scratch);
    std::vector<uint64_t> want(n);
    ctx->SqrInto(orig[0].data(), want.data(), &scratch);
    for (size_t l = 0; l < k; ++l) {
      EXPECT_EQ(outs[l], want) << MontBackendName(backend) << " lane=" << l;
    }
  }
}

// Forcing an unavailable backend must degrade silently, and the
// portable/AVX2 pair must agree bitwise on the same inputs.
TEST(MontgomeryBatchTest, BackendDispatchDegradesAndAgrees) {
  MontBackend prev = ActiveMontBackend();
  MontBackend got = SetMontBackend(MontBackend::kAvx2);
  if (BestMontBackend() == MontBackend::kPortable) {
    EXPECT_EQ(got, MontBackend::kPortable);  // silently degraded
  } else {
    EXPECT_EQ(got, MontBackend::kAvx2);
  }
  EXPECT_EQ(SetMontBackend(MontBackend::kPortable), MontBackend::kPortable);
  SetMontBackend(prev);

  if (BestMontBackend() != MontBackend::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this host; cross-backend check skipped";
  }
  SecureRandom rng(uint64_t{24});
  BigInt m = BigInt::RandomWithBits(2048, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  const size_t n = ctx->limbs();
  MontgomeryCtx::Scratch scratch(*ctx);
  const size_t k = 8;
  auto as = MakeLaneOperands(*ctx, k, &rng);
  auto bs = MakeLaneOperands(*ctx, k, &rng);
  std::vector<const uint64_t*> ap(k), bp(k);
  std::vector<std::vector<uint64_t>> o1(k, std::vector<uint64_t>(n));
  std::vector<std::vector<uint64_t>> o2(k, std::vector<uint64_t>(n));
  std::vector<uint64_t*> op(k);
  for (size_t l = 0; l < k; ++l) {
    ap[l] = as[l].data();
    bp[l] = bs[l].data();
  }
  {
    BackendPin pin(MontBackend::kAvx2);
    for (size_t l = 0; l < k; ++l) op[l] = o1[l].data();
    ctx->MulManyInto(k, ap.data(), bp.data(), op.data(), &scratch);
  }
  {
    BackendPin pin(MontBackend::kPortable);
    for (size_t l = 0; l < k; ++l) op[l] = o2[l].data();
    ctx->MulManyInto(k, ap.data(), bp.data(), op.data(), &scratch);
  }
  EXPECT_EQ(o1, o2);
}

// ---------------------------------------------------------------------------
// Constant-time tier (CtMulInto / CtSqrInto / CtModExp / CtModExpManyInto)
// ---------------------------------------------------------------------------

// The ct kernels compute the same function as the variable-time ones;
// only the schedule differs. Outputs must be bitwise identical.
TEST(MontgomeryCtTest, CtMulAndSqrBitwiseEqualVariableTime) {
  SecureRandom rng(uint64_t{25});
  for (size_t bits : {65, 512, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    const size_t n = ctx->limbs();
    MontgomeryCtx::Scratch scratch(*ctx);
    auto ops = MakeLaneOperands(*ctx, 10, &rng);
    for (size_t i = 0; i < ops.size(); ++i) {
      for (size_t j = 0; j < ops.size(); ++j) {
        std::vector<uint64_t> got(n), want(n);
        ctx->CtMulInto(ops[i].data(), ops[j].data(), got.data(), &scratch);
        ctx->MulInto(ops[i].data(), ops[j].data(), want.data(), &scratch);
        EXPECT_EQ(got, want) << "bits=" << bits;
      }
      std::vector<uint64_t> got(n), want(n);
      ctx->CtSqrInto(ops[i].data(), got.data(), &scratch);
      ctx->SqrInto(ops[i].data(), want.data(), &scratch);
      EXPECT_EQ(got, want) << "bits=" << bits;
      // In-place ct multiply (out aliases both inputs).
      std::vector<uint64_t> inplace = ops[i];
      ctx->CtMulInto(inplace.data(), inplace.data(), inplace.data(),
                     &scratch);
      EXPECT_EQ(inplace, want) << "bits=" << bits;
    }
  }
}

// CtModExp vs the division-based reference across the fixed-window
// breakpoints (<=24 -> 2, <=80 -> 3, <=240 -> 4, else 5) and edge
// bases/exponents, including exp_bits padding beyond BitLength.
TEST(MontgomeryCtTest, CtModExpMatchesReferenceAcrossWindowBreakpoints) {
  SecureRandom rng(uint64_t{26});
  for (size_t bits : {127, 512, 1024}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    std::vector<BigInt> bases = {BigInt(), BigInt(1), m.Sub(BigInt(1)),
                                 m.Add(BigInt(11)),
                                 BigInt::RandomBelow(m, &rng)};
    std::vector<BigInt> exps = {BigInt(), BigInt(1), BigInt(2)};
    for (size_t ebits : {5, 24, 25, 64, 80, 81, 240, 241, 600}) {
      exps.push_back(BigInt::RandomWithBits(ebits, &rng));
    }
    for (const BigInt& a : bases) {
      for (const BigInt& e : exps) {
        BigInt want = RefModExp(a, e, m);
        EXPECT_EQ(ctx->CtModExp(a, e), want)
            << "bits=" << bits << " ebits=" << e.BitLength();
        // Padding the schedule with high zero windows must not change
        // the value (it is exactly what hides the true bit length).
        EXPECT_EQ(ctx->CtModExp(a, e, e.BitLength() + 37), want)
            << "bits=" << bits << " ebits=" << e.BitLength() << " padded";
      }
    }
    // ct and variable-time tiers agree on a full-width secret-sized
    // exponent (the production decryption shape).
    BigInt a = BigInt::RandomBelow(m, &rng);
    BigInt e = m.Sub(BigInt(1));
    EXPECT_EQ(ctx->CtModExp(a, e), ctx->ModExp(a, e));
  }
}

// Batched ct exponentiation with a shared exponent: every lane must be
// bitwise identical to the one-lane CtModExp, for widths spanning lane
// blocks and ragged tails, on both backends (the ladder itself is
// pinned to portable; entry/exit conversions may dispatch).
TEST(MontgomeryCtTest, CtModExpManyBitwiseEqualsSingleLane) {
  SecureRandom rng(uint64_t{27});
  for (MontBackend backend : TestableBackends()) {
    BackendPin pin(backend);
    BigInt m = BigInt::RandomWithBits(768, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    const size_t n = ctx->limbs();
    MontgomeryCtx::Scratch scratch(*ctx);
    BigInt e = BigInt::RandomWithBits(384, &rng);
    for (size_t k : {1u, 3u, 8u, 10u}) {
      std::vector<BigInt> bases;
      bases.push_back(BigInt());  // zero base lane
      bases.push_back(BigInt(1));
      while (bases.size() < k) bases.push_back(BigInt::RandomBelow(m, &rng));
      bases.resize(k);
      std::vector<std::vector<uint64_t>> mont(k, std::vector<uint64_t>(n));
      std::vector<const uint64_t*> bp(k);
      std::vector<uint64_t*> op(k);
      std::vector<std::vector<uint64_t>> got(k, std::vector<uint64_t>(n));
      for (size_t l = 0; l < k; ++l) {
        ctx->ToMontInto(bases[l], mont[l].data(), &scratch);
        bp[l] = mont[l].data();
        op[l] = got[l].data();
      }
      ctx->CtModExpManyInto(k, bp.data(), e, 0, op.data(), &scratch);
      for (size_t l = 0; l < k; ++l) {
        EXPECT_EQ(ctx->FromMontLimbs(got[l].data(), &scratch),
                  ctx->CtModExp(bases[l], e))
            << MontBackendName(backend) << " k=" << k << " lane=" << l;
      }
    }
  }
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

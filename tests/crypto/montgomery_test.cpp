#include "crypto/montgomery.h"

#include <gtest/gtest.h>

#include "crypto/secure_random.h"

namespace shuffledp {
namespace crypto {
namespace {

TEST(MontgomeryTest, RejectsBadModuli) {
  EXPECT_FALSE(MontgomeryCtx::Create(BigInt()).ok());
  EXPECT_FALSE(MontgomeryCtx::Create(BigInt(1)).ok());
  EXPECT_FALSE(MontgomeryCtx::Create(BigInt(100)).ok());  // even
}

TEST(MontgomeryTest, RoundTripThroughMontgomeryForm) {
  SecureRandom rng(uint64_t{1});
  for (size_t bits : {64, 128, 512, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int trial = 0; trial < 5; ++trial) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      EXPECT_EQ(ctx->FromMont(ctx->ToMont(a)), a) << bits;
    }
  }
}

TEST(MontgomeryTest, MontMulMatchesModMul) {
  SecureRandom rng(uint64_t{2});
  for (size_t bits : {64, 192, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int trial = 0; trial < 8; ++trial) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      BigInt b = BigInt::RandomBelow(m, &rng);
      BigInt expected = a.ModMul(b, m);
      BigInt got =
          ctx->FromMont(ctx->MontMul(ctx->ToMont(a), ctx->ToMont(b)));
      EXPECT_EQ(got, expected) << "bits=" << bits;
    }
  }
}

TEST(MontgomeryTest, ModExpMatchesIteratedMultiplication) {
  SecureRandom rng(uint64_t{3});
  BigInt m = BigInt::RandomWithBits(256, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = BigInt::RandomBelow(m, &rng);
  BigInt expected(1);
  for (int i = 0; i < 37; ++i) expected = expected.ModMul(a, m);
  EXPECT_EQ(ctx->ModExp(a, BigInt(37)), expected);
}

TEST(MontgomeryTest, ModExpEdgeCases) {
  SecureRandom rng(uint64_t{4});
  BigInt m = BigInt::RandomWithBits(128, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = BigInt::RandomBelow(m, &rng);
  EXPECT_EQ(ctx->ModExp(a, BigInt()), BigInt(1));       // a^0 = 1
  EXPECT_EQ(ctx->ModExp(a, BigInt(1)), a);              // a^1 = a
  EXPECT_EQ(ctx->ModExp(BigInt(), BigInt(5)), BigInt()); // 0^5 = 0
}

TEST(MontgomeryTest, FermatLittleTheorem) {
  SecureRandom rng(uint64_t{5});
  BigInt p = BigInt::GeneratePrime(192, &rng);
  auto ctx = MontgomeryCtx::Create(p);
  ASSERT_TRUE(ctx.ok());
  for (int trial = 0; trial < 4; ++trial) {
    BigInt a = BigInt::RandomBelow(p.Sub(BigInt(2)), &rng).Add(BigInt(1));
    EXPECT_EQ(ctx->ModExp(a, p.Sub(BigInt(1))), BigInt(1));
  }
}

// BigInt::ModExp dispatches to Montgomery for odd moduli; both paths
// must agree (regression guard for the dispatch).
TEST(MontgomeryTest, BigIntModExpDispatchAgrees) {
  SecureRandom rng(uint64_t{6});
  BigInt m = BigInt::RandomWithBits(512, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  BigInt a = BigInt::RandomBelow(m, &rng);
  BigInt e = BigInt::RandomWithBits(256, &rng);
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(a.ModExp(e, m), ctx->ModExp(a, e));
}

// Division-based references, independent of every Montgomery kernel.
BigInt RefModMul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return a.Mul(b).Mod(m);
}

BigInt RefModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  BigInt acc(1);
  acc = acc.Mod(m);
  BigInt b = base.Mod(m);
  for (size_t i = exp.BitLength(); i-- > 0;) {
    acc = RefModMul(acc, acc, m);
    if (exp.GetBit(i)) acc = RefModMul(acc, b, m);
  }
  return acc;
}

// Randomized ModMul cross-check against the generic multiply+divide
// reference, over odd moduli of assorted (including non-limb-aligned)
// widths and edge operands: 0, 1, m-1, and operands >= m.
TEST(MontgomeryTest, ModMulMatchesReferenceRandomized) {
  SecureRandom rng(uint64_t{7});
  for (size_t bits : {65, 127, 192, 513, 1000, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    std::vector<BigInt> operands = {
        BigInt(),                     // 0
        BigInt(1),                    // 1
        m.Sub(BigInt(1)),             // m - 1
        m,                            // == m (reduces to 0)
        m.Add(BigInt(5)),             // > m
        m.Mul(BigInt(2)).Add(BigInt(3)),  // > 2m
    };
    for (int trial = 0; trial < 6; ++trial) {
      operands.push_back(BigInt::RandomBelow(m, &rng));
    }
    for (const BigInt& a : operands) {
      for (const BigInt& b : operands) {
        EXPECT_EQ(ctx->ModMul(a, b), RefModMul(a, b, m))
            << "bits=" << bits;
      }
    }
  }
}

// Randomized ModExp cross-check against binary square-and-multiply on
// the division path; covers the sliding-window width breakpoints and
// edge exponents/bases.
TEST(MontgomeryTest, ModExpMatchesReferenceRandomized) {
  SecureRandom rng(uint64_t{8});
  for (size_t bits : {65, 192, 513, 1024}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    std::vector<BigInt> bases = {BigInt(), BigInt(1), m.Sub(BigInt(1)),
                                 m.Add(BigInt(7)),
                                 BigInt::RandomBelow(m, &rng)};
    // Exponent sizes straddling every window-width breakpoint.
    std::vector<BigInt> exps = {BigInt(), BigInt(1), BigInt(2), BigInt(3),
                                m.Sub(BigInt(1))};
    for (size_t ebits : {16, 25, 81, 241, 700}) {
      exps.push_back(BigInt::RandomWithBits(ebits, &rng));
    }
    for (const BigInt& a : bases) {
      for (const BigInt& e : exps) {
        EXPECT_EQ(ctx->ModExp(a, e), RefModExp(a, e, m))
            << "bits=" << bits << " ebits=" << e.BitLength();
      }
    }
  }
}

// The dedicated squaring kernel must agree with the general multiply.
TEST(MontgomeryTest, MontSqrMatchesMontMul) {
  SecureRandom rng(uint64_t{9});
  for (size_t bits : {64, 127, 576, 1024, 2048}) {
    BigInt m = BigInt::RandomWithBits(bits, &rng);
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    auto ctx = MontgomeryCtx::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int trial = 0; trial < 12; ++trial) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      EXPECT_EQ(ctx->MontSqr(a), ctx->MontMul(a, a)) << "bits=" << bits;
    }
    EXPECT_EQ(ctx->MontSqr(BigInt()), BigInt());
    BigInt top = m.Sub(BigInt(1));
    EXPECT_EQ(ctx->MontSqr(top), ctx->MontMul(top, top));
  }
}

// Raw kernels with one reused scratch, in-place outputs, and mixed
// Mul/Sqr interleavings must match the BigInt wrappers.
TEST(MontgomeryTest, KernelScratchReuseAndAliasing) {
  SecureRandom rng(uint64_t{10});
  BigInt m = BigInt::RandomWithBits(1024, &rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  const size_t n = ctx->limbs();
  MontgomeryCtx::Scratch scratch(*ctx);

  BigInt a = BigInt::RandomBelow(m, &rng);
  BigInt b = BigInt::RandomBelow(m, &rng);
  std::vector<uint64_t> va(n), vb(n);
  ctx->ToMontInto(a, va.data(), &scratch);
  ctx->ToMontInto(b, vb.data(), &scratch);

  // ((a*b)^2 * a) with aliased outputs and a single scratch...
  std::vector<uint64_t> acc(n);
  ctx->MulInto(va.data(), vb.data(), acc.data(), &scratch);
  ctx->SqrInto(acc.data(), acc.data(), &scratch);
  ctx->MulInto(acc.data(), va.data(), acc.data(), &scratch);
  BigInt got = ctx->FromMontLimbs(acc.data(), &scratch);

  // ...against the BigInt-level wrappers.
  BigInt am = ctx->ToMont(a), bm = ctx->ToMont(b);
  BigInt expect = ctx->MontMul(am, bm);
  expect = ctx->MontSqr(expect);
  expect = ctx->MontMul(expect, am);
  EXPECT_EQ(got, ctx->FromMont(expect));

  // And against the plain-domain reference.
  BigInt ab = RefModMul(a, b, m);
  EXPECT_EQ(got, RefModMul(RefModMul(ab, ab, m), a, m));
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

#include "crypto/paillier.h"

#include <gtest/gtest.h>

namespace shuffledp {
namespace crypto {
namespace {

// Shared small key pair (256-bit N) so the suite stays fast; one test
// exercises a production-size 1024-bit key.
class PaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new SecureRandom(uint64_t{20200802});
    auto kp = PaillierGenerateKeyPair(256, rng_);
    ASSERT_TRUE(kp.ok());
    kp_ = new PaillierKeyPair(std::move(kp).value());
  }
  static void TearDownTestSuite() {
    delete kp_;
    delete rng_;
    kp_ = nullptr;
    rng_ = nullptr;
  }

  static SecureRandom* rng_;
  static PaillierKeyPair* kp_;
};

SecureRandom* PaillierTest::rng_ = nullptr;
PaillierKeyPair* PaillierTest::kp_ = nullptr;

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (uint64_t m : {0ULL, 1ULL, 42ULL, 0xFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL}) {
    auto c = kp_->pub.EncryptU64(m, rng_);
    ASSERT_TRUE(c.ok());
    auto back = kp_->priv.Decrypt(*c);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->ToU64Saturating(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  auto c1 = kp_->pub.EncryptU64(5, rng_);
  auto c2 = kp_->pub.EncryptU64(5, rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1->value, c2->value);
}

TEST_F(PaillierTest, HomomorphicAddition) {
  auto c1 = kp_->pub.EncryptU64(111, rng_);
  auto c2 = kp_->pub.EncryptU64(222, rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto sum = kp_->pub.Add(*c1, *c2);
  auto back = kp_->priv.Decrypt(sum);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 333u);
}

TEST_F(PaillierTest, HomomorphicAddPlain) {
  auto c = kp_->pub.EncryptU64(100, rng_);
  ASSERT_TRUE(c.ok());
  auto shifted = kp_->pub.AddPlain(*c, BigInt(23));
  auto back = kp_->priv.Decrypt(shifted);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 123u);
}

TEST_F(PaillierTest, HomomorphicScalarMult) {
  auto c = kp_->pub.EncryptU64(7, rng_);
  ASSERT_TRUE(c.ok());
  auto scaled = kp_->pub.ScalarMult(*c, BigInt(9));
  auto back = kp_->priv.Decrypt(scaled);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 63u);
}

TEST_F(PaillierTest, AdditionWrapsModN) {
  // Enc(N-1) + Enc(2) = Enc(1).
  BigInt n_minus_1 = kp_->pub.n().Sub(BigInt(1));
  auto c1 = kp_->pub.Encrypt(n_minus_1, rng_);
  auto c2 = kp_->pub.EncryptU64(2, rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto back = kp_->priv.Decrypt(kp_->pub.Add(*c1, *c2));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 1u);
}

TEST_F(PaillierTest, PlaintextTooLargeRejected) {
  EXPECT_FALSE(kp_->pub.Encrypt(kp_->pub.n(), rng_).ok());
}

TEST_F(PaillierTest, DecryptMod2EllRecoversShareSum) {
  // Simulates the PEOS share-sum recovery: k ell-bit shares summed
  // homomorphically, decrypted, reduced mod 2^ell.
  const unsigned ell = 32;
  const uint64_t mask = (uint64_t{1} << ell) - 1;
  uint64_t shares[] = {0xFFFFFFF0ULL, 0x12345678ULL, 0xDEADBEEFULL};
  uint64_t expected = 0;
  PaillierCiphertext acc = kp_->pub.TrivialEncrypt(BigInt(0));
  for (uint64_t s : shares) {
    expected = (expected + s) & mask;
    auto c = kp_->pub.EncryptU64(s, rng_);
    ASSERT_TRUE(c.ok());
    acc = kp_->pub.Add(acc, *c);
  }
  auto back = kp_->priv.DecryptMod2Ell(acc, ell);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, expected);
}

TEST_F(PaillierTest, DecryptMod2Ell64Bit) {
  const uint64_t a = 0xFFFFFFFFFFFFFFF0ULL, b = 0x20ULL;
  auto ca = kp_->pub.EncryptU64(a, rng_);
  auto cb = kp_->pub.EncryptU64(b, rng_);
  ASSERT_TRUE(ca.ok() && cb.ok());
  auto back = kp_->priv.DecryptMod2Ell(kp_->pub.Add(*ca, *cb), 64);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, a + b);  // wraps mod 2^64 exactly
}

TEST_F(PaillierTest, SerializeParseRoundTrip) {
  auto c = kp_->pub.EncryptU64(777, rng_);
  ASSERT_TRUE(c.ok());
  Bytes wire = kp_->pub.SerializeCiphertext(*c);
  EXPECT_EQ(wire.size(), kp_->pub.CiphertextBytes());
  auto parsed = kp_->pub.ParseCiphertext(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->value, c->value);
}

TEST_F(PaillierTest, ParseRejectsWrongLength) {
  EXPECT_FALSE(kp_->pub.ParseCiphertext(Bytes(3, 0)).ok());
}

TEST_F(PaillierTest, TrivialEncryptDecrypts) {
  auto back = kp_->priv.Decrypt(kp_->pub.TrivialEncrypt(BigInt(99)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 99u);
}

TEST_F(PaillierTest, RandomizerPoolPreservesPlaintext) {
  RandomizerPool pool(kp_->pub, 8, rng_);
  auto c = kp_->pub.EncryptU64(31337, rng_);
  ASSERT_TRUE(c.ok());
  auto rr = pool.Rerandomize(*c, rng_);
  EXPECT_NE(rr.value, c->value);  // ciphertext changes
  auto back = kp_->priv.Decrypt(rr);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 31337u);  // plaintext preserved
}

TEST_F(PaillierTest, RandomizerPoolFastEncrypt) {
  RandomizerPool pool(kp_->pub, 8, rng_);
  auto c = pool.EncryptFastU64(2468, rng_);
  auto back = kp_->priv.Decrypt(c);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 2468u);
}

TEST_F(PaillierTest, HomomorphismRandomizedProperty) {
  // Dec(Enc(a) (+) Enc(b)) == a + b mod N for random and extreme a, b.
  const BigInt n = kp_->pub.n();
  std::vector<BigInt> values = {BigInt(), BigInt(1), n.Sub(BigInt(1))};
  for (int i = 0; i < 5; ++i) {
    values.push_back(BigInt::RandomBelow(n, rng_));
  }
  for (const BigInt& a : values) {
    for (const BigInt& b : values) {
      auto ca = kp_->pub.Encrypt(a, rng_);
      auto cb = kp_->pub.Encrypt(b, rng_);
      ASSERT_TRUE(ca.ok() && cb.ok());
      auto sum = kp_->priv.Decrypt(kp_->pub.Add(*ca, *cb));
      ASSERT_TRUE(sum.ok());
      EXPECT_EQ(*sum, a.Add(b).Mod(n));
    }
  }
}

TEST_F(PaillierTest, ExtremePlaintextsRoundTrip) {
  // m = 0 and m = N - 1 exactly.
  for (const BigInt& m : {BigInt(), kp_->pub.n().Sub(BigInt(1))}) {
    auto c = kp_->pub.Encrypt(m, rng_);
    ASSERT_TRUE(c.ok());
    auto back = kp_->priv.Decrypt(*c);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, m);
  }
}

TEST_F(PaillierTest, CrtMatchesDirectDecryption) {
  for (int i = 0; i < 4; ++i) {
    BigInt m = BigInt::RandomBelow(kp_->pub.n(), rng_);
    auto c = kp_->pub.Encrypt(m, rng_);
    ASSERT_TRUE(c.ok());
    auto crt = kp_->priv.Decrypt(*c);
    auto direct = kp_->priv.DecryptDirect(*c);
    ASSERT_TRUE(crt.ok() && direct.ok());
    EXPECT_EQ(*crt, *direct);
    EXPECT_EQ(*crt, m);
  }
  // Also after homomorphic combination.
  auto c1 = kp_->pub.EncryptU64(12345, rng_);
  auto c2 = kp_->pub.EncryptU64(67890, rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto combined = kp_->pub.ScalarMult(kp_->pub.Add(*c1, *c2), BigInt(3));
  auto crt = kp_->priv.Decrypt(combined);
  auto direct = kp_->priv.DecryptDirect(combined);
  ASSERT_TRUE(crt.ok() && direct.ok());
  EXPECT_EQ(*crt, *direct);
  EXPECT_EQ(crt->ToU64Saturating(), (12345u + 67890u) * 3u);
}

TEST_F(PaillierTest, FixedBaseRandomizerAgreesWithFullWidth) {
  RandomizerPool pool(kp_->pub, 2, rng_, RandomizerPool::Mode::kFixedBase);
  ASSERT_EQ(pool.mode(), RandomizerPool::Mode::kFixedBase);
  for (uint64_t m : {0ULL, 1ULL, 424242ULL, 0xFFFFFFFFFFFFFFFFULL}) {
    // Fixed-base fast encryption and full-width encryption must be
    // plaintext-equivalent.
    auto fast = pool.EncryptFastU64(m, rng_);
    auto exact = kp_->pub.EncryptU64(m, rng_);
    ASSERT_TRUE(exact.ok());
    auto back_fast = kp_->priv.Decrypt(fast);
    auto back_exact = kp_->priv.Decrypt(*exact);
    ASSERT_TRUE(back_fast.ok() && back_exact.ok());
    EXPECT_EQ(*back_fast, *back_exact);
    EXPECT_NE(fast.value, exact->value);  // still randomized
  }
  // Fresh masks per call: fast encryptions of one plaintext differ.
  auto f1 = pool.EncryptFastU64(7, rng_);
  auto f2 = pool.EncryptFastU64(7, rng_);
  EXPECT_NE(f1.value, f2.value);
  // Rerandomize preserves the plaintext and changes the ciphertext.
  auto c = kp_->pub.EncryptU64(31337, rng_);
  ASSERT_TRUE(c.ok());
  auto rr = pool.Rerandomize(*c, rng_);
  EXPECT_NE(rr.value, c->value);
  auto back = kp_->priv.Decrypt(rr);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 31337u);
}

TEST_F(PaillierTest, PackedDecryptionMatchesPerRow) {
  SecureRandom data_rng(uint64_t{99});
  for (unsigned ell : {8u, 13u, 36u}) {
    const uint64_t mask = (uint64_t{1} << ell) - 1;
    for (unsigned slack : {0u, 3u}) {
      const unsigned slot_bits = ell + slack + 1;
      const size_t cap = kp_->priv.PackedSlotCapacity(slot_bits);
      ASSERT_GE(cap, 1u);
      for (size_t count : {size_t{1}, std::min<size_t>(3, cap), cap}) {
        std::vector<PaillierCiphertext> cs(count);
        std::vector<uint64_t> expect(count);
        for (size_t i = 0; i < count; ++i) {
          uint64_t v = data_rng.NextU64() & mask;
          expect[i] = v;
          auto c = kp_->pub.EncryptU64(v, rng_);
          ASSERT_TRUE(c.ok());
          cs[i] = std::move(c).value();
        }
        std::vector<uint64_t> got(count, ~uint64_t{0});
        ASSERT_TRUE(kp_->priv
                        .DecryptPackedMod2Ell(cs.data(), count, slot_bits,
                                              ell, got.data())
                        .ok());
        for (size_t i = 0; i < count; ++i) {
          auto per_row = kp_->priv.DecryptMod2Ell(cs[i], ell);
          ASSERT_TRUE(per_row.ok());
          EXPECT_EQ(got[i], *per_row) << "slot " << i;
          EXPECT_EQ(got[i], expect[i]) << "slot " << i;
        }
      }
    }
  }
}

TEST_F(PaillierTest, PackedDecryptionHandlesEosStyleAdjustments) {
  // Mimic the PEOS pipeline: the encrypted share accumulates a few more
  // ell-bit plaintext additions (one per EOS round) plus rerandomization;
  // the slot headroom must absorb the integer growth.
  const unsigned ell = 16;
  const uint64_t mask = (uint64_t{1} << ell) - 1;
  const unsigned rounds = 3;
  unsigned extra = 0;
  while ((1u << extra) < rounds + 1) ++extra;
  const unsigned slot_bits = ell + extra + 1;
  RandomizerPool pool(kp_->pub, 4, rng_);
  SecureRandom data_rng(uint64_t{1234});

  const size_t count =
      std::min<size_t>(kp_->priv.PackedSlotCapacity(slot_bits), 7);
  std::vector<PaillierCiphertext> cs(count);
  std::vector<uint64_t> expect(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t sum = data_rng.NextU64() & mask;
    cs[i] = pool.EncryptFastU64(sum, rng_);
    for (unsigned r = 0; r < rounds; ++r) {
      uint64_t adj = data_rng.NextU64() & mask;
      sum = (sum + adj) & mask;
      cs[i] = pool.Rerandomize(kp_->pub.AddPlain(cs[i], BigInt(adj)), rng_);
    }
    expect[i] = sum;
  }
  std::vector<uint64_t> got(count);
  ASSERT_TRUE(kp_->priv
                  .DecryptPackedMod2Ell(cs.data(), count, slot_bits, ell,
                                        got.data())
                  .ok());
  EXPECT_EQ(got, expect);
}

TEST_F(PaillierTest, PackedDecryptionRejectsBadLayouts) {
  auto c = kp_->pub.EncryptU64(1, rng_);
  ASSERT_TRUE(c.ok());
  std::vector<PaillierCiphertext> cs(
      kp_->priv.PackedSlotCapacity(16) + 1, *c);
  std::vector<uint64_t> out(cs.size());
  // Over capacity.
  EXPECT_FALSE(kp_->priv
                   .DecryptPackedMod2Ell(cs.data(), cs.size(), 16, 16,
                                         out.data())
                   .ok());
  // slot_bits < ell and ell out of range.
  EXPECT_FALSE(
      kp_->priv.DecryptPackedMod2Ell(cs.data(), 1, 8, 16, out.data()).ok());
  EXPECT_FALSE(
      kp_->priv.DecryptPackedMod2Ell(cs.data(), 1, 70, 65, out.data()).ok());
  // count == 0 is a no-op.
  EXPECT_TRUE(
      kp_->priv.DecryptPackedMod2Ell(cs.data(), 0, 16, 16, out.data()).ok());
}

// The Montgomery-resident rerandomize chain (the EOS ciphertext column)
// against the per-round plain-domain path: identically seeded rngs must
// yield bitwise-identical ciphertexts after every round of
// AddPlain + Rerandomize, for both pool modes — the domain residency is
// a representation change only, never a value change.
TEST_F(PaillierTest, MontResidentRerandomizeChainMatchesPerRoundPath) {
  const MontgomeryCtx* ctx = kp_->pub.n2_ctx();
  ASSERT_NE(ctx, nullptr);
  for (RandomizerPool::Mode mode :
       {RandomizerPool::Mode::kPairwise, RandomizerPool::Mode::kFixedBase}) {
    SecureRandom pool_rng(uint64_t{777});
    RandomizerPool pool(kp_->pub, 8, &pool_rng, mode);

    auto start = kp_->pub.EncryptU64(123456789, rng_);
    ASSERT_TRUE(start.ok());

    // Plain-domain reference: the exact sequence the pre-resident EOS
    // loop ran once per C(r, t) round.
    const int kRounds = 12;
    SecureRandom plain_rng(uint64_t{4242});
    PaillierCiphertext plain = *start;
    uint64_t sum = 123456789;
    for (int round = 0; round < kRounds; ++round) {
      const uint64_t adjust = 0x9E37 + static_cast<uint64_t>(round);
      sum += adjust;
      plain = kp_->pub.AddPlain(plain, BigInt(adjust));
      plain = pool.Rerandomize(plain, &plain_rng);
    }

    // Montgomery-resident chain: enter once, stay, leave once.
    SecureRandom mont_rng(uint64_t{4242});
    MontgomeryCtx::Scratch scratch(*ctx);
    std::vector<uint64_t> resident(ctx->limbs());
    kp_->pub.ToMontCiphertext(*start, resident.data(), &scratch);
    for (int round = 0; round < kRounds; ++round) {
      const uint64_t adjust = 0x9E37 + static_cast<uint64_t>(round);
      kp_->pub.AddPlainMontInto(resident.data(), BigInt(adjust), &scratch);
      pool.RerandomizeMontInto(resident.data(), &mont_rng, &scratch);
    }
    PaillierCiphertext mont =
        kp_->pub.FromMontCiphertext(resident.data(), &scratch);

    EXPECT_EQ(mont.value, plain.value)
        << "mode=" << static_cast<int>(mode);  // bitwise, not just Dec-equal
    auto decrypted = kp_->priv.DecryptMod2Ell(mont, 64);
    ASSERT_TRUE(decrypted.ok());
    EXPECT_EQ(*decrypted, sum);
  }
}

// Multi-group batched packed decryption against the one-group-at-a-time
// scalar entry point: results must be bitwise identical for counts that
// exercise full lane blocks, ragged lane tails, and a sub-capacity tail
// group, on every available Montgomery backend.
TEST_F(PaillierTest, DecryptPackedBatchBitwiseEqualsScalarLoop) {
  SecureRandom data_rng(uint64_t{5150});
  std::vector<MontBackend> backends = {MontBackend::kPortable};
  if (BestMontBackend() == MontBackend::kAvx2) {
    backends.push_back(MontBackend::kAvx2);
  }
  const unsigned ell = 16;
  const unsigned slot_bits = ell + 3;
  const uint64_t mask = (uint64_t{1} << ell) - 1;
  const size_t cap = kp_->priv.PackedSlotCapacity(slot_bits);
  ASSERT_GE(cap, 2u);
  // 11 full groups (one full 8-lane block + 3-lane tail) + partial group.
  const size_t count = 11 * cap + cap / 2;
  std::vector<PaillierCiphertext> cs(count);
  for (size_t i = 0; i < count; ++i) {
    auto c = kp_->pub.EncryptU64(data_rng.NextU64() & mask, rng_);
    ASSERT_TRUE(c.ok());
    cs[i] = std::move(c).value();
  }
  // Scalar reference: one group per call.
  std::vector<uint64_t> want(count);
  for (size_t at = 0; at < count; at += cap) {
    const size_t g = std::min(cap, count - at);
    ASSERT_TRUE(kp_->priv
                    .DecryptPackedMod2Ell(cs.data() + at, g, slot_bits, ell,
                                          want.data() + at)
                    .ok());
  }
  for (MontBackend backend : backends) {
    MontBackend prev = ActiveMontBackend();
    SetMontBackend(backend);
    std::vector<uint64_t> got(count, ~uint64_t{0});
    Status st = kp_->priv.DecryptPackedMod2EllBatch(cs.data(), count,
                                                    slot_bits, ell,
                                                    got.data());
    SetMontBackend(prev);
    ASSERT_TRUE(st.ok()) << MontBackendName(backend);
    EXPECT_EQ(got, want) << MontBackendName(backend);
  }
}

// Lane-blocked rerandomization with an identically seeded rng must be
// bitwise identical to k sequential RerandomizeMontInto calls (the batch
// draws pool indices / masks in the same lane order), for both modes.
TEST_F(PaillierTest, RerandomizeMontManyBitwiseEqualsScalarSeeded) {
  const MontgomeryCtx* ctx = kp_->pub.n2_ctx();
  ASSERT_NE(ctx, nullptr);
  const size_t n = ctx->limbs();
  for (RandomizerPool::Mode mode :
       {RandomizerPool::Mode::kPairwise, RandomizerPool::Mode::kFixedBase}) {
    SecureRandom pool_rng(uint64_t{808});
    RandomizerPool pool(kp_->pub, 8, &pool_rng, mode);
    MontgomeryCtx::Scratch scratch(*ctx);
    for (size_t k : {1u, 5u, 8u, 13u}) {
      std::vector<std::vector<uint64_t>> batch(k), scalar(k);
      for (size_t l = 0; l < k; ++l) {
        auto c = kp_->pub.EncryptU64(1000 + l, rng_);
        ASSERT_TRUE(c.ok());
        batch[l].resize(n);
        kp_->pub.ToMontCiphertext(*c, batch[l].data(), &scratch);
        scalar[l] = batch[l];
      }
      SecureRandom rng_batch(uint64_t{31 + k});
      SecureRandom rng_scalar(uint64_t{31 + k});
      std::vector<uint64_t*> rows(k);
      for (size_t l = 0; l < k; ++l) rows[l] = batch[l].data();
      pool.RerandomizeMontManyInto(k, rows.data(), &rng_batch, &scratch);
      for (size_t l = 0; l < k; ++l) {
        pool.RerandomizeMontInto(scalar[l].data(), &rng_scalar, &scratch);
      }
      for (size_t l = 0; l < k; ++l) {
        EXPECT_EQ(batch[l], scalar[l])
            << "mode=" << static_cast<int>(mode) << " k=" << k
            << " lane=" << l;
        // Still decrypts to the original plaintext.
        auto back = kp_->priv.Decrypt(
            kp_->pub.FromMontCiphertext(batch[l].data(), &scratch));
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(back->ToU64Saturating(), 1000 + l);
      }
    }
  }
}

// Batched plaintext addition against the scalar per-row path.
TEST_F(PaillierTest, AddPlainMontManyBitwiseEqualsScalar) {
  const MontgomeryCtx* ctx = kp_->pub.n2_ctx();
  ASSERT_NE(ctx, nullptr);
  const size_t n = ctx->limbs();
  MontgomeryCtx::Scratch scratch(*ctx);
  const size_t k = 11;  // 8-lane block + tail
  std::vector<std::vector<uint64_t>> batch(k), scalar(k);
  std::vector<BigInt> ms;
  ms.push_back(BigInt());  // zero adjustment lane
  for (size_t l = 1; l < k; ++l) {
    ms.push_back(BigInt::RandomBelow(kp_->pub.n(), rng_));
  }
  std::vector<uint64_t> expect(k);
  for (size_t l = 0; l < k; ++l) {
    auto c = kp_->pub.EncryptU64(l * 7, rng_);
    ASSERT_TRUE(c.ok());
    batch[l].resize(n);
    kp_->pub.ToMontCiphertext(*c, batch[l].data(), &scratch);
    scalar[l] = batch[l];
  }
  std::vector<uint64_t*> rows(k);
  for (size_t l = 0; l < k; ++l) rows[l] = batch[l].data();
  kp_->pub.AddPlainMontManyInto(k, rows.data(), ms.data(), &scratch);
  for (size_t l = 0; l < k; ++l) {
    kp_->pub.AddPlainMontInto(scalar[l].data(), ms[l], &scratch);
    EXPECT_EQ(batch[l], scalar[l]) << "lane=" << l;
    auto back = kp_->priv.Decrypt(
        kp_->pub.FromMontCiphertext(batch[l].data(), &scratch));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, BigInt(l * 7).Add(ms[l]).Mod(kp_->pub.n()));
  }
}

// The constant-time decryption exponentiations compute the same values
// as the variable-time reference path (DecryptDirect) end to end.
TEST_F(PaillierTest, CtDecryptionAgreesWithDirectReference) {
  for (int i = 0; i < 6; ++i) {
    BigInt m = BigInt::RandomBelow(kp_->pub.n(), rng_);
    auto c = kp_->pub.Encrypt(m, rng_);
    ASSERT_TRUE(c.ok());
    auto crt = kp_->priv.Decrypt(*c);      // ct CRT ladders
    auto direct = kp_->priv.DecryptDirect(*c);  // variable-time lambda path
    ASSERT_TRUE(crt.ok() && direct.ok());
    EXPECT_EQ(*crt, *direct);
    EXPECT_EQ(*crt, m);
  }
}

TEST(PaillierKeyGenTest, ProductionSizeKeyWorks) {
  SecureRandom rng(uint64_t{777001});
  auto kp = PaillierGenerateKeyPair(1024, &rng);
  ASSERT_TRUE(kp.ok());
  EXPECT_GE(kp->pub.n().BitLength(), 1023u);
  auto c = kp->pub.EncryptU64(123456789, &rng);
  ASSERT_TRUE(c.ok());
  auto back = kp->priv.Decrypt(*c);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 123456789u);
}

TEST(PaillierKeyGenTest, TooSmallModulusRejected) {
  SecureRandom rng(uint64_t{1});
  EXPECT_FALSE(PaillierGenerateKeyPair(32, &rng).ok());
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

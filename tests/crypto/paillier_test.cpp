#include "crypto/paillier.h"

#include <gtest/gtest.h>

namespace shuffledp {
namespace crypto {
namespace {

// Shared small key pair (256-bit N) so the suite stays fast; one test
// exercises a production-size 1024-bit key.
class PaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new SecureRandom(uint64_t{20200802});
    auto kp = PaillierGenerateKeyPair(256, rng_);
    ASSERT_TRUE(kp.ok());
    kp_ = new PaillierKeyPair(std::move(kp).value());
  }
  static void TearDownTestSuite() {
    delete kp_;
    delete rng_;
    kp_ = nullptr;
    rng_ = nullptr;
  }

  static SecureRandom* rng_;
  static PaillierKeyPair* kp_;
};

SecureRandom* PaillierTest::rng_ = nullptr;
PaillierKeyPair* PaillierTest::kp_ = nullptr;

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (uint64_t m : {0ULL, 1ULL, 42ULL, 0xFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL}) {
    auto c = kp_->pub.EncryptU64(m, rng_);
    ASSERT_TRUE(c.ok());
    auto back = kp_->priv.Decrypt(*c);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->ToU64Saturating(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  auto c1 = kp_->pub.EncryptU64(5, rng_);
  auto c2 = kp_->pub.EncryptU64(5, rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1->value, c2->value);
}

TEST_F(PaillierTest, HomomorphicAddition) {
  auto c1 = kp_->pub.EncryptU64(111, rng_);
  auto c2 = kp_->pub.EncryptU64(222, rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto sum = kp_->pub.Add(*c1, *c2);
  auto back = kp_->priv.Decrypt(sum);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 333u);
}

TEST_F(PaillierTest, HomomorphicAddPlain) {
  auto c = kp_->pub.EncryptU64(100, rng_);
  ASSERT_TRUE(c.ok());
  auto shifted = kp_->pub.AddPlain(*c, BigInt(23));
  auto back = kp_->priv.Decrypt(shifted);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 123u);
}

TEST_F(PaillierTest, HomomorphicScalarMult) {
  auto c = kp_->pub.EncryptU64(7, rng_);
  ASSERT_TRUE(c.ok());
  auto scaled = kp_->pub.ScalarMult(*c, BigInt(9));
  auto back = kp_->priv.Decrypt(scaled);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 63u);
}

TEST_F(PaillierTest, AdditionWrapsModN) {
  // Enc(N-1) + Enc(2) = Enc(1).
  BigInt n_minus_1 = kp_->pub.n().Sub(BigInt(1));
  auto c1 = kp_->pub.Encrypt(n_minus_1, rng_);
  auto c2 = kp_->pub.EncryptU64(2, rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto back = kp_->priv.Decrypt(kp_->pub.Add(*c1, *c2));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 1u);
}

TEST_F(PaillierTest, PlaintextTooLargeRejected) {
  EXPECT_FALSE(kp_->pub.Encrypt(kp_->pub.n(), rng_).ok());
}

TEST_F(PaillierTest, DecryptMod2EllRecoversShareSum) {
  // Simulates the PEOS share-sum recovery: k ell-bit shares summed
  // homomorphically, decrypted, reduced mod 2^ell.
  const unsigned ell = 32;
  const uint64_t mask = (uint64_t{1} << ell) - 1;
  uint64_t shares[] = {0xFFFFFFF0ULL, 0x12345678ULL, 0xDEADBEEFULL};
  uint64_t expected = 0;
  PaillierCiphertext acc = kp_->pub.TrivialEncrypt(BigInt(0));
  for (uint64_t s : shares) {
    expected = (expected + s) & mask;
    auto c = kp_->pub.EncryptU64(s, rng_);
    ASSERT_TRUE(c.ok());
    acc = kp_->pub.Add(acc, *c);
  }
  auto back = kp_->priv.DecryptMod2Ell(acc, ell);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, expected);
}

TEST_F(PaillierTest, DecryptMod2Ell64Bit) {
  const uint64_t a = 0xFFFFFFFFFFFFFFF0ULL, b = 0x20ULL;
  auto ca = kp_->pub.EncryptU64(a, rng_);
  auto cb = kp_->pub.EncryptU64(b, rng_);
  ASSERT_TRUE(ca.ok() && cb.ok());
  auto back = kp_->priv.DecryptMod2Ell(kp_->pub.Add(*ca, *cb), 64);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, a + b);  // wraps mod 2^64 exactly
}

TEST_F(PaillierTest, SerializeParseRoundTrip) {
  auto c = kp_->pub.EncryptU64(777, rng_);
  ASSERT_TRUE(c.ok());
  Bytes wire = kp_->pub.SerializeCiphertext(*c);
  EXPECT_EQ(wire.size(), kp_->pub.CiphertextBytes());
  auto parsed = kp_->pub.ParseCiphertext(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->value, c->value);
}

TEST_F(PaillierTest, ParseRejectsWrongLength) {
  EXPECT_FALSE(kp_->pub.ParseCiphertext(Bytes(3, 0)).ok());
}

TEST_F(PaillierTest, TrivialEncryptDecrypts) {
  auto back = kp_->priv.Decrypt(kp_->pub.TrivialEncrypt(BigInt(99)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 99u);
}

TEST_F(PaillierTest, RandomizerPoolPreservesPlaintext) {
  RandomizerPool pool(kp_->pub, 8, rng_);
  auto c = kp_->pub.EncryptU64(31337, rng_);
  ASSERT_TRUE(c.ok());
  auto rr = pool.Rerandomize(*c, rng_);
  EXPECT_NE(rr.value, c->value);  // ciphertext changes
  auto back = kp_->priv.Decrypt(rr);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 31337u);  // plaintext preserved
}

TEST_F(PaillierTest, RandomizerPoolFastEncrypt) {
  RandomizerPool pool(kp_->pub, 8, rng_);
  auto c = pool.EncryptFastU64(2468, rng_);
  auto back = kp_->priv.Decrypt(c);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 2468u);
}

TEST(PaillierKeyGenTest, ProductionSizeKeyWorks) {
  SecureRandom rng(uint64_t{777001});
  auto kp = PaillierGenerateKeyPair(1024, &rng);
  ASSERT_TRUE(kp.ok());
  EXPECT_GE(kp->pub.n().BitLength(), 1023u);
  auto c = kp->pub.EncryptU64(123456789, &rng);
  ASSERT_TRUE(c.ok());
  auto back = kp->priv.Decrypt(*c);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToU64Saturating(), 123456789u);
}

TEST(PaillierKeyGenTest, TooSmallModulusRejected) {
  SecureRandom rng(uint64_t{1});
  EXPECT_FALSE(PaillierGenerateKeyPair(32, &rng).ok());
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

#include "crypto/secret_sharing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace shuffledp {
namespace crypto {
namespace {

TEST(SecretSharing2EllTest, ReconstructsForAllEll) {
  SecureRandom rng(uint64_t{1});
  for (unsigned ell : {1u, 8u, 32u, 63u, 64u}) {
    uint64_t mask = ell >= 64 ? ~uint64_t{0} : ((uint64_t{1} << ell) - 1);
    for (uint64_t secret : {uint64_t{0}, uint64_t{1}, uint64_t{12345},
                            mask}) {
      for (size_t count : {1, 2, 3, 7}) {
        auto shares = SplitShares2Ell(secret & mask, count, ell, &rng);
        EXPECT_EQ(shares.size(), count);
        for (uint64_t s : shares) EXPECT_EQ(s & ~mask, 0u);
        EXPECT_EQ(ReconstructShares2Ell(shares, ell), secret & mask)
            << "ell=" << ell << " count=" << count;
      }
    }
  }
}

TEST(SecretSharing2EllTest, SingleShareIsTheSecret) {
  SecureRandom rng(uint64_t{2});
  auto shares = SplitShares2Ell(42, 1, 64, &rng);
  EXPECT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0], 42u);
}

TEST(SecretSharing2EllTest, PartialSharesRevealNothingStatistically) {
  // First r-1 shares of a fixed secret should be (near) uniform: compare
  // the mean of the first share across many splits against the uniform
  // mean for ell = 8.
  SecureRandom rng(uint64_t{3});
  const unsigned ell = 8;
  const int kTrials = 50000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) {
    auto shares = SplitShares2Ell(200, 3, ell, &rng);
    sum += static_cast<double>(shares[0]);
  }
  double mean = sum / kTrials;
  // Uniform over [0,255]: mean 127.5, sd 73.9; SE ~0.33.
  EXPECT_NEAR(mean, 127.5, 2.0);
}

TEST(SecretSharingModTest, ReconstructsOverOddModulus) {
  SecureRandom rng(uint64_t{4});
  for (uint64_t modulus : {2ULL, 3ULL, 17ULL, 42179ULL, (1ULL << 62) + 5}) {
    for (uint64_t secret : {uint64_t{0}, uint64_t{1}, modulus - 1}) {
      auto shares = SplitSharesMod(secret, 5, modulus, &rng);
      ASSERT_TRUE(shares.ok());
      for (uint64_t s : *shares) EXPECT_LT(s, modulus);
      EXPECT_EQ(ReconstructSharesMod(*shares, modulus), secret);
    }
  }
}

TEST(SecretSharingModTest, RejectsBadArguments) {
  SecureRandom rng(uint64_t{5});
  EXPECT_FALSE(SplitSharesMod(5, 0, 10, &rng).ok());   // zero shares
  EXPECT_FALSE(SplitSharesMod(5, 3, 0, &rng).ok());    // zero modulus
  EXPECT_FALSE(SplitSharesMod(10, 3, 10, &rng).ok());  // secret >= modulus
}

TEST(SecretSharingTest, AddShareVectorsIsHomomorphic) {
  // share(a) + share(b) reconstructs to a + b — the property PEOS uses
  // when shufflers add fake-report shares.
  SecureRandom rng(uint64_t{6});
  const unsigned ell = 16;
  const uint64_t mask = (1u << ell) - 1;
  uint64_t a = 0x1234 & mask, b = 0xFEDC & mask;
  auto sa = SplitShares2Ell(a, 4, ell, &rng);
  auto sb = SplitShares2Ell(b, 4, ell, &rng);
  auto sum = AddShareVectors2Ell(sa, sb, ell);
  EXPECT_EQ(ReconstructShares2Ell(sum, ell), (a + b) & mask);
}

TEST(SecretSharingTest, ShareSumDistributionUniformUnderOneHonestParty) {
  // Even if all but one share are adversarially fixed, the reconstruction
  // of a uniform final share is uniform: histogram the 2-bit case.
  SecureRandom rng(uint64_t{7});
  const unsigned ell = 2;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) {
    auto shares = SplitShares2Ell(rng.NextU64() & 3, 2, ell, &rng);
    ++counts[shares[0]];  // first share is raw uniform randomness
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 5 * std::sqrt(10000.0));
  }
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

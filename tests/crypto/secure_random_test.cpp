#include "crypto/secure_random.h"

#include <gtest/gtest.h>

#include <cstring>

namespace shuffledp {
namespace crypto {
namespace {

// RFC 7539 §2.3.2 ChaCha20 block function test vector.
TEST(ChaCha20Test, Rfc7539BlockVector) {
  uint8_t key[32];
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  uint8_t nonce[12] = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                       0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  uint8_t out[64];
  ChaCha20Block(key, nonce, 1, out);

  const uint8_t expected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  EXPECT_EQ(std::memcmp(out, expected, 64), 0);
}

TEST(SecureRandomTest, DeterministicFromSeed) {
  SecureRandom a(uint64_t{42}), b(uint64_t{42});
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(SecureRandomTest, DifferentSeedsDiffer) {
  SecureRandom a(uint64_t{1}), b(uint64_t{2});
  int same = 0;
  for (int i = 0; i < 32; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(SecureRandomTest, FillCrossesBlockBoundaries) {
  SecureRandom a(uint64_t{7});
  SecureRandom b(uint64_t{7});
  // Read 200 bytes in one call vs many odd-sized calls; streams must match.
  Bytes big = a.RandomBytes(200);
  Bytes parts;
  for (size_t chunk : {1, 3, 60, 64, 72}) {
    Bytes p = b.RandomBytes(chunk);
    parts.insert(parts.end(), p.begin(), p.end());
  }
  ASSERT_EQ(parts.size(), 200u);
  EXPECT_EQ(parts, big);
}

TEST(SecureRandomTest, UniformU64Unbiased) {
  SecureRandom rng(uint64_t{99});
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 300; ++i) EXPECT_LT(rng.UniformU64(bound), bound);
  }
}

TEST(SecureRandomTest, ForkIndependence) {
  SecureRandom parent(uint64_t{5});
  SecureRandom child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 16; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(SecureRandomTest, EntropyConstructorProducesDistinctStreams) {
  SecureRandom a, b;
  int same = 0;
  for (int i = 0; i < 8; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(SecureRandomTest, ByteDistributionRoughlyUniform) {
  SecureRandom rng(uint64_t{321});
  Bytes data = rng.RandomBytes(256 * 200);
  std::vector<int> counts(256, 0);
  for (uint8_t b : data) ++counts[b];
  double expected = 200.0;
  double chi2 = 0;
  for (int c : counts) {
    double d = c - expected;
    chi2 += d * d / expected;
  }
  // 255 dof; mean 255, sd ~22.6. 6 sigma ~= 391.
  EXPECT_LT(chi2, 400.0);
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

// Backend-dispatch coverage for SHA-256: the FIPS 180-4 known answers
// must hold on both the portable scalar rounds and (when the CPU has the
// SHA extensions) the SHA-NI path, with forced fallback so both run in CI.

#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.h"

namespace shuffledp {
namespace crypto {
namespace {

class ScopedShaBackend {
 public:
  explicit ScopedShaBackend(ShaBackend backend) { SetShaBackend(backend); }
  ~ScopedShaBackend() { SetShaBackend(BestShaBackend()); }
};

std::vector<ShaBackend> BackendsToTest() {
  std::vector<ShaBackend> backends = {ShaBackend::kPortable};
  if (BestShaBackend() == ShaBackend::kShaNi) {
    backends.push_back(ShaBackend::kShaNi);
  }
  return backends;
}

std::string HashHex(const Bytes& data) {
  auto d = Sha256::Hash(data);
  return ToHex(Bytes(d.begin(), d.end()));
}

TEST(ShaBackendTest, ForcedFallbackDegradesGracefully) {
  ScopedShaBackend guard(ShaBackend::kPortable);
  EXPECT_EQ(ActiveShaBackend(), ShaBackend::kPortable);
  SetShaBackend(ShaBackend::kShaNi);
  EXPECT_EQ(ActiveShaBackend(), BestShaBackend());
}

TEST(ShaBackendTest, BackendNames) {
  EXPECT_STREQ(ShaBackendName(ShaBackend::kPortable), "portable");
  EXPECT_STREQ(ShaBackendName(ShaBackend::kShaNi), "shani");
}

// FIPS 180-4 known answers on every available backend.
TEST(ShaBackendTest, Fips180KnownAnswersBothBackends) {
  for (ShaBackend backend : BackendsToTest()) {
    ScopedShaBackend guard(backend);
    EXPECT_EQ(HashHex(Bytes{}),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
        << ShaBackendName(backend);
    Bytes abc = {'a', 'b', 'c'};
    EXPECT_EQ(HashHex(abc),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        << ShaBackendName(backend);
    std::string two_blocks =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    EXPECT_EQ(HashHex(Bytes(two_blocks.begin(), two_blocks.end())),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
        << ShaBackendName(backend);
  }
}

TEST(ShaBackendTest, BackendsAgreeAcrossLengthsAndChunking) {
  if (BestShaBackend() != ShaBackend::kShaNi) {
    GTEST_SKIP() << "host has no SHA-NI; portable-only";
  }
  for (size_t len : {0, 1, 55, 56, 63, 64, 65, 127, 128, 1000, 4096}) {
    Bytes data(len);
    for (size_t i = 0; i < len; ++i) data[i] = static_cast<uint8_t>(i * 17);
    SetShaBackend(ShaBackend::kPortable);
    std::string portable = HashHex(data);
    SetShaBackend(ShaBackend::kShaNi);
    std::string ni = HashHex(data);
    EXPECT_EQ(portable, ni) << "len=" << len;

    // Incremental updates split at awkward boundaries.
    Sha256 h;
    size_t half = len / 3;
    h.Update(data.data(), half);
    h.Update(data.data() + half, len - half);
    auto d = h.Finish();
    EXPECT_EQ(ToHex(Bytes(d.begin(), d.end())), ni) << "len=" << len;
  }
  SetShaBackend(BestShaBackend());
}

TEST(ShaBackendTest, HmacAgreesAcrossBackends) {
  if (BestShaBackend() != ShaBackend::kShaNi) {
    GTEST_SKIP() << "host has no SHA-NI; portable-only";
  }
  Bytes key(20, 0x0b);
  Bytes msg = {'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'};
  SetShaBackend(ShaBackend::kPortable);
  auto portable = HmacSha256(key, msg);
  SetShaBackend(ShaBackend::kShaNi);
  auto ni = HmacSha256(key, msg);
  EXPECT_EQ(portable, ni);
  // RFC 4231 test case 1.
  EXPECT_EQ(ToHex(Bytes(ni.begin(), ni.end())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  SetShaBackend(BestShaBackend());
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

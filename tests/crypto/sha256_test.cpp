#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace shuffledp {
namespace crypto {
namespace {

std::string DigestHex(const std::array<uint8_t, 32>& d) {
  return ToHex(Bytes(d.begin(), d.end()));
}

// FIPS 180-4 / NIST example vectors.
TEST(Sha256Test, EmptyString) {
  Sha256 h;
  EXPECT_EQ(DigestHex(h.Finish()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  Sha256 h;
  h.Update("abc");
  EXPECT_EQ(DigestHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  Sha256 h;
  h.Update("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(DigestHex(h.Finish()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg(1000, 'x');
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<char>(i * 7);
  auto oneshot = Sha256::Hash(msg.data(), msg.size());

  Sha256 h;
  size_t off = 0;
  for (size_t chunk : {1, 13, 63, 64, 65, 128, 500}) {
    size_t take = std::min(chunk, msg.size() - off);
    h.Update(msg.data() + off, take);
    off += take;
  }
  h.Update(msg.data() + off, msg.size() - off);
  EXPECT_EQ(h.Finish(), oneshot);
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update("garbage");
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(DigestHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// RFC 4231 test case 2.
TEST(HmacSha256Test, Rfc4231Case2) {
  Bytes key = {'J', 'e', 'f', 'e'};
  std::string msg = "what do ya want for nothing?";
  Bytes msg_bytes(msg.begin(), msg.end());
  auto mac = HmacSha256(key, msg_bytes);
  EXPECT_EQ(DigestHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1.
TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  std::string msg = "Hi There";
  Bytes msg_bytes(msg.begin(), msg.end());
  auto mac = HmacSha256(key, msg_bytes);
  EXPECT_EQ(DigestHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, LongKeyIsHashedFirst) {
  Bytes key(100, 0xaa);
  Bytes msg = {1, 2, 3};
  auto mac1 = HmacSha256(key, msg);
  // Keys longer than the block are replaced by their hash — any change in
  // the long key must change the MAC.
  key[99] = 0xab;
  auto mac2 = HmacSha256(key, msg);
  EXPECT_NE(mac1, mac2);
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

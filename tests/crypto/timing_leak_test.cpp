// Dudect-style timing-leak smoke test for the constant-time Montgomery
// kernels (CtMulInto / CtModExp / CtModExpManyInto).
//
// Method (Reparaz, Balasch, Verbauwhede — "dude, is my code constant
// time?"): measure the same operation over two input classes that a
// leaky implementation would distinguish (fixed vs. fresh-random secret
// exponent, low- vs. high-Hamming-weight exponent), interleaved in a
// seeded random order so drift hits both classes equally, crop the
// upper tail to shed scheduler/interrupt outliers, and compare the
// class means with Welch's t-test. |t| stays small (noise) for
// constant-time code and grows without bound with sample count for
// variable-time code.
//
// Threshold: |t| < 10. Under the null this is a > 9-sigma event per
// round, and each check gets kRounds independent measurement rounds,
// passing if ANY round is below threshold — a genuine leak produces
// |t| in the hundreds consistently, while noise spikes are transient.
// The canary test at the bottom runs the SAME harness against the
// variable-time sliding-window ModExp and asserts it FAILS, pinning the
// harness's statistical power so a silent regression in the measurement
// loop cannot fake a pass.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/bigint.h"
#include "crypto/montgomery.h"
#include "crypto/secure_random.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace shuffledp {
namespace crypto {
namespace {

inline uint64_t Ticks() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned aux;
  return __rdtscp(&aux);  // serializes against preceding loads/stores
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Welch's t-statistic between two sample sets.
double WelchT(const std::vector<double>& a, const std::vector<double>& b) {
  auto stats = [](const std::vector<double>& v, double* mean, double* var) {
    double m = 0;
    for (double x : v) m += x;
    m /= static_cast<double>(v.size());
    double s = 0;
    for (double x : v) s += (x - m) * (x - m);
    *mean = m;
    *var = s / static_cast<double>(v.size() - 1);
  };
  double ma, va, mb, vb;
  stats(a, &ma, &va);
  stats(b, &mb, &vb);
  double denom = std::sqrt(va / static_cast<double>(a.size()) +
                           vb / static_cast<double>(b.size()));
  if (denom == 0) return 0;
  return (ma - mb) / denom;
}

// t-statistic after dropping every sample above the pooled p-th
// percentile from both classes (dudect's crop: the upper tail is
// interrupts and frequency shifts, not the operation under test).
double CroppedT(const std::vector<double>& a, const std::vector<double>& b,
                double pct) {
  std::vector<double> pooled;
  pooled.reserve(a.size() + b.size());
  pooled.insert(pooled.end(), a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());
  std::sort(pooled.begin(), pooled.end());
  double cut = pooled[static_cast<size_t>(pct * (pooled.size() - 1))];
  auto crop = [cut](const std::vector<double>& v) {
    std::vector<double> kept;
    kept.reserve(v.size());
    for (double x : v) {
      if (x <= cut) kept.push_back(x);
    }
    return kept;
  };
  std::vector<double> ca = crop(a), cb = crop(b);
  if (ca.size() < 2 || cb.size() < 2) return 0;
  return WelchT(ca, cb);
}

constexpr double kThreshold = 10.0;
constexpr int kRounds = 3;
// Dudect evaluates several crop levels and keeps the most discriminating
// one: tight crops isolate the quiet fast tail (max statistical power
// against a real leak), loose crops keep the bulk (power against leaks
// that only show in slow paths). For constant-time code every level
// stays small.
constexpr double kCropPercentiles[] = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5};

// One measurement round: `op(cls)` runs the operation for class cls
// (inputs must be pre-generated so generation cost is not measured).
// Classes are interleaved in a seeded random order.
template <typename Op>
double MeasureRound(size_t samples_per_class, SecureRandom* rng, Op&& op) {
  std::vector<int> schedule;
  schedule.reserve(2 * samples_per_class);
  for (size_t i = 0; i < samples_per_class; ++i) {
    schedule.push_back(0);
    schedule.push_back(1);
  }
  // Fisher-Yates with the seeded rng: replayable order.
  for (size_t i = schedule.size(); i > 1; --i) {
    std::swap(schedule[i - 1], schedule[rng->NextU64() % i]);
  }
  std::vector<double> cls0, cls1;
  cls0.reserve(samples_per_class);
  cls1.reserve(samples_per_class);
  // Warmup: touch both classes so caches/predictors settle.
  for (int i = 0; i < 16; ++i) op(i & 1);
  for (int cls : schedule) {
    uint64_t t0 = Ticks();
    op(cls);
    uint64_t t1 = Ticks();
    (cls == 0 ? cls0 : cls1).push_back(static_cast<double>(t1 - t0));
  }
  double worst = 0;
  for (double pct : kCropPercentiles) {
    worst = std::max(worst, std::fabs(CroppedT(cls0, cls1, pct)));
  }
  return worst;
}

// Runs kRounds independent rounds; returns the smallest |t| seen (the
// pass statistic) and the largest (the canary statistic).
template <typename Op>
void RunRounds(size_t samples_per_class, uint64_t seed, Op&& op,
               double* min_abs_t, double* max_abs_t) {
  SecureRandom rng(seed);
  *min_abs_t = 1e300;
  *max_abs_t = 0;
  for (int r = 0; r < kRounds; ++r) {
    double t = std::fabs(MeasureRound(samples_per_class, &rng, op));
    *min_abs_t = std::min(*min_abs_t, t);
    *max_abs_t = std::max(*max_abs_t, t);
  }
}

struct CtFixture {
  BigInt m;
  MontgomeryCtx ctx;
};

// 512-bit modulus / 256-bit exponents: small enough that thousands of
// exponentiations fit in a CI smoke budget, large enough that a
// window-count leak spans dozens of multiplies.
MontgomeryCtx MakeCtx(SecureRandom* rng, size_t bits) {
  BigInt m = BigInt::RandomWithBits(bits, rng);
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  EXPECT_TRUE(ctx.ok());
  return std::move(ctx).value();
}

// Class 0: one fixed secret exponent. Class 1: a fresh random exponent
// per sample (pre-generated). A leaky ladder correlates time with the
// exponent's window pattern; a constant-time one cannot.
TEST(TimingLeakTest, CtModExpFixedVsRandomExponent) {
  SecureRandom rng(uint64_t{2026'08'08});
  MontgomeryCtx ctx = MakeCtx(&rng, 512);
  const size_t kSamples = 700;
  const size_t ebits = 256;
  BigInt base = BigInt::RandomBelow(ctx.modulus(), &rng);
  BigInt fixed = BigInt::RandomWithBits(ebits, &rng);
  std::vector<BigInt> fresh;
  for (size_t i = 0; i < kRounds * kSamples * 2 + 64; ++i) {
    fresh.push_back(BigInt::RandomWithBits(ebits, &rng));
  }
  size_t next = 0;
  volatile uint64_t sink = 0;
  double min_t, max_t;
  RunRounds(kSamples, uint64_t{11}, [&](int cls) {
    const BigInt& e = cls == 0 ? fixed : fresh[next++ % fresh.size()];
    sink += ctx.CtModExp(base, e, ebits).ToU64Saturating();
  }, &min_t, &max_t);
  EXPECT_LT(min_t, kThreshold)
      << "CtModExp timing depends on the secret exponent (max |t|="
      << max_t << ")";
}

// Extreme Hamming-weight classes: 2^(ebits-1) (every window digit zero
// except the top) vs. all-ones (every digit maximal). The fixed-window
// always-multiply ladder must not care; a square-and-multiply or
// sliding-window ladder differs by ~ebits/2 multiplies.
TEST(TimingLeakTest, CtModExpLowVsHighWeightExponent) {
  SecureRandom rng(uint64_t{77002});
  MontgomeryCtx ctx = MakeCtx(&rng, 512);
  const size_t kSamples = 700;
  const size_t ebits = 256;
  BigInt base = BigInt::RandomBelow(ctx.modulus(), &rng);
  BigInt low = BigInt(1).ShiftLeft(ebits - 1);              // weight 1
  BigInt high = BigInt(1).ShiftLeft(ebits).Sub(BigInt(1));  // weight ebits
  volatile uint64_t sink = 0;
  double min_t, max_t;
  RunRounds(kSamples, uint64_t{12}, [&](int cls) {
    sink += ctx.CtModExp(base, cls == 0 ? low : high, ebits)
                .ToU64Saturating();
  }, &min_t, &max_t);
  EXPECT_LT(min_t, kThreshold)
      << "CtModExp timing depends on exponent weight (max |t|=" << max_t
      << ")";
}

// The batched ladder with a shared exponent: lane VALUES differ by
// class (all-zero bases vs. random bases) — amplified over a lane
// block. Exercises CtMulManyInto's fixed flow on skewed operands.
TEST(TimingLeakTest, CtModExpManyOperandClasses) {
  SecureRandom rng(uint64_t{77003});
  MontgomeryCtx ctx = MakeCtx(&rng, 512);
  const size_t n = ctx.limbs();
  const size_t kSamples = 350;
  const size_t ebits = 128;
  const size_t k = 4;
  BigInt e = BigInt::RandomWithBits(ebits, &rng);
  MontgomeryCtx::Scratch scratch(ctx);
  std::vector<std::vector<uint64_t>> zero(k, std::vector<uint64_t>(n, 0));
  std::vector<std::vector<uint64_t>> rand(k, std::vector<uint64_t>(n));
  for (size_t l = 0; l < k; ++l) {
    ctx.ToMontInto(BigInt::RandomBelow(ctx.modulus(), &rng),
                   rand[l].data(), &scratch);
  }
  std::vector<std::vector<uint64_t>> out(k, std::vector<uint64_t>(n));
  std::vector<const uint64_t*> bp(k);
  std::vector<uint64_t*> op(k);
  for (size_t l = 0; l < k; ++l) op[l] = out[l].data();
  volatile uint64_t sink = 0;
  double min_t, max_t;
  RunRounds(kSamples, uint64_t{13}, [&](int cls) {
    auto& src = cls == 0 ? zero : rand;
    for (size_t l = 0; l < k; ++l) bp[l] = src[l].data();
    ctx.CtModExpManyInto(k, bp.data(), e, ebits, op.data(), &scratch);
    sink += out[0][0];
  }, &min_t, &max_t);
  EXPECT_LT(min_t, kThreshold)
      << "CtModExpManyInto timing depends on operand values (max |t|="
      << max_t << ")";
}

// Amplified single multiply: 64 back-to-back CtMulInto calls per sample
// with all-zero vs. random operands. Catches data-dependent final
// corrections (the early-exit compare the ct tier exists to remove).
TEST(TimingLeakTest, CtMulOperandClasses) {
  SecureRandom rng(uint64_t{77004});
  MontgomeryCtx ctx = MakeCtx(&rng, 1024);
  const size_t n = ctx.limbs();
  const size_t kSamples = 700;
  MontgomeryCtx::Scratch scratch(ctx);
  std::vector<uint64_t> zero(n, 0), randa(n), randb(n), out(n);
  ctx.ToMontInto(BigInt::RandomBelow(ctx.modulus(), &rng), randa.data(),
                 &scratch);
  ctx.ToMontInto(BigInt::RandomBelow(ctx.modulus(), &rng), randb.data(),
                 &scratch);
  volatile uint64_t sink = 0;
  double min_t, max_t;
  RunRounds(kSamples, uint64_t{14}, [&](int cls) {
    const uint64_t* a = cls == 0 ? zero.data() : randa.data();
    const uint64_t* b = cls == 0 ? zero.data() : randb.data();
    for (int i = 0; i < 64; ++i) ctx.CtMulInto(a, b, out.data(), &scratch);
    sink += out[0];
  }, &min_t, &max_t);
  EXPECT_LT(min_t, kThreshold)
      << "CtMulInto timing depends on operand values (max |t|=" << max_t
      << ")";
}

// CANARY: the variable-time sliding-window ModExp run through the exact
// same harness with the low/high-weight classes MUST flunk — ~128 extra
// window multiplies is an enormous signal. If this test ever passes the
// threshold, the harness has lost its power (broken timer, cropped
// everything, dead-code-eliminated op) and the ct "passes" above are
// meaningless.
TEST(TimingLeakTest, CanaryVariableTimeModExpIsDetected) {
  SecureRandom rng(uint64_t{77005});
  MontgomeryCtx ctx = MakeCtx(&rng, 512);
  const size_t kSamples = 350;
  const size_t ebits = 256;
  BigInt base = BigInt::RandomBelow(ctx.modulus(), &rng);
  BigInt low = BigInt(1).ShiftLeft(ebits - 1);
  BigInt high = BigInt(1).ShiftLeft(ebits).Sub(BigInt(1));
  volatile uint64_t sink = 0;
  double min_t, max_t;
  RunRounds(kSamples, uint64_t{15}, [&](int cls) {
    sink += ctx.ModExp(base, cls == 0 ? low : high).ToU64Saturating();
  }, &min_t, &max_t);
  EXPECT_GT(max_t, kThreshold)
      << "harness failed to detect a deliberately variable-time ladder "
         "(max |t|=" << max_t << ", min |t|=" << min_t << ")";
}

}  // namespace
}  // namespace crypto
}  // namespace shuffledp

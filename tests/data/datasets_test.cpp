#include "data/datasets.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace shuffledp {
namespace data {
namespace {

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(1000, 1.0);
  double sum = 0;
  for (double p : zipf.probabilities()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, HeadIsHeavierThanTail) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.probabilities()[0], zipf.probabilities()[50]);
  EXPECT_GT(zipf.probabilities()[1], zipf.probabilities()[99]);
}

TEST(ZipfSamplerTest, EmpiricalMatchesAnalytic) {
  Rng rng(1);
  ZipfSampler zipf(50, 1.2);
  const int kSamples = 200000;
  std::vector<int> counts(50, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&rng)];
  for (int v : {0, 1, 5, 20}) {
    double expected = zipf.probabilities()[static_cast<size_t>(v)];
    double rate = counts[v] / static_cast<double>(kSamples);
    double sigma = std::sqrt(expected * (1 - expected) / kSamples);
    EXPECT_NEAR(rate, expected, 6 * sigma) << v;
  }
}

TEST(DatasetTest, ValueCountsAndFrequenciesConsistent) {
  auto ds = MakeZipfDataset("t", 10000, 100, 1.0, 7);
  auto counts = ds.ValueCounts();
  auto freqs = ds.Frequencies();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, 10000u);
  double fsum = 0;
  for (double f : freqs) fsum += f;
  EXPECT_NEAR(fsum, 1.0, 1e-9);
}

TEST(DatasetTest, TopKOrderedByCount) {
  auto ds = MakeZipfDataset("t", 50000, 200, 1.2, 9);
  auto counts = ds.ValueCounts();
  auto top = ds.TopK(10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(counts[top[i - 1]], counts[top[i]]);
  }
}

TEST(DatasetTest, DeterministicForSeed) {
  auto a = MakeZipfDataset("t", 1000, 50, 1.0, 42);
  auto b = MakeZipfDataset("t", 1000, 50, 1.0, 42);
  EXPECT_EQ(a.values, b.values);
  auto c = MakeZipfDataset("t", 1000, 50, 1.0, 43);
  EXPECT_NE(a.values, c.values);
}

TEST(SyntheticIpumsTest, MatchesPaperShape) {
  auto ds = MakeSyntheticIpums(1, 0.05);  // 5% scale for test speed
  EXPECT_EQ(ds.domain_size, 915u);
  EXPECT_EQ(ds.user_count(), static_cast<uint64_t>(602325 * 0.05));
  for (uint64_t v : ds.values) EXPECT_LT(v, 915u);
}

TEST(SyntheticKosarakTest, MatchesPaperShape) {
  auto ds = MakeSyntheticKosarak(1, 0.01);
  EXPECT_EQ(ds.domain_size, 42178u);
  EXPECT_EQ(ds.user_count(), 10000u);
}

TEST(SyntheticAolTest, MatchesPaperShape) {
  auto ds = MakeSyntheticAol(1, 0.05);
  EXPECT_EQ(ds.domain_size, 1ULL << 48);
  EXPECT_EQ(ds.user_count(), 25000u);
  std::unordered_set<uint64_t> distinct(ds.values.begin(), ds.values.end());
  // ~6000 codes offered at 5% scale; heavy tail keeps most of them present.
  EXPECT_GT(distinct.size(), 1000u);
  EXPECT_LE(distinct.size(), 6001u);
  for (uint64_t v : ds.values) EXPECT_LT(v, 1ULL << 48);
}

TEST(SyntheticAolTest, SkewMakesTopQueryPopular) {
  auto ds = MakeSyntheticAol(2, 0.02);
  auto top = ds.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  uint64_t count = 0;
  for (uint64_t v : ds.values) count += (v == top[0]);
  // Zipf head should hold well over 1% of the mass.
  EXPECT_GT(count, ds.user_count() / 100);
}

}  // namespace
}  // namespace data
}  // namespace shuffledp

#include "dp/amplification.h"

#include <gtest/gtest.h>

#include <cmath>

namespace shuffledp {
namespace dp {
namespace {

constexpr double kDelta = 1e-9;  // paper default

TEST(BinomialMechanismTest, Theorem1Formula) {
  // ε_c = sqrt(14 ln(2/δ) / (n p)).
  double eps = BinomialMechanismEpsilon(1000000, 0.001, kDelta);
  EXPECT_NEAR(eps, std::sqrt(14.0 * std::log(2.0 / kDelta) / 1000.0), 1e-12);
}

TEST(BinomialMechanismTest, MoreNoiseMeansMorePrivacy) {
  EXPECT_LT(BinomialMechanismEpsilon(1000000, 0.01, kDelta),
            BinomialMechanismEpsilon(1000000, 0.001, kDelta));
  EXPECT_LT(BinomialMechanismEpsilon(2000000, 0.001, kDelta),
            BinomialMechanismEpsilon(1000000, 0.001, kDelta));
}

// --- Forward bounds -------------------------------------------------------

TEST(AmplifyTest, Bbgn19MatchesClosedForm) {
  const uint64_t n = 602325, d = 915;
  const double eps_l = 5.0;
  auto b = AmplifyBbgn19(eps_l, n, d, kDelta);
  ASSERT_TRUE(b.amplified);
  double expected = std::sqrt(14.0 * std::log(2.0 / kDelta) *
                              (std::exp(eps_l) + d - 1.0) / (n - 1.0));
  EXPECT_NEAR(b.eps_c, expected, 1e-12);
  EXPECT_LT(b.eps_c, eps_l);
}

TEST(AmplifyTest, Bbgn19FailsBelowThreshold) {
  // Huge domain: condition sqrt(14 ln(2/δ) d/(n−1)) < ε_c cannot hold.
  auto b = AmplifyBbgn19(1.0, 10000, 1000000, kDelta);
  EXPECT_FALSE(b.amplified);
  EXPECT_DOUBLE_EQ(b.eps_c, 1.0);
}

TEST(AmplifyTest, SolhDoesNotDependOnInputDomain) {
  // Theorem 3 depends on d', not d — the whole point of SOLH.
  auto b = AmplifySolh(5.0, 602325, 16, kDelta);
  ASSERT_TRUE(b.amplified);
  double expected = std::sqrt(14.0 * std::log(2.0 / kDelta) *
                              (std::exp(5.0) + 16.0 - 1.0) / 602324.0);
  EXPECT_NEAR(b.eps_c, expected, 1e-12);
}

TEST(AmplifyTest, UnaryTheorem2MatchesClosedForm) {
  auto b = AmplifyUnary(5.0, 602325, kDelta);
  ASSERT_TRUE(b.amplified);
  double expected = 2.0 * std::sqrt(14.0 * std::log(4.0 / kDelta) *
                                    (std::exp(2.5) + 1.0) / 602324.0);
  EXPECT_NEAR(b.eps_c, expected, 1e-12);
}

TEST(AmplifyTest, Efmrtt19RequiresSmallEpsilon) {
  EXPECT_FALSE(AmplifyEfmrtt19(0.6, 1000000, kDelta).amplified);
  auto b = AmplifyEfmrtt19(0.3, 100000000, kDelta);
  EXPECT_TRUE(b.amplified);
  EXPECT_NEAR(b.eps_c,
              12.0 * 0.3 * std::sqrt(std::log(1.0 / kDelta) / 1e8), 1e-12);
}

TEST(AmplifyTest, Csuzz19BinaryBound) {
  auto b = AmplifyCsuzz19(3.0, 100000000, kDelta);
  ASSERT_TRUE(b.amplified);
  EXPECT_NEAR(b.eps_c,
              std::sqrt(32.0 * std::log(4.0 / kDelta) * (std::exp(3.0) + 1) /
                        1e8),
              1e-12);
}

// Paper Table I narrative: BBGN dominates CSUZZ pointwise (the constants
// 14 ln(2/δ) < 32 ln(4/δ) multiply the same (e^ε+1) factor on binary
// domains). EFMRTT can be tighter for ε_l < 1/2 — the paper's "strongest"
// claim is about applicability (any ε_l, any mechanism), not pointwise
// dominance — so it is only checked above EFMRTT's validity cutoff.
TEST(AmplifyTest, Bbgn19DominatesCsuzz19OnBinaryDomains) {
  const uint64_t n = 100000000;
  for (double eps_l : {0.4, 1.0, 2.0}) {
    auto bbgn = AmplifyBbgn19(eps_l, n, 2, kDelta);
    auto csuzz = AmplifyCsuzz19(eps_l, n, kDelta);
    ASSERT_TRUE(bbgn.amplified) << eps_l;
    if (csuzz.amplified) EXPECT_LT(bbgn.eps_c, csuzz.eps_c) << eps_l;
  }
  // Above 1/2, EFMRTT does not apply at all while BBGN still amplifies.
  EXPECT_FALSE(AmplifyEfmrtt19(1.0, n, kDelta).amplified);
  EXPECT_TRUE(AmplifyBbgn19(1.0, n, 2, kDelta).amplified);
}

// --- Inverse maps ---------------------------------------------------------

struct InverseCase {
  double eps_c;
  uint64_t n;
  uint64_t d;
};

class InverseRoundTrip : public ::testing::TestWithParam<InverseCase> {};

TEST_P(InverseRoundTrip, GrrInverseIsExactInverse) {
  const auto [eps_c, n, d] = GetParam();
  double eps_l = InverseGrrEpsLocal(eps_c, n, d, kDelta);
  if (eps_l > eps_c) {  // amplification achieved
    auto fwd = AmplifyBbgn19(eps_l, n, d, kDelta);
    EXPECT_NEAR(fwd.eps_c, eps_c, 1e-9 * eps_c);
  }
}

TEST_P(InverseRoundTrip, SolhInverseIsExactInverse) {
  const auto [eps_c, n, d] = GetParam();
  uint64_t d_prime = OptimalSolhDPrime(eps_c, n, kDelta);
  double eps_l = InverseSolhEpsLocal(eps_c, n, d_prime, kDelta);
  if (eps_l > eps_c) {
    auto fwd = AmplifySolh(eps_l, n, d_prime, kDelta);
    EXPECT_NEAR(fwd.eps_c, eps_c, 1e-9 * eps_c);
  }
}

TEST_P(InverseRoundTrip, UnaryInverseIsExactInverse) {
  const auto [eps_c, n, d] = GetParam();
  (void)d;
  double eps_l = InverseUnaryEpsLocal(eps_c, n, kDelta);
  if (eps_l > eps_c) {
    auto fwd = AmplifyUnary(eps_l, n, kDelta);
    EXPECT_NEAR(fwd.eps_c, eps_c, 1e-9 * eps_c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InverseRoundTrip,
    ::testing::Values(InverseCase{0.1, 602325, 915},
                      InverseCase{0.2, 602325, 915},
                      InverseCase{0.5, 602325, 915},
                      InverseCase{1.0, 602325, 915},
                      InverseCase{0.2, 1000000, 42178},
                      InverseCase{0.8, 1000000, 42178},
                      InverseCase{0.5, 100000, 100}));

TEST(InverseTest, NoAmplificationFallsBackToEpsC) {
  // SH with a domain too large for the blanket: ε_l = ε_c.
  double eps_l = InverseGrrEpsLocal(0.1, 10000, 1000000, kDelta);
  EXPECT_DOUBLE_EQ(eps_l, 0.1);
}

TEST(OptimalDPrimeTest, MatchesEquation5) {
  const uint64_t n = 1000000;
  for (double eps_c : {0.2, 0.4, 0.6, 0.8}) {
    double m = BlanketMass(eps_c, n, kDelta);
    uint64_t expected = static_cast<uint64_t>((m + 2.0) / 3.0);
    EXPECT_EQ(OptimalSolhDPrime(eps_c, n, kDelta), std::max<uint64_t>(
        expected, 2));
  }
}

TEST(OptimalDPrimeTest, IsVarianceOptimalByBruteForce) {
  // Eq. (5) should (nearly) minimize Proposition 6's variance over d'.
  const uint64_t n = 1000000;
  const double eps_c = 0.5;
  uint64_t d_star = OptimalSolhDPrime(eps_c, n, kDelta);
  double best = SolhVarianceCentral(eps_c, n, d_star, kDelta);
  for (uint64_t d_prime = 2; d_prime < 4 * d_star; d_prime += 3) {
    double var = SolhVarianceCentral(eps_c, n, d_prime, kDelta);
    EXPECT_GE(var, best * (1.0 - 1e-6))
        << "d'=" << d_prime << " beats optimal " << d_star;
  }
}

// --- PEOS corollaries -----------------------------------------------------

TEST(PeosTest, EpsAgainstUsersMatchesCorollary8) {
  double eps_s = PeosEpsAgainstUsers(100000, 64, kDelta);
  EXPECT_NEAR(eps_s,
              std::sqrt(14.0 * std::log(2.0 / kDelta) * 64.0 / 100000.0),
              1e-12);
}

TEST(PeosTest, MoreFakesMorePrivacyAgainstUsers) {
  EXPECT_LT(PeosEpsAgainstUsers(200000, 64, kDelta),
            PeosEpsAgainstUsers(100000, 64, kDelta));
}

TEST(PeosTest, Equation7ReducesToTheorem3WithoutFakes) {
  const uint64_t n = 602325, d_prime = 64;
  const double eps_l = 4.0;
  double with_zero = PeosEpsAgainstServer(eps_l, n, 0, d_prime, kDelta);
  auto plain = AmplifySolh(eps_l, n, d_prime, kDelta);
  EXPECT_NEAR(with_zero, plain.eps_c, 1e-12);
}

TEST(PeosTest, FakeReportsImproveEpsAgainstServer) {
  const uint64_t n = 602325, d_prime = 64;
  const double eps_l = 4.0;
  double no_fakes = PeosEpsAgainstServer(eps_l, n, 0, d_prime, kDelta);
  double some = PeosEpsAgainstServer(eps_l, n, 100000, d_prime, kDelta);
  double more = PeosEpsAgainstServer(eps_l, n, 400000, d_prime, kDelta);
  EXPECT_LT(some, no_fakes);
  EXPECT_LT(more, some);
}

TEST(PeosTest, InverseEpsLocalRoundTrips) {
  const uint64_t n = 602325, n_r = 60000, d_prime = 32;
  const double eps_c = 0.5;
  double eps_l = PeosInverseEpsLocal(eps_c, n, n_r, d_prime, kDelta);
  if (std::isfinite(eps_l) && eps_l > eps_c) {
    double fwd = PeosEpsAgainstServer(eps_l, n, n_r, d_prime, kDelta);
    EXPECT_NEAR(fwd, eps_c, 1e-9 * eps_c);
  }
}

TEST(PeosTest, InfeasibleTargetReturnsInfinity) {
  // So many fakes that the target ε_c is met with no user noise at all.
  double eps_l = PeosInverseEpsLocal(1.0, 1000, 100000000, 2, kDelta);
  EXPECT_TRUE(std::isinf(eps_l));
}

TEST(PeosTest, OptimalDPrimeGrowsWithFakes) {
  // §VI-C formula d' = ((b+n_r)/a + 2)/3 grows with n_r. (The paper's
  // prose says "introducing n_r will reduce the optimal d'", but its own
  // displayed formula — and re-deriving the optimum from its variance
  // expression — gives growth; the prose line has a sign typo. See
  // EXPERIMENTS.md "Deviations".)
  const uint64_t n = 1000000;
  const double eps_c = 0.5;
  uint64_t without = PeosOptimalDPrime(eps_c, n, 0, kDelta);
  uint64_t with_fakes = PeosOptimalDPrime(eps_c, n, 200000, kDelta);
  EXPECT_GE(with_fakes, without);
  EXPECT_EQ(without, OptimalSolhDPrime(eps_c, n, kDelta));
}

// --- Variance formulas ----------------------------------------------------

TEST(VarianceTest, GrrGrowsWithDomain) {
  EXPECT_LT(GrrVarianceLocal(2.0, 100000, 10),
            GrrVarianceLocal(2.0, 100000, 1000));
}

TEST(VarianceTest, LocalHashMatchesEq4) {
  double v = LocalHashVarianceLocal(2.0, 100000, 8);
  double e = std::exp(2.0);
  EXPECT_NEAR(v, (e + 7) * (e + 7) / (100000.0 * (e - 1) * (e - 1) * 7),
              1e-15);
}

TEST(VarianceTest, Proposition4ClosedForm) {
  // Variance of SH at ε_c = (m−1) / (n (m−d)²) with m = blanket mass.
  // ε_c must exceed SH's amplification threshold sqrt(14 ln(2/δ) d/(n−1))
  // ≈ 0.675 at IPUMS scale, else SH falls back to plain LDP (Figure 3's
  // flat segment).
  const uint64_t n = 602325, d = 915;
  const double eps_c = 0.8;
  double m = BlanketMass(eps_c, n, kDelta);
  double expected = (m - 1.0) / (n * (m - d) * (m - d));
  EXPECT_NEAR(ShGrrVarianceCentral(eps_c, n, d, kDelta), expected,
              1e-9 * expected);
}

TEST(VarianceTest, Proposition6ClosedForm) {
  const uint64_t n = 602325, d_prime = 100;
  const double eps_c = 0.5;
  double m = BlanketMass(eps_c, n, kDelta);
  double expected =
      m * m / (n * (m - d_prime) * (m - d_prime) * (d_prime - 1));
  EXPECT_NEAR(SolhVarianceCentral(eps_c, n, d_prime, kDelta), expected,
              1e-9 * expected);
}

// Figure 3 shape: at IPUMS scale, SOLH beats SH, is ~3 orders better than
// OLH (LDP), and Laplace is ~2 orders better than SOLH.
TEST(VarianceTest, Figure3MethodOrdering) {
  const uint64_t n = 602325, d = 915;
  const double eps_c = 0.5;
  uint64_t d_star = OptimalSolhDPrime(eps_c, n, kDelta);
  double solh = SolhVarianceCentral(eps_c, n, d_star, kDelta);
  double sh = ShGrrVarianceCentral(eps_c, n, d, kDelta);
  double olh_ldp = LocalHashVarianceLocal(eps_c, n, 3);  // OLH at ε_l = ε_c
  double lap = LaplaceVariance(eps_c, n);
  EXPECT_LT(solh, sh);
  EXPECT_LT(solh, olh_ldp / 100.0);   // orders of magnitude better than LDP
  EXPECT_LT(lap, solh);               // central DP is the lower bound
}

TEST(VarianceTest, AueComparableToSolh) {
  // §IV-B4: AUE differs from SOLH "by only a constant".
  const uint64_t n = 602325;
  const double eps_c = 0.5;
  uint64_t d_star = OptimalSolhDPrime(eps_c, n, kDelta);
  double solh = SolhVarianceCentral(eps_c, n, d_star, kDelta);
  double aue = AueVarianceCentral(eps_c, n, kDelta);
  EXPECT_LT(aue / solh, 10.0);
  EXPECT_GT(aue / solh, 0.1);
}

TEST(VarianceTest, RapRemovalEqualsRapAtDoubleEps) {
  EXPECT_DOUBLE_EQ(RapRemovalVarianceCentral(0.3, 602325, kDelta),
                   RapVarianceCentral(0.6, 602325, kDelta));
}

TEST(VarianceTest, PeosFakeReportsImproveUtilityAtFixedEpsC) {
  // Counter-intuitive but correct (and the reason PEOS beats SH by orders
  // of magnitude in §VII): at a fixed central target ε_c, blanket mass
  // supplied by dedicated uniform fake reports is cheaper than blanket
  // mass supplied by user-side randomization — the fakes only dilute
  // (factor (n+n_r)/n) while user noise also shrinks the calibration gap
  // p − q. So variance *decreases* with n_r (until ε_l hits the ε_3 cap).
  const uint64_t n = 602325;
  const double eps_c = 0.5;
  uint64_t d0 = PeosOptimalDPrime(eps_c, n, 0, kDelta);
  uint64_t d1 = PeosOptimalDPrime(eps_c, n, 100000, kDelta);
  double v0 = PeosSolhVarianceCentral(eps_c, n, 0, d0, kDelta);
  double v1 = PeosSolhVarianceCentral(eps_c, n, 100000, d1, kDelta);
  EXPECT_LT(v1, v0);
  EXPECT_GT(v1, v0 / 50.0);  // improvement is bounded at n_r << n
}

TEST(VarianceTest, LaplaceScalesAsInverseN) {
  EXPECT_NEAR(LaplaceVariance(1.0, 2000000) / LaplaceVariance(1.0, 1000000),
              0.25, 1e-12);
}

}  // namespace
}  // namespace dp
}  // namespace shuffledp

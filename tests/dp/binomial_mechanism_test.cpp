#include "dp/binomial_mechanism.h"

#include <gtest/gtest.h>

#include "dp/amplification.h"
#include "util/stats.h"

namespace shuffledp {
namespace dp {
namespace {

TEST(BinomialNoiseTest, RejectsBadP) {
  Rng rng(1);
  std::vector<uint64_t> counts = {1, 2, 3};
  EXPECT_FALSE(BinomialNoiseCounts(counts, 100, -0.1, &rng).ok());
  EXPECT_FALSE(BinomialNoiseCounts(counts, 100, 1.1, &rng).ok());
}

TEST(BinomialNoiseTest, NoiseIsNonNegative) {
  Rng rng(2);
  std::vector<uint64_t> counts = {5, 10, 15};
  auto noisy = BinomialNoiseCounts(counts, 1000, 0.1, &rng);
  ASSERT_TRUE(noisy.ok());
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_GE((*noisy)[i], counts[i]);
    EXPECT_LE((*noisy)[i], counts[i] + 1000);
  }
}

TEST(BinomialMechanismTest, FrequenciesAreUnbiased) {
  Rng rng(3);
  const uint64_t n = 1000;
  std::vector<uint64_t> counts = {600, 400};
  RunningStat est;
  for (int t = 0; t < 4000; ++t) {
    auto f = BinomialMechanismFrequencies(counts, n, 5000, 0.02, &rng);
    ASSERT_TRUE(f.ok());
    est.Add((*f)[0]);
  }
  EXPECT_NEAR(est.mean(), 0.6, 6 * est.stderr_mean());
}

TEST(BinomialMechanismTest, VarianceMatchesTheory) {
  Rng rng(4);
  const uint64_t n = 1000, trials = 5000;
  const double p = 0.02;
  std::vector<uint64_t> counts = {500, 500};
  RunningStat est;
  for (int t = 0; t < 4000; ++t) {
    auto f = BinomialMechanismFrequencies(counts, n, trials, p, &rng);
    ASSERT_TRUE(f.ok());
    est.Add((*f)[0]);
  }
  double predicted = static_cast<double>(trials) * p * (1 - p) /
                     (static_cast<double>(n) * static_cast<double>(n));
  EXPECT_NEAR(est.variance(), predicted, 0.12 * predicted);
}

TEST(BinomialMechanismTest, InverseOfTheorem1) {
  const double eps_c = 0.5, delta = 1e-9;
  const uint64_t n = 1000000;
  double p = BinomialNoiseProbabilityFor(eps_c, n, delta);
  EXPECT_NEAR(BinomialMechanismEpsilon(n, p, delta), eps_c, 1e-9);
}

}  // namespace
}  // namespace dp
}  // namespace shuffledp

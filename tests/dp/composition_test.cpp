#include "dp/composition.h"

#include <gtest/gtest.h>

#include <cmath>

namespace shuffledp {
namespace dp {
namespace {

TEST(CompositionTest, BasicIsLinear) {
  DpBudget per{0.1, 1e-10};
  auto total = ComposeBasic(per, 6);
  EXPECT_DOUBLE_EQ(total.epsilon, 0.6);
  EXPECT_DOUBLE_EQ(total.delta, 6e-10);
}

TEST(CompositionTest, AdvancedMatchesFormula) {
  DpBudget per{0.1, 0.0};
  auto total = ComposeAdvanced(per, 100, 1e-6);
  double expected = 0.1 * std::sqrt(200.0 * std::log(1e6)) +
                    100 * 0.1 * (std::exp(0.1) - 1.0);
  EXPECT_NEAR(total.epsilon, expected, 1e-12);
  EXPECT_DOUBLE_EQ(total.delta, 1e-6);
}

TEST(CompositionTest, SplitBasicRoundTrips) {
  DpBudget total{0.6, 1e-9};
  auto per = SplitBasic(total, 6);
  ASSERT_TRUE(per.ok());
  auto back = ComposeBasic(*per, 6);
  EXPECT_NEAR(back.epsilon, 0.6, 1e-12);
  EXPECT_NEAR(back.delta, 1e-9, 1e-20);
}

TEST(CompositionTest, SplitAdvancedStaysWithinBudget) {
  DpBudget total{1.0, 1e-8};
  for (unsigned k : {2u, 6u, 50u, 500u}) {
    auto per = SplitAdvanced(total, k);
    ASSERT_TRUE(per.ok()) << k;
    auto back = ComposeAdvanced(*per, k, total.delta / 2.0);
    EXPECT_LE(back.epsilon, total.epsilon * (1 + 1e-6)) << k;
    EXPECT_LE(back.delta, total.delta * (1 + 1e-6)) << k;
  }
}

TEST(CompositionTest, AdvancedBeatsBasicForManyRounds) {
  DpBudget total{1.0, 1e-8};
  auto basic = SplitBasic(total, 500);
  auto advanced = SplitAdvanced(total, 500);
  ASSERT_TRUE(basic.ok() && advanced.ok());
  EXPECT_GT(advanced->epsilon, basic->epsilon);
}

TEST(CompositionTest, BasicBeatsAdvancedForFewRounds) {
  // At k = 6 (TreeHist) the sqrt term's constant dominates: the paper's
  // simple ε/6 split is the right call.
  DpBudget total{0.5, 1e-9};
  auto best = SplitBest(total, 6);
  auto basic = SplitBasic(total, 6);
  ASSERT_TRUE(best.ok() && basic.ok());
  EXPECT_NEAR(best->epsilon, basic->epsilon, 1e-9);
}

TEST(CompositionTest, SplitBestPicksAdvancedWhenBetter) {
  DpBudget total{1.0, 1e-8};
  auto best = SplitBest(total, 500);
  auto basic = SplitBasic(total, 500);
  ASSERT_TRUE(best.ok() && basic.ok());
  EXPECT_GT(best->epsilon, basic->epsilon);
}

TEST(CompositionTest, RejectsBadArguments) {
  EXPECT_FALSE(SplitBasic(DpBudget{0.5, 1e-9}, 0).ok());
  EXPECT_FALSE(SplitBasic(DpBudget{0.0, 1e-9}, 3).ok());
  EXPECT_FALSE(SplitAdvanced(DpBudget{0.5, 0.0}, 3).ok());
}

}  // namespace
}  // namespace dp
}  // namespace shuffledp

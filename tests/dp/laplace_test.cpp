#include "dp/laplace.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace shuffledp {
namespace dp {
namespace {

TEST(LaplaceTest, RejectsBadArguments) {
  Rng rng(1);
  std::vector<uint64_t> counts = {10, 20};
  EXPECT_FALSE(LaplaceHistogram(counts, 30, 0.0, &rng).ok());
  EXPECT_FALSE(LaplaceHistogram(counts, 30, -1.0, &rng).ok());
  EXPECT_FALSE(LaplaceHistogram(counts, 0, 1.0, &rng).ok());
}

TEST(LaplaceTest, UnbiasedOverTrials) {
  Rng rng(2);
  std::vector<uint64_t> counts = {700, 300};
  RunningStat est0;
  for (int t = 0; t < 3000; ++t) {
    auto noisy = LaplaceHistogram(counts, 1000, 1.0, &rng);
    ASSERT_TRUE(noisy.ok());
    est0.Add((*noisy)[0]);
  }
  EXPECT_NEAR(est0.mean(), 0.7, 6 * est0.stderr_mean());
}

TEST(LaplaceTest, EmpiricalVarianceMatchesFormula) {
  Rng rng(3);
  const uint64_t n = 10000;
  const double eps = 0.5;
  std::vector<double> freqs = {0.5, 0.5};
  RunningStat dev;
  for (int t = 0; t < 5000; ++t) {
    auto noisy = LaplaceFrequencies(freqs, n, eps, &rng);
    ASSERT_TRUE(noisy.ok());
    dev.Add((*noisy)[0] - 0.5);
  }
  double predicted = 2.0 * (2.0 / eps) * (2.0 / eps) /
                     (static_cast<double>(n) * static_cast<double>(n));
  EXPECT_NEAR(dev.variance(), predicted, 0.1 * predicted);
}

TEST(LaplaceTest, SmallerEpsilonMoreNoise) {
  Rng rng(4);
  std::vector<double> freqs(10, 0.1);
  RunningStat tight, loose;
  for (int t = 0; t < 500; ++t) {
    auto a = LaplaceFrequencies(freqs, 1000, 10.0, &rng);
    auto b = LaplaceFrequencies(freqs, 1000, 0.1, &rng);
    ASSERT_TRUE(a.ok() && b.ok());
    tight.Add((*a)[0] - 0.1);
    loose.Add((*b)[0] - 0.1);
  }
  EXPECT_LT(tight.variance(), loose.variance());
}

}  // namespace
}  // namespace dp
}  // namespace shuffledp

// Property sweeps over the analytic variance formulas: monotonicity in
// ε_c and n, positivity, and the cross-method dominance relations the
// paper's Figures rely on — checked on a grid rather than single points.

#include <gtest/gtest.h>

#include <cmath>

#include "core/methods.h"
#include "dp/amplification.h"

namespace shuffledp {
namespace dp {
namespace {

constexpr double kDelta = 1e-9;

struct GridPoint {
  uint64_t n;
  uint64_t d;
};

class VarianceGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(VarianceGrid, AllMethodsPositiveAndFinite) {
  const auto [n, d] = GetParam();
  for (auto m : core::AllMethods()) {
    if (m == core::Method::kBase) continue;
    for (double eps : {0.1, 0.3, 0.5, 0.8, 1.0}) {
      auto var = core::PredictVariance(m, n, d, eps, kDelta);
      ASSERT_TRUE(var.ok());
      EXPECT_GT(*var, 0.0) << core::MethodName(m) << " eps=" << eps;
      EXPECT_TRUE(std::isfinite(*var)) << core::MethodName(m);
    }
  }
}

TEST_P(VarianceGrid, MonotoneDecreasingInEps) {
  const auto [n, d] = GetParam();
  for (auto m : core::AllMethods()) {
    if (m == core::Method::kBase) continue;
    double prev = 1e300;
    for (double eps : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      auto var = core::PredictVariance(m, n, d, eps, kDelta);
      ASSERT_TRUE(var.ok());
      // SH has a discontinuity at its threshold; allow equality there but
      // never an increase.
      EXPECT_LE(*var, prev * (1 + 1e-9))
          << core::MethodName(m) << " eps=" << eps;
      prev = *var;
    }
  }
}

TEST_P(VarianceGrid, MonotoneDecreasingInN) {
  const auto [n, d] = GetParam();
  for (auto m : core::AllMethods()) {
    if (m == core::Method::kBase) continue;
    auto small = core::PredictVariance(m, n, d, 0.5, kDelta);
    auto large = core::PredictVariance(m, 4 * n, d, 0.5, kDelta);
    ASSERT_TRUE(small.ok() && large.ok());
    EXPECT_LT(*large, *small) << core::MethodName(m);
  }
}

TEST_P(VarianceGrid, ShuffleMethodsDominateLdpMethods) {
  const auto [n, d] = GetParam();
  for (double eps : {0.2, 0.5, 1.0}) {
    auto solh = core::PredictVariance(core::Method::kSolh, n, d, eps, kDelta);
    auto olh = core::PredictVariance(core::Method::kOlh, n, d, eps, kDelta);
    ASSERT_TRUE(solh.ok() && olh.ok());
    EXPECT_LE(*solh, *olh * (1 + 1e-9)) << "eps=" << eps;
  }
}

TEST_P(VarianceGrid, CentralDpDominatesEverything) {
  const auto [n, d] = GetParam();
  for (auto m : core::AllMethods()) {
    if (m == core::Method::kBase || m == core::Method::kLap) continue;
    auto lap = core::PredictVariance(core::Method::kLap, n, d, 0.5, kDelta);
    auto other = core::PredictVariance(m, n, d, 0.5, kDelta);
    ASSERT_TRUE(lap.ok() && other.ok());
    EXPECT_LT(*lap, *other) << core::MethodName(m);
  }
}

TEST_P(VarianceGrid, GrrVarianceGrowsWithDomainLocalHashDoesNot) {
  const auto [n, d] = GetParam();
  (void)d;
  // GRR at fixed local ε degrades with d; local hashing is d-free.
  EXPECT_GT(GrrVarianceLocal(1.0, n, 10000), GrrVarianceLocal(1.0, n, 10));
  EXPECT_DOUBLE_EQ(LocalHashVarianceLocal(1.0, n, 4),
                   LocalHashVarianceLocal(1.0, n, 4));
}

INSTANTIATE_TEST_SUITE_P(Grid, VarianceGrid,
                         ::testing::Values(GridPoint{100000, 64},
                                           GridPoint{602325, 915},
                                           GridPoint{1000000, 42178},
                                           GridPoint{10000000, 100}));

}  // namespace
}  // namespace dp
}  // namespace shuffledp

// Tests for the exact per-user TreeHist path (real LDP reports per round,
// optional fake-report blanket), and its agreement with the fast path.

#include <gtest/gtest.h>

#include "hist/tree_hist.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "util/stats.h"

namespace shuffledp {
namespace hist {
namespace {

OracleFactory GrrFactory(double eps) {
  return [eps](uint64_t domain)
             -> Result<std::unique_ptr<ldp::ScalarFrequencyOracle>> {
    return std::unique_ptr<ldp::ScalarFrequencyOracle>(
        new ldp::Grr(eps, domain));
  };
}

OracleFactory SolhFactory(double eps, uint64_t d_prime) {
  return [eps, d_prime](uint64_t domain)
             -> Result<std::unique_ptr<ldp::ScalarFrequencyOracle>> {
    return std::unique_ptr<ldp::ScalarFrequencyOracle>(
        new ldp::LocalHash(eps, domain, d_prime, "SOLH"));
  };
}

std::vector<uint64_t> PlantedValues() {
  std::vector<uint64_t> values;
  for (int i = 0; i < 6000; ++i) values.push_back(0xAB12);
  for (int i = 0; i < 4000; ++i) values.push_back(0x7788);
  for (int i = 0; i < 2000; ++i) {
    values.push_back(static_cast<uint64_t>(i * 131) & 0xFFFF);
  }
  return values;
}

TEST(TreeHistExactTest, GrrOracleRecoversPlantedHitters) {
  TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 2;
  Rng rng(1);
  auto result =
      RunTreeHistExact(PlantedValues(), config, GrrFactory(4.0), 0, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<uint64_t> sorted = result->heavy_hitters;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint64_t>{0x7788, 0xAB12}));
}

TEST(TreeHistExactTest, SolhOracleRecoversPlantedHitters) {
  TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 2;
  Rng rng(2);
  auto result = RunTreeHistExact(PlantedValues(), config,
                                 SolhFactory(4.0, 16), 0, &rng);
  ASSERT_TRUE(result.ok());
  std::vector<uint64_t> sorted = result->heavy_hitters;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint64_t>{0x7788, 0xAB12}));
}

TEST(TreeHistExactTest, FakeReportsDoNotBiasTheFrontier) {
  // With a heavy fake blanket the calibration still ranks the true
  // hitters first (the blanket lifts every candidate equally).
  TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 2;
  Rng rng(3);
  auto result = RunTreeHistExact(PlantedValues(), config, GrrFactory(4.0),
                                 /*fakes_per_round=*/4000, &rng);
  ASSERT_TRUE(result.ok());
  std::vector<uint64_t> sorted = result->heavy_hitters;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint64_t>{0x7788, 0xAB12}));
}

TEST(TreeHistExactTest, SplitUsersMode) {
  TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 1;
  config.split_users = true;
  Rng rng(4);
  auto result =
      RunTreeHistExact(PlantedValues(), config, GrrFactory(5.0), 0, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->heavy_hitters.size(), 1u);
  EXPECT_EQ(result->heavy_hitters[0], 0xAB12u);
}

TEST(TreeHistExactTest, FactoryErrorPropagates) {
  TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 2;
  Rng rng(5);
  OracleFactory failing =
      [](uint64_t) -> Result<std::unique_ptr<ldp::ScalarFrequencyOracle>> {
    return Status::FailedPrecondition("no oracle for you");
  };
  auto result = RunTreeHistExact(PlantedValues(), config, failing, 0, &rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TreeHistExactTest, WrongDomainOracleRejected) {
  TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 2;
  Rng rng(6);
  OracleFactory wrong =
      [](uint64_t) -> Result<std::unique_ptr<ldp::ScalarFrequencyOracle>> {
    return std::unique_ptr<ldp::ScalarFrequencyOracle>(
        new ldp::Grr(1.0, 7));  // ignores the requested domain
  };
  auto result = RunTreeHistExact(PlantedValues(), config, wrong, 0, &rng);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace hist
}  // namespace shuffledp

#include "hist/tree_hist.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/datasets.h"
#include "util/stats.h"

namespace shuffledp {
namespace hist {
namespace {

// Noise-free estimator: returns true frequencies.
RoundEstimator ExactEstimator() {
  return [](const std::vector<uint64_t>& counts, uint64_t n,
            Rng*) -> std::vector<double> {
    std::vector<double> est(counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i] = static_cast<double>(counts[i]) / static_cast<double>(n);
    }
    return est;
  };
}

// Estimator with additive Gaussian noise of the given sd.
RoundEstimator NoisyEstimator(double sd) {
  return [sd](const std::vector<uint64_t>& counts, uint64_t n,
              Rng* rng) -> std::vector<double> {
    std::vector<double> est(counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i] = static_cast<double>(counts[i]) / static_cast<double>(n) +
               sd * rng->Gaussian();
    }
    return est;
  };
}

TEST(TreeHistTest, ExactEstimatorRecoversPlantedHitters) {
  // 16-bit strings; three heavy values dominate.
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(0xABCD);
  for (int i = 0; i < 300; ++i) values.push_back(0x1234);
  for (int i = 0; i < 200; ++i) values.push_back(0xFFFF);
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<uint64_t>(i));

  TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 3;
  Rng rng(1);
  auto result = RunTreeHist(values, config, ExactEstimator(), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rounds, 2u);
  ASSERT_EQ(result->heavy_hitters.size(), 3u);
  std::vector<uint64_t> sorted = result->heavy_hitters;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint64_t>{0x1234, 0xABCD, 0xFFFF}));
  // Frequencies come back in rank order.
  EXPECT_GT(result->frequencies[0], result->frequencies[1]);
}

TEST(TreeHistTest, SplitUsersModeStillRecovers) {
  std::vector<uint64_t> values;
  for (int i = 0; i < 4000; ++i) values.push_back(0xBEEF);
  for (int i = 0; i < 2000; ++i) values.push_back(0xC0DE);
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<uint64_t>(i * 37) & 0xFFFF);
  }
  TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 2;
  config.split_users = true;
  Rng rng(2);
  auto result = RunTreeHist(values, config, ExactEstimator(), &rng);
  ASSERT_TRUE(result.ok());
  std::vector<uint64_t> sorted = result->heavy_hitters;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint64_t>{0xBEEF, 0xC0DE}));
}

TEST(TreeHistTest, ModerateNoiseKeepsHeadPrecisionHigh) {
  data::Dataset ds = data::MakeSyntheticAol(7, 0.02);
  TreeHistConfig config;
  config.total_bits = 48;
  config.bits_per_round = 8;
  config.top_k = 16;
  Rng rng(3);
  auto truth = ds.TopK(16);
  auto result =
      RunTreeHist(ds.values, config, NoisyEstimator(2e-4), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rounds, 6u);
  double precision = TopKPrecision(result->heavy_hitters, truth);
  EXPECT_GT(precision, 0.5);
}

TEST(TreeHistTest, HugeNoiseDestroysPrecision) {
  data::Dataset ds = data::MakeSyntheticAol(8, 0.01);
  TreeHistConfig config;
  config.total_bits = 48;
  config.bits_per_round = 8;
  config.top_k = 16;
  Rng rng(4);
  auto truth = ds.TopK(16);
  auto result = RunTreeHist(ds.values, config, NoisyEstimator(1.0), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(TopKPrecision(result->heavy_hitters, truth), 0.3);
}

TEST(TreeHistTest, RejectsBadConfigs) {
  Rng rng(5);
  std::vector<uint64_t> values = {1, 2, 3};
  TreeHistConfig config;
  config.total_bits = 10;
  config.bits_per_round = 4;  // not a divisor
  EXPECT_FALSE(RunTreeHist(values, config, ExactEstimator(), &rng).ok());
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 0;
  EXPECT_FALSE(RunTreeHist(values, config, ExactEstimator(), &rng).ok());
  config.top_k = 4;
  EXPECT_FALSE(RunTreeHist({}, config, ExactEstimator(), &rng).ok());
}

TEST(TreeHistTest, FrontierNeverExceedsTopK) {
  // With top_k = 1 only one prefix survives each round; the result is the
  // single most frequent value (under exact estimation).
  std::vector<uint64_t> values;
  for (int i = 0; i < 100; ++i) values.push_back(0xAB12);
  for (int i = 0; i < 50; ++i) values.push_back(0xAB34);  // same 1st byte
  TreeHistConfig config;
  config.total_bits = 16;
  config.bits_per_round = 8;
  config.top_k = 1;
  Rng rng(6);
  auto result = RunTreeHist(values, config, ExactEstimator(), &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->heavy_hitters.size(), 1u);
  EXPECT_EQ(result->heavy_hitters[0], 0xAB12u);
}

}  // namespace
}  // namespace hist
}  // namespace shuffledp

// Integration tests: the public facade end to end, and agreement between
// the cryptographic protocol path and the fast statistical simulation.

#include <gtest/gtest.h>

#include "core/shuffle_dp.h"
#include "data/datasets.h"
#include "util/stats.h"

namespace shuffledp {
namespace core {
namespace {

TEST(EndToEndTest, FacadePlansAndCollects) {
  const uint64_t n = 2000, d = 16;
  PrivacyGoals goals;
  goals.eps_server = 1.0;
  goals.eps_users = 4.0;
  goals.eps_local = 8.0;
  goals.delta = 1e-6;

  ShuffleDpCollector::Options options;
  options.num_shufflers = 3;
  options.paillier_bits = 256;  // test-size key

  auto collector = ShuffleDpCollector::Create(goals, n, d, options);
  ASSERT_TRUE(collector.ok()) << collector.status().ToString();

  // Skewed synthetic data.
  auto ds = data::MakeZipfDataset("t", n, d, 1.2, 99);
  crypto::SecureRandom rng(uint64_t{1});
  auto result = (*collector)->Collect(ds.values, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->estimates.size(), d);

  auto truth = ds.Frequencies();
  // Head values should be estimated within coarse tolerance at n = 2000.
  EXPECT_NEAR(result->estimates[0], truth[0], 0.25);
  EXPECT_GT(result->estimates[0], result->estimates[d - 1]);
}

TEST(EndToEndTest, ProtocolAndSimulationAgreeInDistribution) {
  // Run the crypto path a few times and the fast simulation many times;
  // their means and spreads for the head value must agree.
  const uint64_t n = 1200, d = 8;
  PrivacyGoals goals;
  goals.eps_server = 1.5;
  goals.eps_users = 5.0;
  goals.eps_local = 8.0;
  goals.delta = 1e-6;
  ShuffleDpCollector::Options options;
  options.num_shufflers = 2;
  options.paillier_bits = 256;

  auto collector = ShuffleDpCollector::Create(goals, n, d, options);
  ASSERT_TRUE(collector.ok());

  auto ds = data::MakeZipfDataset("t", n, d, 1.0, 7);
  auto counts = ds.ValueCounts();
  double truth0 = static_cast<double>(counts[0]) / n;

  crypto::SecureRandom srng(uint64_t{2});
  RunningStat proto;
  for (int t = 0; t < 5; ++t) {
    auto result = (*collector)->Collect(ds.values, &srng);
    ASSERT_TRUE(result.ok());
    proto.Add(result->estimates[0]);
  }

  Rng rng(3);
  RunningStat sim;
  for (int t = 0; t < 200; ++t) {
    auto est = (*collector)->SimulateCollect(counts, n, &rng);
    ASSERT_TRUE(est.ok());
    sim.Add((*est)[0]);
  }

  // Both unbiased around the truth.
  EXPECT_NEAR(sim.mean(), truth0, 6 * sim.stderr_mean());
  EXPECT_NEAR(proto.mean(), truth0, 5 * sim.stddev());
}

TEST(EndToEndTest, PlanExposedThroughFacade) {
  PrivacyGoals goals;
  auto collector = ShuffleDpCollector::Create(goals, 602325, 915,
                                              ShuffleDpCollector::Options{});
  ASSERT_TRUE(collector.ok());
  const PeosPlan& plan = (*collector)->plan();
  EXPECT_GT(plan.n_r, 0u);
  EXPECT_EQ((*collector)->oracle().domain_size(), 915u);
}

TEST(EndToEndTest, SimulateValidatesDomain) {
  PrivacyGoals goals;
  auto collector = ShuffleDpCollector::Create(goals, 10000, 16,
                                              ShuffleDpCollector::Options{});
  ASSERT_TRUE(collector.ok());
  Rng rng(5);
  std::vector<uint64_t> wrong_domain(8, 0);
  EXPECT_FALSE((*collector)->SimulateCollect(wrong_domain, 100, &rng).ok());
}

}  // namespace
}  // namespace core
}  // namespace shuffledp

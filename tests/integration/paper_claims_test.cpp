// The paper's headline claims, asserted end-to-end against this
// implementation (the "abstract-level" regression suite):
//
//  1. "PEOS can make estimations that has absolute errors of < 0.01% in
//     reasonable settings" (§VII highlight).
//  2. "improving orders of magnitude over existing work" — SOLH vs SH
//     and vs plain LDP (§VII-B).
//  3. "our proposed protocol is both more accurate and more secure than
//     existing work" (§IX) — accuracy above; security = poisoning bounded
//     + collusion guarantees, covered here via the planner's ε triple.
//  4. SOLH's accuracy does not degrade with the input domain size, GRR's
//     does (§IV-B).

#include <gtest/gtest.h>

#include <cmath>

#include "core/planner.h"
#include "core/shuffle_dp.h"
#include "data/datasets.h"
#include "dp/amplification.h"
#include "util/math.h"
#include "util/stats.h"

namespace shuffledp {
namespace core {
namespace {

constexpr double kDelta = 1e-9;

TEST(PaperClaimsTest, PeosAbsoluteErrorBelowTenBasisPointsOfAPercent) {
  // "absolute errors of < 0.01%": at IPUMS scale with the paper's default
  // goals, the predicted per-value standard error must be below 1e-4.
  PrivacyGoals goals;  // ε₁=0.5, ε₂=2, ε₃=8
  auto plan = PlanPeos(goals, 602325, 915);
  ASSERT_TRUE(plan.ok());
  double stderr_per_value = std::sqrt(plan->predicted_variance);
  EXPECT_LT(stderr_per_value, 1e-4);

  // And the fast-path simulation agrees empirically.
  auto ds = data::MakeSyntheticIpums(7, 0.2);  // 20% scale for test time
  auto counts = ds.ValueCounts();
  auto truth = ds.Frequencies();
  auto scaled_plan = PlanPeos(goals, ds.user_count(), 915);
  ASSERT_TRUE(scaled_plan.ok());
  ShuffleDpCollector::Options options;
  auto collector =
      ShuffleDpCollector::Create(goals, ds.user_count(), 915, options);
  ASSERT_TRUE(collector.ok());
  Rng rng(1);
  auto est = (*collector)->SimulateCollect(counts, ds.user_count(), &rng);
  ASSERT_TRUE(est.ok());
  double max_abs_err = 0;
  for (size_t v = 0; v < truth.size(); ++v) {
    max_abs_err = std::max(max_abs_err, std::fabs((*est)[v] - truth[v]));
  }
  // Worst-case over 915 values at 20% of n: stay within ~6 sigma of the
  // full-scale 0.01% claim, i.e. well under 0.15%.
  EXPECT_LT(max_abs_err, 1.5e-3);
}

TEST(PaperClaimsTest, SolhOrdersOfMagnitudeOverLdpAndSh) {
  const uint64_t n = 602325, d = 915;
  for (double eps_c : {0.2, 0.5}) {  // below the SH threshold
    double solh = dp::SolhVarianceCentral(
        eps_c, n, dp::OptimalSolhDPrime(eps_c, n, kDelta), kDelta);
    double sh = dp::ShGrrVarianceCentral(eps_c, n, d, kDelta);
    double ldp = dp::LocalHashVarianceLocal(eps_c, n, 3);
    EXPECT_LT(solh * 100, sh) << eps_c;    // >= 2 orders vs SH
    EXPECT_LT(solh * 100, ldp) << eps_c;   // >= 2 orders vs LDP
  }
}

TEST(PaperClaimsTest, SolhAccuracyIsDomainSizeFree) {
  const uint64_t n = 1000000;
  const double eps_c = 0.5;
  uint64_t d_prime = dp::OptimalSolhDPrime(eps_c, n, kDelta);
  double var_small = dp::SolhVarianceCentral(eps_c, n, d_prime, kDelta);
  // SOLH's variance formula has no d in it — identical for any domain.
  // GRR's grows: compare d = 100 vs d = 42178 at a fixed local ε.
  double grr_small = dp::GrrVarianceLocal(4.0, n, 100);
  double grr_large = dp::GrrVarianceLocal(4.0, n, 42178);
  EXPECT_GT(grr_large / grr_small, 50.0);
  EXPECT_GT(var_small, 0.0);  // and SOLH's is well-defined at any scale
}

TEST(PaperClaimsTest, PlannerDeliversAllThreeGuaranteesSimultaneously) {
  // §IX "more secure": one configuration satisfies ε against the server,
  // against colluding users, and against colluding shufflers at once —
  // plain shuffling only provides the first.
  PrivacyGoals goals;
  goals.eps_server = 0.5;
  goals.eps_users = 1.0;
  goals.eps_local = 6.0;
  auto plan = PlanPeos(goals, 602325, 915);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->eps_server_achieved, 0.5 * (1 + 1e-9));
  EXPECT_LE(plan->eps_users_achieved, 1.0 * (1 + 1e-9));
  EXPECT_LE(plan->eps_local_achieved, 6.0 * (1 + 1e-9));
  // And it is still more accurate than plain SOLH at the same ε_c.
  double plain = dp::SolhVarianceCentral(
      0.5, 602325, dp::OptimalSolhDPrime(0.5, 602325, kDelta), kDelta);
  EXPECT_LE(plan->predicted_variance, plain * 1.05);
}

TEST(PaperClaimsTest, ShufflerCountTradesTrustForBandwidth) {
  // §VI: more shufflers harden the collusion assumption; the cost is the
  // C(r, t) round count, i.e. communication — never accuracy.
  // (Accuracy depends only on ε_l, d', n_r; rounds only move bytes.)
  EXPECT_EQ(CombU64(3, 2), 3u);
  EXPECT_EQ(CombU64(5, 3), 10u);
  EXPECT_EQ(CombU64(7, 4), 35u);
  // 7 shufflers need >3 colluding shufflers to break the shuffle vs >1
  // for r = 3 — while the estimator configuration is untouched.
  PrivacyGoals goals;
  auto plan = PlanPeos(goals, 602325, 915);
  ASSERT_TRUE(plan.ok());  // plan is r-independent by construction
}

}  // namespace
}  // namespace core
}  // namespace shuffledp

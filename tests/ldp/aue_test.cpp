#include "ldp/aue.h"

#include <gtest/gtest.h>

#include "dp/amplification.h"
#include "util/stats.h"

namespace shuffledp {
namespace ldp {
namespace {

constexpr double kDelta = 1e-9;

TEST(AueTest, GammaMatchesFormula) {
  const uint64_t n = 602325;
  const double eps_c = 0.5;
  Aue aue(eps_c, n, 915, kDelta);
  EXPECT_NEAR(aue.gamma(), dp::AueGamma(eps_c, n, kDelta), 1e-15);
  EXPECT_GT(aue.gamma(), 0.0);
  EXPECT_LT(aue.gamma(), 1.0);
}

TEST(AueTest, TrueBitAlwaysPresent) {
  Rng rng(1);
  Aue aue(0.5, 100000, 16, kDelta);
  for (int i = 0; i < 200; ++i) {
    auto counts = aue.Encode(5, &rng);
    EXPECT_GE(counts[5], 1);  // the one-hot bit is never perturbed
  }
}

TEST(AueTest, IncrementRateMatchesGamma) {
  Rng rng(2);
  const uint64_t n = 1000;  // small n → large γ, easy to measure
  Aue aue(0.5, n, 32, kDelta);
  const int kTrials = 20000;
  int increments = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto counts = aue.Encode(0, &rng);
    increments += counts[7];  // a non-true location
  }
  double rate = increments / static_cast<double>(kTrials);
  EXPECT_NEAR(rate, aue.gamma(), 0.02 * std::max(1.0, aue.gamma()));
}

TEST(AueTest, EstimationUnbiased) {
  Rng rng(3);
  const uint64_t d = 8, n = 5000;
  Aue aue(1.0, n, d, kDelta);
  RunningStat est0, est3;
  for (int t = 0; t < 60; ++t) {
    std::vector<uint64_t> counts(d, 0);
    for (uint64_t i = 0; i < n; ++i) {
      auto rep = aue.Encode(0, &rng);  // all users hold 0
      ASSERT_TRUE(aue.Accumulate(rep, &counts).ok());
    }
    auto f = aue.Estimate(counts, n);
    est0.Add(f[0]);
    est3.Add(f[3]);
  }
  EXPECT_NEAR(est0.mean(), 1.0, 6 * est0.stderr_mean());
  EXPECT_NEAR(est3.mean(), 0.0, 6 * est3.stderr_mean());
}

TEST(AueTest, EmpiricalVarianceMatchesGammaFormula) {
  Rng rng(4);
  const uint64_t d = 4, n = 5000;
  const double eps_c = 1.0;
  Aue aue(eps_c, n, d, kDelta);
  RunningStat est;
  for (int t = 0; t < 400; ++t) {
    std::vector<uint64_t> counts(d, 0);
    for (uint64_t i = 0; i < n; ++i) {
      auto rep = aue.Encode(0, &rng);
      ASSERT_TRUE(aue.Accumulate(rep, &counts).ok());
    }
    est.Add(aue.Estimate(counts, n)[2]);
  }
  double predicted = dp::AueVarianceCentral(eps_c, n, kDelta);
  EXPECT_NEAR(est.variance(), predicted, 0.2 * predicted);
}

TEST(AueTest, AccumulateValidatesLengths) {
  Aue aue(1.0, 1000, 4, kDelta);
  std::vector<uint64_t> counts(4, 0);
  EXPECT_FALSE(aue.Accumulate(std::vector<uint8_t>(3, 0), &counts).ok());
}

TEST(AueTest, ReportIsLinearInD) {
  Aue small(1.0, 1000, 100, kDelta);
  Aue big(1.0, 1000, 42178, kDelta);
  EXPECT_GT(big.ReportBytes(), 100 * small.ReportBytes() / 2);
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

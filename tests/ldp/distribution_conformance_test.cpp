// Statistical conformance suite: chi-square goodness-of-fit tests pin the
// *whole report distribution* of every randomizer to its theoretical law
// (not just the two support moments oracle_conformance_test checks), and
// a two-sample KS test pins FastSimulateSupports to the per-user
// pipeline's empirical support CDF. These are the distribution-level
// guarantees that make fast-path equivalences (fast_sim, streaming
// collection) trustworthy.
//
// Every test uses a fixed seed, so results are reproducible; thresholds
// are p > 1e-3 on exact laws (conditioning tricks remove any dependence
// on hash-family quality, so the null hypothesis holds by construction).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ldp/fast_sim.h"
#include "ldp/grr.h"
#include "ldp/hadamard.h"
#include "ldp/local_hash.h"
#include "ldp/unary.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"

namespace shuffledp {
namespace ldp {
namespace {

constexpr double kPThreshold = 1e-3;

TEST(DistributionConformance, GrrReportLawMatchesTheory) {
  // GRR's output law is exact: the true value with probability p, every
  // other value with probability q.
  const uint64_t d = 16;
  const uint64_t v0 = 3;
  Grr oracle(1.5, d);
  Rng rng(101);
  const int kTrials = 120000;
  std::vector<uint64_t> observed(d, 0);
  for (int i = 0; i < kTrials; ++i) {
    ++observed[oracle.Encode(v0, &rng).value];
  }
  std::vector<double> expected(d, oracle.q());
  expected[v0] = oracle.p();
  double pval = ChiSquareGofPValue(observed, expected);
  EXPECT_GT(pval, kPThreshold) << "GRR report distribution off";
}

TEST(DistributionConformance, GrrFakeReportsAreUniform) {
  const uint64_t d = 11;
  Grr oracle(2.0, d);
  Rng rng(102);
  const int kTrials = 110000;
  std::vector<uint64_t> observed(d, 0);
  for (int i = 0; i < kTrials; ++i) {
    ++observed[oracle.MakeFakeReport(&rng).value];
  }
  std::vector<double> expected(d, 1.0 / static_cast<double>(d));
  EXPECT_GT(ChiSquareGofPValue(observed, expected), kPThreshold);
}

TEST(DistributionConformance, SolhPerturbationLawMatchesTheory) {
  // Conditioning on the drawn seed makes the SOLH law exact regardless of
  // hash-family quality: the report equals H_seed(v) with probability p,
  // and conditioned on missing it the value is uniform over the d'−1
  // remaining cells (chi-square with d'−2 dof).
  const uint64_t d = 128, d_prime = 8;
  const uint64_t v0 = 17;
  LocalHash oracle(2.0, d, d_prime, "SOLH");
  Rng rng(103);
  const int kTrials = 160000;
  uint64_t hits = 0;
  std::vector<uint64_t> miss_rank(d_prime - 1, 0);
  for (int i = 0; i < kTrials; ++i) {
    LdpReport r = oracle.Encode(v0, &rng);
    uint32_t h = UniversalHash(v0, r.seed, static_cast<uint32_t>(d_prime));
    if (r.value == h) {
      ++hits;
    } else {
      ++miss_rank[r.value > h ? r.value - 1 : r.value];
    }
  }
  // Hit indicator ~ Bernoulli(p): 5σ z-test.
  const double p = oracle.p();
  double z = (static_cast<double>(hits) - kTrials * p) /
             std::sqrt(kTrials * p * (1 - p));
  EXPECT_LT(std::fabs(z), 5.0) << "SOLH keep-probability off";
  // Conditional misses uniform over d'−1 cells.
  std::vector<double> expected(d_prime - 1,
                               1.0 / static_cast<double>(d_prime - 1));
  EXPECT_GT(ChiSquareGofPValue(miss_rank, expected), kPThreshold)
      << "SOLH conditional miss distribution not uniform";
}

TEST(DistributionConformance, HadamardRowUniformAndBitLawMatchesTheory) {
  const uint64_t d = 20;
  const uint64_t v0 = 5;
  HadamardResponse oracle(1.0, d);
  const uint64_t dim = oracle.padded_dim();
  Rng rng(104);
  const int kTrials = 160000;
  std::vector<uint64_t> row_hist(dim, 0);
  uint64_t bit_kept = 0;
  for (int i = 0; i < kTrials; ++i) {
    LdpReport r = oracle.Encode(v0, &rng);
    ++row_hist[r.seed];
    uint32_t true_bit =
        HadamardBit(r.seed, static_cast<uint32_t>(v0 + 1));
    bit_kept += r.value == true_bit;
  }
  std::vector<double> expected(dim, 1.0 / static_cast<double>(dim));
  EXPECT_GT(ChiSquareGofPValue(row_hist, expected), kPThreshold)
      << "Hadamard row index not uniform";
  const double p = std::exp(1.0) / (std::exp(1.0) + 1.0);
  double z = (static_cast<double>(bit_kept) - kTrials * p) /
             std::sqrt(kTrials * p * (1 - p));
  EXPECT_LT(std::fabs(z), 5.0) << "Hadamard bit-keep probability off";
}

TEST(DistributionConformance, UnaryColumnLawMatchesTheory) {
  // Each bit of the unary encoding is an independent Bernoulli: p for the
  // held value's column, q elsewhere. The sum of squared per-column
  // z-scores is chi-square with d dof.
  for (auto semantics : {UnaryEncoding::Semantics::kReplacement,
                         UnaryEncoding::Semantics::kRemoval}) {
    const uint64_t d = 32;
    const uint64_t v0 = 9;
    UnaryEncoding oracle(2.0, d, semantics);
    Rng rng(105);
    const int kTrials = 50000;
    std::vector<uint64_t> ones(d, 0);
    for (int i = 0; i < kTrials; ++i) {
      auto bits = oracle.Encode(v0, &rng);
      for (uint64_t c = 0; c < d; ++c) ones[c] += bits[c];
    }
    double stat = 0.0;
    for (uint64_t c = 0; c < d; ++c) {
      double prob = c == v0 ? oracle.p() : oracle.q();
      double mean = kTrials * prob;
      double var = kTrials * prob * (1 - prob);
      double diff = static_cast<double>(ones[c]) - mean;
      stat += diff * diff / var;
    }
    EXPECT_GT(ChiSquarePValue(stat, static_cast<double>(d)), kPThreshold)
        << oracle.Name() << " column law off";
  }
}

// Draws `trials` support counts for probe value 0 from (a) the fast
// Binomial simulator and (b) the exact per-user pipeline, and KS-tests
// the two samples.
void KsFastSimVsPerUser(const ScalarFrequencyOracle& oracle,
                        const std::vector<uint64_t>& value_counts,
                        uint64_t n_fake, uint64_t seed) {
  const uint64_t probe = 0;
  const int kTrialCount = 300;
  Rng rng(seed);
  std::vector<double> fast_sample, exact_sample;
  uint64_t n = 0;
  for (uint64_t c : value_counts) n += c;
  for (int t = 0; t < kTrialCount; ++t) {
    // Fast path: one Binomial-composed draw.
    auto supports =
        FastSimulateSupportsAt(oracle.support_probs(), value_counts, n,
                               n_fake, {probe}, &rng);
    fast_sample.push_back(static_cast<double>(supports[0]));
    // Exact path: encode every user and fake, count supports.
    uint64_t count = 0;
    for (uint64_t v = 0; v < value_counts.size(); ++v) {
      for (uint64_t u = 0; u < value_counts[v]; ++u) {
        count += oracle.Supports(oracle.Encode(v, &rng), probe);
      }
    }
    for (uint64_t f = 0; f < n_fake; ++f) {
      count += oracle.Supports(oracle.MakeFakeReport(&rng), probe);
    }
    exact_sample.push_back(static_cast<double>(count));
  }
  double d_stat = TwoSampleKsStat(fast_sample, exact_sample);
  double pval =
      TwoSampleKsPValue(d_stat, fast_sample.size(), exact_sample.size());
  EXPECT_GT(pval, kPThreshold)
      << oracle.Name() << ": KS D=" << d_stat
      << " between FastSimulateSupports and the per-user pipeline";
}

TEST(DistributionConformance, FastSimMatchesPerUserPipelineGrr) {
  Grr oracle(2.0, 8);
  KsFastSimVsPerUser(oracle, {200, 100, 50, 50, 0, 0, 0, 0}, 0, 106);
}

TEST(DistributionConformance, FastSimMatchesPerUserPipelineGrrWithFakes) {
  Grr oracle(2.0, 8);
  KsFastSimVsPerUser(oracle, {200, 100, 50, 50, 0, 0, 0, 0}, 120, 107);
}

TEST(DistributionConformance, FastSimMatchesPerUserPipelineSolh) {
  LocalHash oracle(2.0, 64, 8, "SOLH");
  std::vector<uint64_t> counts(64, 0);
  counts[0] = 150;
  counts[1] = 100;
  counts[7] = 150;
  KsFastSimVsPerUser(oracle, counts, 80, 108);
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

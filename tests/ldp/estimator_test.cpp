#include "ldp/estimator.h"

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "util/stats.h"

namespace shuffledp {
namespace ldp {
namespace {

TEST(SupportCountsTest, SerialAndParallelAgree) {
  const uint64_t d = 30, n = 20000;
  Grr grr(1.0, d);
  Rng rng(1);
  std::vector<LdpReport> reports(n);
  for (uint64_t i = 0; i < n; ++i) reports[i] = grr.Encode(i % d, &rng);

  auto serial = SupportCountsFullDomain(grr, reports, nullptr);
  ThreadPool pool(4);
  auto parallel = SupportCountsFullDomain(grr, reports, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(SupportCountsTest, SubsetMatchesFullDomain) {
  const uint64_t d = 10, n = 2000;
  Grr grr(1.0, d);
  Rng rng(2);
  std::vector<LdpReport> reports(n);
  for (uint64_t i = 0; i < n; ++i) reports[i] = grr.Encode(i % d, &rng);
  auto full = SupportCountsFullDomain(grr, reports);
  auto subset = SupportCounts(grr, reports, {3, 7});
  EXPECT_EQ(subset[0], full[3]);
  EXPECT_EQ(subset[1], full[7]);
}

TEST(SupportCountsTest, GrrSupportsSumToN) {
  // For GRR each report supports exactly one value.
  const uint64_t d = 10, n = 5000;
  Grr grr(1.0, d);
  Rng rng(3);
  std::vector<LdpReport> reports(n);
  for (uint64_t i = 0; i < n; ++i) reports[i] = grr.Encode(i % d, &rng);
  auto counts = SupportCountsFullDomain(grr, reports);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, n);
}

// With fake reports, the generalized calibration stays unbiased for both
// GRR (q_f = 1/d != q) and SOLH (q_f = q = 1/d').
TEST(CalibrateTest, UnbiasedWithFakesGrr) {
  const uint64_t d = 6, n = 10000, n_fake = 4000;
  Grr grr(1.5, d);
  Rng rng(4);
  RunningStat est0;
  for (int t = 0; t < 80; ++t) {
    std::vector<LdpReport> reports;
    reports.reserve(n + n_fake);
    for (uint64_t i = 0; i < n; ++i) {
      reports.push_back(grr.Encode(i < n / 2 ? 0 : 1 + (i % (d - 1)), &rng));
    }
    for (uint64_t i = 0; i < n_fake; ++i) {
      reports.push_back(grr.MakeFakeReport(&rng));
    }
    auto supports = SupportCounts(grr, reports, {0});
    est0.Add(CalibrateEstimates(grr, supports, n, n_fake)[0]);
  }
  EXPECT_NEAR(est0.mean(), 0.5, 6 * est0.stderr_mean());
}

TEST(CalibrateTest, UnbiasedWithFakesSolh) {
  const uint64_t d = 100, d_prime = 8, n = 10000, n_fake = 4000;
  LocalHash lh(2.0, d, d_prime);
  Rng rng(5);
  RunningStat est0;
  for (int t = 0; t < 80; ++t) {
    std::vector<LdpReport> reports;
    reports.reserve(n + n_fake);
    for (uint64_t i = 0; i < n; ++i) {
      reports.push_back(lh.Encode(i < n / 2 ? 0 : 1 + (i % (d - 1)), &rng));
    }
    for (uint64_t i = 0; i < n_fake; ++i) {
      reports.push_back(lh.MakeFakeReport(&rng));
    }
    auto supports = SupportCounts(lh, reports, {0});
    est0.Add(CalibrateEstimates(lh, supports, n, n_fake)[0]);
  }
  EXPECT_NEAR(est0.mean(), 0.5, 6 * est0.stderr_mean());
}

// For GRR the paper's two-step Eq. (2)+(6) estimator coincides exactly
// with the generalized single-step calibration.
TEST(CalibrateTest, Eq6MatchesGeneralizedForGrr) {
  const uint64_t d = 6, n = 1000, n_fake = 300;
  Grr grr(1.0, d);
  Rng rng(6);
  std::vector<LdpReport> reports;
  for (uint64_t i = 0; i < n; ++i) reports.push_back(grr.Encode(i % d, &rng));
  for (uint64_t i = 0; i < n_fake; ++i) {
    reports.push_back(grr.MakeFakeReport(&rng));
  }
  auto supports = SupportCountsFullDomain(grr, reports);
  auto general = CalibrateEstimates(grr, supports, n, n_fake);
  auto eq6 = CalibrateEstimatesEq6(grr, supports, n, n_fake);
  for (uint64_t v = 0; v < d; ++v) {
    EXPECT_NEAR(general[v], eq6[v], 1e-9) << v;
  }
}

TEST(CalibrateTest, NoFakesReducesToClassicEquation) {
  const uint64_t d = 4, n = 100;
  Grr grr(1.0, d);
  std::vector<uint64_t> supports = {40, 30, 20, 10};
  auto est = CalibrateEstimates(grr, supports, n, 0);
  double p = grr.p(), q = grr.q();
  for (uint64_t v = 0; v < d; ++v) {
    double expected =
        (static_cast<double>(supports[v]) / n - q) / (p - q);
    EXPECT_NEAR(est[v], expected, 1e-12);
  }
}

TEST(CalibrateTest, EstimatesSumToApproximatelyOne) {
  // GRR supports partition the reports, so calibrated estimates sum to 1.
  const uint64_t d = 12, n = 30000;
  Grr grr(2.0, d);
  Rng rng(7);
  std::vector<LdpReport> reports(n);
  for (uint64_t i = 0; i < n; ++i) reports[i] = grr.Encode(i % d, &rng);
  auto est = EstimateFrequencies(grr, reports, n);
  double sum = 0;
  for (double f : est) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

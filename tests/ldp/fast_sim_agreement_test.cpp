// Validates the fast aggregate simulation (DESIGN.md §5) against the exact
// per-user pipeline: identical estimator mean and variance across a
// parameter sweep.

#include "ldp/fast_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ldp/estimator.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "util/stats.h"

namespace shuffledp {
namespace ldp {
namespace {

struct AgreementCase {
  double eps;
  uint64_t d;
  uint64_t d_prime;  // 0 => GRR
  uint64_t n_fake;
};

class FastSimAgreement : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(FastSimAgreement, MeanAndVarianceMatchExactPipeline) {
  const auto param = GetParam();
  const uint64_t n = 4000;
  std::unique_ptr<ScalarFrequencyOracle> oracle;
  if (param.d_prime == 0) {
    oracle = std::make_unique<Grr>(param.eps, param.d);
  } else {
    oracle = std::make_unique<LocalHash>(param.eps, param.d, param.d_prime);
  }
  // Skewed data: value 0 at 40%, rest spread.
  std::vector<uint64_t> values(n);
  std::vector<uint64_t> value_counts(param.d, 0);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = (i < 2 * n / 5) ? 0 : 1 + (i % (param.d - 1));
    ++value_counts[values[i]];
  }

  Rng rng_exact(101), rng_fast(202);
  RunningStat exact_est, fast_est;
  const int kTrials = 120;
  for (int t = 0; t < kTrials; ++t) {
    // Exact pipeline.
    std::vector<LdpReport> reports;
    reports.reserve(n + param.n_fake);
    for (uint64_t i = 0; i < n; ++i) {
      reports.push_back(oracle->Encode(values[i], &rng_exact));
    }
    for (uint64_t i = 0; i < param.n_fake; ++i) {
      reports.push_back(oracle->MakeFakeReport(&rng_exact));
    }
    auto supports = SupportCounts(*oracle, reports, {0});
    exact_est.Add(CalibrateEstimates(*oracle, supports, n, param.n_fake)[0]);

    // Fast simulation.
    auto fast = FastSimulateEstimateAt(*oracle, value_counts, n,
                                       param.n_fake, {0}, &rng_fast);
    fast_est.Add(fast[0]);
  }

  // Same mean (both unbiased at 0.4)...
  EXPECT_NEAR(exact_est.mean(), 0.4, 6 * exact_est.stderr_mean());
  EXPECT_NEAR(fast_est.mean(), 0.4, 6 * fast_est.stderr_mean());
  // ...and matching variance within sampling tolerance (variance of the
  // sample variance over kTrials is ~ 2 var²/kTrials → sd ~ 13% of var).
  double ratio = fast_est.variance() / exact_est.variance();
  EXPECT_GT(ratio, 0.55) << "fast path underestimates variance";
  EXPECT_LT(ratio, 1.8) << "fast path overestimates variance";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FastSimAgreement,
    ::testing::Values(AgreementCase{1.0, 8, 0, 0},      // GRR, no fakes
                      AgreementCase{1.0, 8, 0, 2000},   // GRR + fakes
                      AgreementCase{2.0, 64, 0, 0},     // GRR larger d
                      AgreementCase{2.0, 64, 8, 0},     // LH
                      AgreementCase{2.0, 64, 8, 2000},  // LH + fakes
                      AgreementCase{0.5, 16, 4, 0}));   // low-eps LH

TEST(FastSimTest, SupportsAreWithinRange) {
  Rng rng(1);
  SupportProbs probs{0.7, 0.1, 0.25};
  std::vector<uint64_t> counts = {100, 200, 700};
  auto supports = FastSimulateSupports(probs, counts, 1000, 500, &rng);
  ASSERT_EQ(supports.size(), 3u);
  for (uint64_t s : supports) EXPECT_LE(s, 1500u);
}

TEST(FastSimTest, UnaryColumnsMatchMoments) {
  Rng rng(2);
  const uint64_t n = 100000;
  const double p = 0.8, q = 0.2;
  std::vector<uint64_t> counts = {30000, 70000};
  RunningStat col0;
  for (int t = 0; t < 300; ++t) {
    auto cols = FastSimulateUnaryColumns(p, q, counts, n, {0}, &rng);
    col0.Add(static_cast<double>(cols[0]));
  }
  double mean = 30000 * p + 70000 * q;
  EXPECT_NEAR(col0.mean(), mean, 0.01 * mean);
}

TEST(FastSimTest, AueColumnsNeverBelowTrueCount) {
  Rng rng(3);
  std::vector<uint64_t> counts = {500, 1500};
  for (int t = 0; t < 50; ++t) {
    auto cols = FastSimulateAueColumns(0.05, counts, 2000, {0, 1}, &rng);
    EXPECT_GE(cols[0], 500u);
    EXPECT_GE(cols[1], 1500u);
  }
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

#include "ldp/grr.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ldp/estimator.h"
#include "util/stats.h"

namespace shuffledp {
namespace ldp {
namespace {

TEST(GrrTest, ProbabilitiesSatisfyLdpRatio) {
  for (double eps : {0.5, 1.0, 4.0}) {
    for (uint64_t d : {2ull, 10ull, 915ull}) {
      Grr grr(eps, d);
      EXPECT_NEAR(grr.p() / grr.q(), std::exp(eps), 1e-9) << eps << " " << d;
      // p + (d-1) q == 1.
      EXPECT_NEAR(grr.p() + (d - 1) * grr.q(), 1.0, 1e-9);
    }
  }
}

TEST(GrrTest, EncodeKeepsValueWithProbabilityP) {
  Rng rng(1);
  Grr grr(1.0, 10);
  const int kTrials = 100000;
  int kept = 0;
  for (int i = 0; i < kTrials; ++i) kept += (grr.Encode(3, &rng).value == 3);
  double sigma = std::sqrt(grr.p() * (1 - grr.p()) / kTrials);
  EXPECT_NEAR(static_cast<double>(kept) / kTrials, grr.p(), 6 * sigma);
}

TEST(GrrTest, EncodeOtherValuesUniform) {
  Rng rng(2);
  Grr grr(1.0, 5);
  const int kTrials = 200000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < kTrials; ++i) ++counts[grr.Encode(0, &rng).value];
  // Values 1..4 should each appear with probability q.
  for (int v = 1; v < 5; ++v) {
    double rate = static_cast<double>(counts[v]) / kTrials;
    double sigma = std::sqrt(grr.q() * (1 - grr.q()) / kTrials);
    EXPECT_NEAR(rate, grr.q(), 6 * sigma) << v;
  }
}

TEST(GrrTest, ReportsAlwaysInDomain) {
  Rng rng(3);
  Grr grr(0.5, 7);
  for (int i = 0; i < 1000; ++i) {
    auto r = grr.Encode(static_cast<uint64_t>(i % 7), &rng);
    EXPECT_LT(r.value, 7u);
    EXPECT_TRUE(grr.ValidateReport(r).ok());
  }
}

TEST(GrrTest, ValidateRejectsOutOfRange) {
  Grr grr(1.0, 7);
  LdpReport bad;
  bad.value = 7;
  EXPECT_EQ(grr.ValidateReport(bad).code(), StatusCode::kOutOfRange);
}

TEST(GrrTest, FakeReportsAreUniform) {
  Rng rng(4);
  Grr grr(1.0, 4);
  const int kTrials = 80000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kTrials; ++i) ++counts[grr.MakeFakeReport(&rng).value];
  for (int c : counts) EXPECT_NEAR(c, kTrials / 4.0, 6 * std::sqrt(20000.0));
}

TEST(GrrTest, SupportProbsTriple) {
  Grr grr(2.0, 10);
  auto sp = grr.support_probs();
  EXPECT_DOUBLE_EQ(sp.p_true, grr.p());
  EXPECT_DOUBLE_EQ(sp.q_other, grr.q());
  EXPECT_DOUBLE_EQ(sp.q_fake, 0.1);
}

TEST(GrrTest, PackUnpackRoundTrip) {
  LdpReport r{0xDEADBEEFu, 0x1234u};
  EXPECT_EQ(UnpackReport(PackReport(r)), r);
}

// End-to-end estimation: encode a skewed dataset, estimate, check
// unbiasedness and variance against Wang et al.'s formula.
TEST(GrrTest, EstimationUnbiasedWithPredictedVariance) {
  const uint64_t d = 8, n = 20000;
  const double eps = 1.0;
  Grr grr(eps, d);
  // Dataset: value 0 has frequency 0.5, rest uniform.
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = (i < n / 2) ? 0 : 1 + (i % (d - 1));
  }
  Rng rng(5);
  RunningStat est0;
  const int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<LdpReport> reports(n);
    for (uint64_t i = 0; i < n; ++i) reports[i] = grr.Encode(values[i], &rng);
    auto f = EstimateFrequencies(grr, reports, n);
    ASSERT_EQ(f.size(), d);
    est0.Add(f[0]);
  }
  EXPECT_NEAR(est0.mean(), 0.5, 6 * est0.stderr_mean());
  // Variance of f~_0 at f=0.5: q(1-q)/(n(p-q)^2) + f(1-p-q)/(n(p-q)).
  double p = grr.p(), q = grr.q();
  double predicted = q * (1 - q) / (n * (p - q) * (p - q)) +
                     0.5 * (1 - p - q) / (n * (p - q));
  EXPECT_NEAR(est0.variance(), predicted, 0.45 * predicted);
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

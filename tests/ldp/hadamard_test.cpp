#include "ldp/hadamard.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ldp/estimator.h"
#include "util/stats.h"

namespace shuffledp {
namespace ldp {
namespace {

TEST(HadamardBitTest, MatchesSylvesterConstruction) {
  // H[0, c] = +1 (bit 0) for all c; H[r, 0] likewise.
  for (uint32_t c = 0; c < 16; ++c) EXPECT_EQ(HadamardBit(0, c), 0u);
  for (uint32_t r = 0; r < 16; ++r) EXPECT_EQ(HadamardBit(r, 0), 0u);
  // 2x2 block: H[1,1] = −1.
  EXPECT_EQ(HadamardBit(1, 1), 1u);
  // Row orthogonality: rows 1 and 2 of H_4 agree on exactly half of cols.
  int agree = 0;
  for (uint32_t c = 0; c < 4; ++c) {
    agree += (HadamardBit(1, c) == HadamardBit(2, c));
  }
  EXPECT_EQ(agree, 2);
}

TEST(HadamardResponseTest, PadsToPowerOfTwoAboveD) {
  HadamardResponse hr(1.0, 915);
  EXPECT_EQ(hr.padded_dim(), 1024u);
  HadamardResponse hr2(1.0, 1023);
  EXPECT_EQ(hr2.padded_dim(), 1024u);
  HadamardResponse hr3(1.0, 1024);  // needs column 1025 → 2048
  EXPECT_EQ(hr3.padded_dim(), 2048u);
}

TEST(HadamardResponseTest, ReportIsBinary) {
  Rng rng(1);
  HadamardResponse hr(1.0, 100);
  for (int i = 0; i < 500; ++i) {
    auto r = hr.Encode(static_cast<uint64_t>(i % 100), &rng);
    EXPECT_LT(r.value, 2u);
    EXPECT_LT(r.seed, hr.padded_dim());
  }
}

TEST(HadamardResponseTest, SupportProbabilities) {
  Rng rng(2);
  HadamardResponse hr(1.5, 64);
  auto sp = hr.support_probs();
  EXPECT_NEAR(sp.p_true, std::exp(1.5) / (std::exp(1.5) + 1.0), 1e-12);
  EXPECT_DOUBLE_EQ(sp.q_other, 0.5);

  const int kTrials = 100000;
  int own = 0, other = 0;
  for (int i = 0; i < kTrials; ++i) {
    auto r = hr.Encode(5, &rng);
    own += hr.Supports(r, 5);
    other += hr.Supports(r, 17);
  }
  EXPECT_NEAR(own / static_cast<double>(kTrials), sp.p_true, 0.01);
  EXPECT_NEAR(other / static_cast<double>(kTrials), 0.5, 0.01);
}

TEST(FwhtTest, MatchesDirectTransformOnSmallInput) {
  // FWHT of a delta function is a row of H.
  std::vector<double> delta(8, 0.0);
  delta[3] = 1.0;
  Fwht(&delta);
  for (uint32_t c = 0; c < 8; ++c) {
    double expected = HadamardBit(3, c) ? -1.0 : 1.0;
    EXPECT_DOUBLE_EQ(delta[c], expected);
  }
}

TEST(FwhtTest, InvolutionUpToScaling) {
  std::vector<double> x = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<double> orig = x;
  Fwht(&x);
  Fwht(&x);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], 8.0 * orig[i], 1e-9);
  }
}

TEST(HadamardResponseTest, FwhtEstimateMatchesGenericPath) {
  const uint64_t d = 20, n = 30000;
  HadamardResponse hr(2.0, d);
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) values[i] = i % d;
  Rng rng(3);
  std::vector<LdpReport> reports(n);
  for (uint64_t i = 0; i < n; ++i) reports[i] = hr.Encode(values[i], &rng);

  auto generic = EstimateFrequencies(hr, reports, n);
  auto fwht = hr.EstimateFwht(reports, n);
  ASSERT_EQ(generic.size(), fwht.size());
  for (uint64_t v = 0; v < d; ++v) {
    EXPECT_NEAR(generic[v], fwht[v], 1e-9) << v;
  }
}

TEST(HadamardResponseTest, EstimationUnbiased) {
  const uint64_t d = 16, n = 20000;
  HadamardResponse hr(1.0, d);
  std::vector<uint64_t> values(n, 0);  // everyone holds value 0
  Rng rng(4);
  RunningStat est;
  for (int t = 0; t < 40; ++t) {
    std::vector<LdpReport> reports(n);
    for (uint64_t i = 0; i < n; ++i) reports[i] = hr.Encode(values[i], &rng);
    est.Add(hr.EstimateFwht(reports, n)[0]);
  }
  EXPECT_NEAR(est.mean(), 1.0, 6 * est.stderr_mean());
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

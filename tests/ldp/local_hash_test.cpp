#include "ldp/local_hash.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/amplification.h"
#include "ldp/estimator.h"
#include "util/stats.h"

namespace shuffledp {
namespace ldp {
namespace {

constexpr double kDelta = 1e-9;

TEST(LocalHashTest, ReportAlwaysInHashRange) {
  Rng rng(1);
  LocalHash lh(2.0, 1000, 16);
  for (int i = 0; i < 2000; ++i) {
    auto r = lh.Encode(static_cast<uint64_t>(i % 1000), &rng);
    EXPECT_LT(r.value, 16u);
  }
}

TEST(LocalHashTest, SupportsOwnValueWithProbabilityP) {
  Rng rng(2);
  LocalHash lh(2.0, 1000, 16);
  const int kTrials = 100000;
  int supported = 0;
  for (int i = 0; i < kTrials; ++i) {
    auto r = lh.Encode(123, &rng);
    supported += lh.Supports(r, 123);
  }
  double p = lh.support_probs().p_true;
  double sigma = std::sqrt(p * (1 - p) / kTrials);
  EXPECT_NEAR(static_cast<double>(supported) / kTrials, p, 6 * sigma);
}

TEST(LocalHashTest, SupportsOtherValueWithProbabilityOneOverDPrime) {
  Rng rng(3);
  const uint64_t d_prime = 8;
  LocalHash lh(2.0, 1000, d_prime);
  const int kTrials = 100000;
  int supported = 0;
  for (int i = 0; i < kTrials; ++i) {
    auto r = lh.Encode(123, &rng);
    supported += lh.Supports(r, 777);  // different value
  }
  double q = 1.0 / d_prime;
  double sigma = std::sqrt(q * (1 - q) / kTrials);
  EXPECT_NEAR(static_cast<double>(supported) / kTrials, q, 6 * sigma);
}

TEST(OlhFactoryTest, PicksExpEpsPlusOne) {
  auto olh = MakeOlh(std::log(3.0), 1000);  // e^ε = 3 → d' = 4
  EXPECT_EQ(olh->report_domain(), 4u);
  EXPECT_EQ(olh->Name(), "OLH");
}

TEST(OlhFactoryTest, ClampsToDomain) {
  auto olh = MakeOlh(5.0, 10);  // e^5+1 ~ 149 > d
  EXPECT_LE(olh->report_domain(), 10u);
}

TEST(SolhFactoryTest, UsesOptimalDPrimeAndAmplifiedEps) {
  const uint64_t n = 602325, d = 915;
  const double eps_c = 0.5;
  auto solh = MakeSolh(eps_c, n, d, kDelta);
  ASSERT_TRUE(solh.ok());
  EXPECT_EQ((*solh)->report_domain(), dp::OptimalSolhDPrime(eps_c, n, kDelta));
  // Local ε must exceed the central target (amplification achieved).
  EXPECT_GT((*solh)->epsilon_local(), eps_c);
  // And the forward bound must give back ε_c.
  auto fwd = dp::AmplifySolh((*solh)->epsilon_local(), n,
                             (*solh)->report_domain(), kDelta);
  EXPECT_NEAR(fwd.eps_c, eps_c, 1e-6);
}

TEST(SolhFactoryTest, RejectsBadArguments) {
  EXPECT_FALSE(MakeSolh(0.0, 1000, 10, kDelta).ok());
  EXPECT_FALSE(MakeSolh(0.5, 1, 10, kDelta).ok());
  EXPECT_FALSE(MakeSolhFixedDPrime(0.5, 1000, 10, 1, kDelta).ok());
}

TEST(SolhFactoryTest, FallsBackToLdpWhenNoAmplification) {
  // Tiny n: no amplification possible; ε_l = ε_c.
  auto solh = MakeSolh(0.5, 100, 10, kDelta);
  ASSERT_TRUE(solh.ok());
  EXPECT_DOUBLE_EQ((*solh)->epsilon_local(), 0.5);
}

TEST(PeosSolhFactoryTest, FakesGrowDPrimeAndLocalEps) {
  // §VI-C: with n_r fakes the optimal d' = ((b+n_r)/a + 2)/3 grows, and
  // the admissible local ε grows too (the blanket burden shifts to fakes).
  const uint64_t n = 602325, d = 915;
  const double eps_c = 0.5;
  auto plain = MakeSolh(eps_c, n, d, kDelta);
  auto peos = MakePeosSolh(eps_c, n, 100000, d, kDelta);
  ASSERT_TRUE(plain.ok() && peos.ok());
  EXPECT_GE((*peos)->report_domain(), (*plain)->report_domain());
  EXPECT_GE((*peos)->epsilon_local(), (*plain)->epsilon_local());
}

TEST(PeosSolhFactoryTest, ZeroFakesIsPlainSolh) {
  const uint64_t n = 602325, d = 915;
  auto a = MakeSolh(0.5, n, d, kDelta);
  auto b = MakePeosSolh(0.5, n, 0, d, kDelta);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->report_domain(), (*b)->report_domain());
  EXPECT_DOUBLE_EQ((*a)->epsilon_local(), (*b)->epsilon_local());
}

// Estimation is unbiased and matches the Eq. (4) variance.
TEST(LocalHashTest, EstimationUnbiasedWithPredictedVariance) {
  const uint64_t d = 50, d_prime = 8, n = 20000;
  const double eps = 2.0;
  LocalHash lh(eps, d, d_prime);
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) values[i] = i % d;  // uniform data
  Rng rng(7);
  RunningStat est0;
  const int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<LdpReport> reports(n);
    for (uint64_t i = 0; i < n; ++i) reports[i] = lh.Encode(values[i], &rng);
    auto supports = SupportCounts(lh, reports, {0}, nullptr);
    auto f = CalibrateEstimates(lh, supports, n, 0);
    est0.Add(f[0]);
  }
  EXPECT_NEAR(est0.mean(), 1.0 / d, 6 * est0.stderr_mean());
  double predicted = dp::LocalHashVarianceLocal(eps, n, d_prime);
  EXPECT_NEAR(est0.variance(), predicted, 0.5 * predicted);
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

// Conformance suite: every ScalarFrequencyOracle must satisfy the same
// contract — report ranges, support-probability calibration, uniform
// fakes, ordinal-codec round-trips, and LDP ratio bounds. Parameterized
// over (oracle factory × ε) so each new oracle inherits the whole suite.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "ldp/frequency_oracle.h"
#include "ldp/grr.h"
#include "ldp/hadamard.h"
#include "ldp/local_hash.h"

namespace shuffledp {
namespace ldp {
namespace {

struct OracleCase {
  std::string label;
  std::function<std::unique_ptr<ScalarFrequencyOracle>(double eps)> make;
  double eps;
};

class OracleConformance : public ::testing::TestWithParam<OracleCase> {
 protected:
  std::unique_ptr<ScalarFrequencyOracle> oracle_ =
      GetParam().make(GetParam().eps);
};

TEST_P(OracleConformance, ReportsAlwaysValid) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = static_cast<uint64_t>(i) % oracle_->domain_size();
    auto r = oracle_->Encode(v, &rng);
    EXPECT_TRUE(oracle_->ValidateReport(r).ok());
    EXPECT_LT(r.value, oracle_->report_domain());
  }
}

TEST_P(OracleConformance, SupportProbabilitiesMatchEmpirically) {
  Rng rng(2);
  const auto sp = oracle_->support_probs();
  const int kTrials = 60000;
  const uint64_t own = 1;
  const uint64_t other = oracle_->domain_size() - 1;
  int own_hits = 0, other_hits = 0;
  for (int i = 0; i < kTrials; ++i) {
    auto r = oracle_->Encode(own, &rng);
    own_hits += oracle_->Supports(r, own);
    other_hits += oracle_->Supports(r, other);
  }
  auto near = [&](double observed, double expected) {
    double sigma = std::sqrt(expected * (1 - expected) / kTrials);
    EXPECT_NEAR(observed, expected, 6 * sigma + 1e-4) << GetParam().label;
  };
  near(own_hits / static_cast<double>(kTrials), sp.p_true);
  near(other_hits / static_cast<double>(kTrials), sp.q_other);
}

TEST_P(OracleConformance, FakeReportsSupportAtFakeRate) {
  Rng rng(3);
  const auto sp = oracle_->support_probs();
  const int kTrials = 60000;
  int hits = 0;
  for (int i = 0; i < kTrials; ++i) {
    hits += oracle_->Supports(oracle_->MakeFakeReport(&rng), 0);
  }
  double sigma = std::sqrt(sp.q_fake * (1 - sp.q_fake) / kTrials);
  EXPECT_NEAR(hits / static_cast<double>(kTrials), sp.q_fake,
              6 * sigma + 1e-4);
}

TEST_P(OracleConformance, LdpRatioBoundedByExpEps) {
  // p/q <= e^ε must hold for the support probabilities (the support test
  // is a post-processing of the report).
  const auto sp = oracle_->support_probs();
  EXPECT_LE(sp.p_true / sp.q_other,
            std::exp(oracle_->epsilon_local()) * (1 + 1e-9));
  EXPECT_GT(sp.p_true, sp.q_other);  // and the signal is positive
}

TEST_P(OracleConformance, OrdinalCodecRoundTripsEncodedReports) {
  Rng rng(4);
  EXPECT_GE(oracle_->PackedBits(), 1u);
  EXPECT_LE(oracle_->PackedBits(), 64u);
  const uint64_t space = oracle_->PackedBits() >= 64
                             ? ~uint64_t{0}
                             : (uint64_t{1} << oracle_->PackedBits());
  for (int i = 0; i < 500; ++i) {
    uint64_t v = static_cast<uint64_t>(i) % oracle_->domain_size();
    auto r = oracle_->Encode(v, &rng);
    uint64_t ordinal = oracle_->PackOrdinal(r);
    if (oracle_->PackedBits() < 64) EXPECT_LT(ordinal, space);
    auto back = oracle_->UnpackOrdinal(ordinal);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, r);
  }
}

TEST_P(OracleConformance, UniformOrdinalsSupportAtOrdinalFakeRate) {
  // The property PEOS' fake blanket rests on: a uniform ordinal value
  // supports any given v with probability OrdinalFakeSupportProb().
  Rng rng(5);
  const int kTrials = 60000;
  const double expected = oracle_->OrdinalFakeSupportProb();
  int hits = 0;
  for (int i = 0; i < kTrials; ++i) {
    uint64_t ordinal = oracle_->PackedBits() >= 64
                           ? rng.NextU64()
                           : rng.UniformU64(uint64_t{1}
                                            << oracle_->PackedBits());
    auto rep = oracle_->UnpackOrdinal(ordinal);
    if (rep.ok()) hits += oracle_->Supports(*rep, 2);
  }
  double sigma = std::sqrt(expected * (1 - expected) / kTrials);
  EXPECT_NEAR(hits / static_cast<double>(kTrials), expected,
              6 * sigma + 1e-4);
}

TEST_P(OracleConformance, EncodeIsDeterministicGivenRngState) {
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(oracle_->Encode(1, &a), oracle_->Encode(1, &b));
  }
}

std::vector<OracleCase> AllCases() {
  std::vector<OracleCase> cases;
  for (double eps : {0.5, 1.0, 3.0}) {
    cases.push_back({"GRR_pow2", [](double e) {
                       return std::unique_ptr<ScalarFrequencyOracle>(
                           new Grr(e, 16));
                     },
                     eps});
    cases.push_back({"GRR_odd", [](double e) {
                       return std::unique_ptr<ScalarFrequencyOracle>(
                           new Grr(e, 11));
                     },
                     eps});
    cases.push_back({"LH_pow2", [](double e) {
                       return std::unique_ptr<ScalarFrequencyOracle>(
                           new LocalHash(e, 100, 8));
                     },
                     eps});
    cases.push_back({"LH_odd", [](double e) {
                       return std::unique_ptr<ScalarFrequencyOracle>(
                           new LocalHash(e, 100, 6));
                     },
                     eps});
    cases.push_back({"Hadamard", [](double e) {
                       return std::unique_ptr<ScalarFrequencyOracle>(
                           new HadamardResponse(e, 20));
                     },
                     eps});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOracles, OracleConformance, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s_eps%d", info.param.label.c_str(),
                    static_cast<int>(info.param.eps * 10));
      return std::string(buf);
    });

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

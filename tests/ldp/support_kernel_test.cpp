// Bitwise cross-check matrix for the bulk support-evaluation kernels
// (ldp/support_kernels.h) against the per-pair reference path:
//
//   backend × d' (2, odd, pow2, non-pow2, large)
//           × batch size (0, 1, lane−1, lane, lane+1, odd, big)
//           × value range (full domain, odd slice [lo, hi))
//           × alignment (reports.data() and data()+1)
//
// plus the 8-byte-key hash specialization pinned against the generic
// XxHash64, SupportModulus::Reduce pinned against the `%` operator, and
// a seeded replayable fuzz loop (SHUFFLEDP_FUZZ_SEED /
// SHUFFLEDP_FUZZ_ITERS, same idiom as crypto/montgomery_fuzz_test).

#include "ldp/support_kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <vector>

#include "ldp/local_hash.h"
#include "util/hash.h"
#include "util/rng.h"

namespace shuffledp {
namespace ldp {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// Restores the dispatch state on scope exit so tests compose.
class BackendGuard {
 public:
  BackendGuard() : saved_(ActiveSupportBackend()) {}
  ~BackendGuard() { SetSupportBackend(saved_); }

 private:
  SupportBackend saved_;
};

std::vector<SupportBackend> KernelBackends() {
  std::vector<SupportBackend> backends = {SupportBackend::kPortable};
  if (SetSupportBackend(SupportBackend::kAvx2) == SupportBackend::kAvx2) {
    backends.push_back(SupportBackend::kAvx2);
  }
  if (SetSupportBackend(SupportBackend::kAvx512) ==
      SupportBackend::kAvx512) {
    backends.push_back(SupportBackend::kAvx512);
  }
  SetSupportBackend(BestSupportBackend());
  return backends;
}

std::vector<LdpReport> RandomReports(size_t n, uint32_t d_prime, Rng* rng) {
  std::vector<LdpReport> reports(n);
  for (auto& r : reports) {
    r.seed = static_cast<uint32_t>(rng->NextU64());
    // Mix honestly-hashed and adversarial values so both compare
    // outcomes are exercised.
    r.value = static_cast<uint32_t>(rng->UniformU64(d_prime));
  }
  return reports;
}

/// Per-pair reference: the generic-hash scalar loop, straight from the
/// pre-kernel aggregation code.
std::vector<uint64_t> ReferenceCounts(const LdpReport* reports, size_t n,
                                      uint64_t lo, uint64_t hi,
                                      uint32_t d_prime) {
  std::vector<uint64_t> counts(hi - lo, 0);
  for (uint64_t v = lo; v < hi; ++v) {
    for (size_t i = 0; i < n; ++i) {
      counts[v - lo] +=
          UniversalHash(v, reports[i].seed, d_prime) == reports[i].value;
    }
  }
  return counts;
}

TEST(SupportKernelTest, Key8HashMatchesGenericXxHash64) {
  Rng rng(0x8b17);
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.NextU64();
    uint64_t seed = rng.NextU64();
    if (i < 64) key = static_cast<uint64_t>(i);  // small keys too
    ASSERT_EQ(XxHash64Key8(key, seed), XxHash64(&key, sizeof(key), seed))
        << "key=" << key << " seed=" << seed;
  }
}

TEST(SupportKernelTest, SupportModulusMatchesHardwareModulo) {
  const uint32_t divisors[] = {2,  3,   4,   5,    6,    7,    9,
                               16, 19,  29,  127,  128,  129,  1024,
                               3'000'017u, 0x80000000u, 0xFFFFFFFFu};
  Rng rng(0xd1f0);
  for (uint32_t d : divisors) {
    SupportModulus mod(d);
    const uint64_t edges[] = {0,
                              1,
                              d - 1,
                              d,
                              static_cast<uint64_t>(d) + 1,
                              static_cast<uint64_t>(d) * d,
                              uint64_t{1} << 32,
                              (uint64_t{1} << 32) - 1,
                              uint64_t{1} << 63,
                              ~uint64_t{0}};
    for (uint64_t x : edges) {
      ASSERT_EQ(mod.Reduce(x), x % d) << "d=" << d << " x=" << x;
    }
    for (int i = 0; i < 200000; ++i) {
      uint64_t x = rng.NextU64();
      ASSERT_EQ(mod.Reduce(x), x % d) << "d=" << d << " x=" << x;
    }
  }
}

TEST(SupportKernelTest, BackendDPrimeBatchAlignmentCrossCheck) {
  BackendGuard guard;
  Rng rng(0xacc5);
  const uint32_t d_primes[] = {2, 3, 16, 19, 29, 1024, 3'000'017u};
  // Lane width is 4 (AVX2) and the value unroll is 8; cover 0, 1, and
  // the lane boundaries of both, plus odd sizes.
  const size_t batch_sizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 63, 64, 65, 257};
  for (SupportBackend backend : KernelBackends()) {
    ASSERT_EQ(SetSupportBackend(backend), backend);
    for (uint32_t d_prime : d_primes) {
      // Keep the evaluated domain small for the huge-d' rows.
      const uint64_t domain = d_prime > 64 ? 48 : 2 * d_prime;
      for (size_t n : batch_sizes) {
        // One extra report so the +1 misalignment stays in bounds.
        auto reports = RandomReports(n + 1, d_prime, &rng);
        for (size_t offset : {size_t{0}, size_t{1}}) {
          const LdpReport* base = reports.data() + offset;
          // Full range and an odd slice.
          const std::pair<uint64_t, uint64_t> ranges[] = {
              {0, domain},
              {domain / 3, domain - domain / 5},
          };
          for (auto [lo, hi] : ranges) {
            if (lo >= hi) continue;
            auto expected = ReferenceCounts(base, n, lo, hi, d_prime);
            std::vector<uint64_t> got(hi - lo, 0);
            AccumulateLocalHashSupports(base, n, lo, hi, d_prime,
                                        got.data());
            ASSERT_EQ(got, expected)
                << SupportBackendName(backend) << " d'=" << d_prime
                << " n=" << n << " offset=" << offset << " [" << lo << ","
                << hi << ")";
            for (uint64_t v = lo; v < hi; ++v) {
              ASSERT_EQ(CountLocalHashSupports(base, n, v, d_prime),
                        expected[v - lo])
                  << SupportBackendName(backend) << " d'=" << d_prime
                  << " n=" << n << " offset=" << offset << " v=" << v;
            }
          }
        }
      }
    }
  }
}

TEST(SupportKernelTest, OracleBulkApiMatchesPerPairSupports) {
  BackendGuard guard;
  Rng rng(0x0b5e);
  LocalHash lh(2.0, 96, 19);
  auto reports = RandomReports(300, 19, &rng);
  // Reference through the virtual per-pair path.
  std::vector<uint64_t> expected(96, 0);
  for (uint64_t v = 0; v < 96; ++v) {
    for (const auto& r : reports) expected[v] += lh.Supports(r, v);
  }
  for (SupportBackend backend :
       {SupportBackend::kScalar, SupportBackend::kPortable,
        SupportBackend::kAvx2, SupportBackend::kAvx512}) {
    SetSupportBackend(backend);
    std::vector<uint64_t> got(96, 0);
    lh.AccumulateSupports(reports.data(), reports.size(), 0, 96,
                          got.data());
    ASSERT_EQ(got, expected) << SupportBackendName(ActiveSupportBackend());
    for (uint64_t v = 0; v < 96; ++v) {
      ASSERT_EQ(lh.SupportsMany(reports.data(), reports.size(), v),
                expected[v])
          << SupportBackendName(ActiveSupportBackend()) << " v=" << v;
    }
  }
}

TEST(SupportKernelTest, AccumulatesIntoExistingCounts) {
  BackendGuard guard;
  Rng rng(0xadd5);
  auto reports = RandomReports(64, 16, &rng);
  auto expected = ReferenceCounts(reports.data(), 64, 0, 32, 16);
  for (SupportBackend backend : KernelBackends()) {
    SetSupportBackend(backend);
    std::vector<uint64_t> counts(32, 7);  // pre-existing tallies
    AccumulateLocalHashSupports(reports.data(), 64, 0, 32, 16,
                                counts.data());
    for (size_t i = 0; i < 32; ++i) {
      ASSERT_EQ(counts[i], expected[i] + 7) << "v=" << i;
    }
  }
}

TEST(SupportKernelTest, SetBackendReturnsInstalledBackend) {
  BackendGuard guard;
  EXPECT_EQ(SetSupportBackend(SupportBackend::kPortable),
            SupportBackend::kPortable);
  EXPECT_EQ(SetSupportBackend(SupportBackend::kScalar),
            SupportBackend::kScalar);
  // A SIMD request either installs that backend or falls down the
  // avx512 → avx2 → portable chain — whatever it returns must be what
  // subsequent calls observe.
  SupportBackend got = SetSupportBackend(SupportBackend::kAvx2);
  EXPECT_EQ(got, ActiveSupportBackend());
  EXPECT_TRUE(got == SupportBackend::kAvx2 ||
              got == SupportBackend::kPortable);
  got = SetSupportBackend(SupportBackend::kAvx512);
  EXPECT_EQ(got, ActiveSupportBackend());
  EXPECT_NE(got, SupportBackend::kScalar);
}

// Seeded replayable fuzz loop: random d', batch size, slice, and
// alignment each iteration, cross-checked against the per-pair loop on
// every backend.
TEST(SupportKernelFuzzTest, RandomizedCrossCheck) {
  BackendGuard guard;
  const uint64_t seed = EnvU64("SHUFFLEDP_FUZZ_SEED", 0x5eed2026u);
  const uint64_t iters = EnvU64("SHUFFLEDP_FUZZ_ITERS", 150);
  std::cout << "support-kernel fuzz seed=" << seed << " iters=" << iters
            << " (replay: SHUFFLEDP_FUZZ_SEED=" << seed << ")\n";
  Rng rng(seed);
  const auto backends = KernelBackends();
  for (uint64_t it = 0; it < iters; ++it) {
    const uint32_t d_prime =
        2 + static_cast<uint32_t>(rng.UniformU64(
                rng.Bernoulli(0.2) ? 1'000'000 : 64));
    const size_t n = static_cast<size_t>(rng.UniformU64(400));
    const uint64_t domain = 1 + rng.UniformU64(96);
    uint64_t lo = rng.UniformU64(domain);
    uint64_t hi = lo + 1 + rng.UniformU64(domain - lo);
    const size_t offset = static_cast<size_t>(rng.UniformU64(2));
    auto reports = RandomReports(n + offset, d_prime, &rng);
    const LdpReport* base = reports.data() + offset;
    auto expected = ReferenceCounts(base, n, lo, hi, d_prime);
    for (SupportBackend backend : backends) {
      SetSupportBackend(backend);
      std::vector<uint64_t> got(hi - lo, 0);
      AccumulateLocalHashSupports(base, n, lo, hi, d_prime, got.data());
      ASSERT_EQ(got, expected)
          << "iter=" << it << " backend=" << SupportBackendName(backend)
          << " d'=" << d_prime << " n=" << n << " [" << lo << "," << hi
          << ") offset=" << offset << " seed=" << seed;
      const uint64_t v = lo + rng.UniformU64(hi - lo);
      ASSERT_EQ(CountLocalHashSupports(base, n, v, d_prime),
                expected[v - lo])
          << "iter=" << it << " backend=" << SupportBackendName(backend)
          << " v=" << v << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

#include "ldp/unary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace shuffledp {
namespace ldp {
namespace {

TEST(UnaryTest, ReplacementUsesHalfBudgetPerBit) {
  UnaryEncoding rap(2.0, 10, UnaryEncoding::Semantics::kReplacement);
  EXPECT_NEAR(rap.p() / rap.q(), std::exp(1.0), 1e-9);
  UnaryEncoding rapr(2.0, 10, UnaryEncoding::Semantics::kRemoval);
  EXPECT_NEAR(rapr.p() / rapr.q(), std::exp(2.0), 1e-9);
}

TEST(UnaryTest, EncodeProducesDBits) {
  Rng rng(1);
  UnaryEncoding ue(1.0, 20, UnaryEncoding::Semantics::kReplacement);
  auto bits = ue.Encode(7, &rng);
  EXPECT_EQ(bits.size(), 20u);
  for (uint8_t b : bits) EXPECT_LE(b, 1);
}

TEST(UnaryTest, BitFlipRatesMatchPq) {
  Rng rng(2);
  const uint64_t d = 16;
  UnaryEncoding ue(2.0, d, UnaryEncoding::Semantics::kReplacement);
  const int kTrials = 30000;
  int one_kept = 0;
  std::vector<int> zero_flipped(d, 0);
  for (int t = 0; t < kTrials; ++t) {
    auto bits = ue.Encode(3, &rng);
    one_kept += bits[3];
    for (uint64_t i = 0; i < d; ++i) {
      if (i != 3) zero_flipped[i] += bits[i];
    }
  }
  EXPECT_NEAR(one_kept / static_cast<double>(kTrials), ue.p(), 0.01);
  for (uint64_t i = 0; i < d; ++i) {
    if (i == 3) continue;
    EXPECT_NEAR(zero_flipped[i] / static_cast<double>(kTrials), ue.q(), 0.012)
        << i;
  }
}

TEST(UnaryTest, AccumulateValidatesLengths) {
  UnaryEncoding ue(1.0, 4, UnaryEncoding::Semantics::kReplacement);
  std::vector<uint64_t> counts(4, 0);
  std::vector<uint8_t> bad(3, 0);
  EXPECT_FALSE(ue.Accumulate(bad, &counts).ok());
  std::vector<uint64_t> bad_counts(5, 0);
  std::vector<uint8_t> good(4, 0);
  EXPECT_FALSE(ue.Accumulate(good, &bad_counts).ok());
  EXPECT_TRUE(ue.Accumulate(good, &counts).ok());
}

TEST(UnaryTest, EstimationUnbiasedWithPredictedVariance) {
  Rng rng(3);
  const uint64_t d = 8, n = 20000;
  const double eps = 2.0;
  UnaryEncoding ue(eps, d, UnaryEncoding::Semantics::kReplacement);
  // Everyone holds value 2.
  RunningStat est2, est5;
  const int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<uint64_t> counts(d, 0);
    for (uint64_t i = 0; i < n; ++i) {
      auto bits = ue.Encode(2, &rng);
      ASSERT_TRUE(ue.Accumulate(bits, &counts).ok());
    }
    auto f = ue.Estimate(counts, n);
    est2.Add(f[2]);
    est5.Add(f[5]);
  }
  EXPECT_NEAR(est2.mean(), 1.0, 6 * est2.stderr_mean());
  EXPECT_NEAR(est5.mean(), 0.0, 6 * est5.stderr_mean());
  // Wang et al.: Var ~= e^{ε/2} / (n (e^{ε/2}−1)²) at f ~ 0.
  double e = std::exp(eps / 2.0);
  double predicted = e / (n * (e - 1) * (e - 1));
  EXPECT_NEAR(est5.variance(), predicted, 0.5 * predicted);
}

TEST(UnaryTest, RemovalVariantIsMoreAccurateAtSameEps) {
  Rng rng(4);
  const uint64_t d = 8, n = 5000;
  UnaryEncoding rap(1.0, d, UnaryEncoding::Semantics::kReplacement);
  UnaryEncoding rapr(1.0, d, UnaryEncoding::Semantics::kRemoval);
  EXPECT_GT(rapr.p() - rapr.q(), rap.p() - rap.q());
}

TEST(UnaryTest, ReportBytesIsCeilD8) {
  UnaryEncoding a(1.0, 8, UnaryEncoding::Semantics::kReplacement);
  EXPECT_EQ(a.ReportBytes(), 1u);
  UnaryEncoding b(1.0, 9, UnaryEncoding::Semantics::kReplacement);
  EXPECT_EQ(b.ReportBytes(), 2u);
  UnaryEncoding c(1.0, 42178, UnaryEncoding::Semantics::kReplacement);
  EXPECT_EQ(c.ReportBytes(), 5273u);  // ~5KB, the Table II comparison
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

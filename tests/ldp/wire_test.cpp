#include "ldp/wire.h"

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "ldp/unary.h"

namespace shuffledp {
namespace ldp {
namespace {

TEST(WireTest, ScalarRoundTripGrr) {
  Grr grr(1.0, 915);  // 10-bit ordinals -> 2 bytes each
  EXPECT_EQ(WireReportBytes(grr), 2u);
  Rng rng(1);
  std::vector<LdpReport> reports;
  for (int i = 0; i < 200; ++i) {
    reports.push_back(grr.Encode(static_cast<uint64_t>(i) % 915, &rng));
  }
  Bytes wire = SerializeReports(grr, reports);
  EXPECT_LE(wire.size(), 200 * 2 + 10u);
  auto back = ParseReports(grr, wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, reports);
}

TEST(WireTest, ScalarRoundTripSolh) {
  LocalHash solh(3.0, 42178, 64, "SOLH");  // 32+6 bits -> 5 bytes
  EXPECT_EQ(WireReportBytes(solh), 5u);
  Rng rng(2);
  std::vector<LdpReport> reports;
  for (int i = 0; i < 100; ++i) {
    reports.push_back(solh.Encode(static_cast<uint64_t>(i * 37) % 42178,
                                  &rng));
  }
  Bytes wire = SerializeReports(solh, reports);
  auto back = ParseReports(solh, wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, reports);
}

TEST(WireTest, TruncatedPayloadRejected) {
  Grr grr(1.0, 16);
  Rng rng(3);
  Bytes wire = SerializeReports(grr, {grr.Encode(3, &rng)});
  wire.pop_back();
  EXPECT_FALSE(ParseReports(grr, wire).ok());
}

TEST(WireTest, OutOfRangeOrdinalRejected) {
  Grr grr(1.0, 10);  // ordinals 0..9 valid, 10..15 padding
  ByteWriter w;
  w.PutVarint(1);
  w.PutU8(12);  // padding-region ordinal
  EXPECT_FALSE(ParseReports(grr, w.Release()).ok());
}

TEST(WireTest, EmptyReportListRoundTrips) {
  Grr grr(1.0, 16);
  Bytes wire = SerializeReports(grr, {});
  auto back = ParseReports(grr, wire);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(WireTest, UnaryBitPackingRoundTrips) {
  for (uint64_t d : {1ull, 7ull, 8ull, 9ull, 100ull, 915ull}) {
    std::vector<uint8_t> bits(d);
    for (uint64_t i = 0; i < d; ++i) bits[i] = (i * 7 + 1) % 3 == 0;
    Bytes packed = PackUnaryBits(bits);
    EXPECT_EQ(packed.size(), (d + 7) / 8);
    auto back = UnpackUnaryBits(packed, d);
    ASSERT_TRUE(back.ok()) << d;
    EXPECT_EQ(*back, bits) << d;
  }
}

TEST(WireTest, UnaryPaddingMustBeZero) {
  Bytes packed = {0xFF};  // 8 bits set, but d = 5
  EXPECT_FALSE(UnpackUnaryBits(packed, 5).ok());
}

TEST(WireTest, UnaryWrongLengthRejected) {
  EXPECT_FALSE(UnpackUnaryBits(Bytes(2, 0), 100).ok());
}

TEST(WireTest, KosarakUnaryReportIsFiveKb) {
  // The §VII-B communication contrast: SOLH 8 B vs unary ~5 KB.
  UnaryEncoding rap(1.0, 42178, UnaryEncoding::Semantics::kReplacement);
  Rng rng(4);
  auto bits = rap.Encode(7, &rng);
  Bytes packed = PackUnaryBits(bits);
  EXPECT_EQ(packed.size(), 5273u);
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp

// End-to-end bulk-aggregation-path check: a full SOLH streaming round
// (encode → offer → shard fan-out → bulk support kernels → calibrate)
// must produce *bitwise identical* supports and estimates no matter
// which support-kernel backend aggregates it — the SIMD kernels, the
// portable unrolled backend, and the forced per-pair scalar reference
// are all the same protocol arithmetic (XxHash64 % d'), just faster.
//
// This is the integration-level counterpart of the per-kernel
// cross-checks in tests/ldp/support_kernel_test.cpp: it exercises the
// real pipeline wiring (StreamingCollector batches, ShardedSupportCounter
// slice restriction, the pool==nullptr single-pass path) rather than the
// kernel entry points in isolation.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ldp/local_hash.h"
#include "ldp/support_kernels.h"
#include "service/sharded_counter.h"
#include "service/streaming_collector.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace service {
namespace {

// Installs a backend for the test body and restores the previous one on
// scope exit, so test order never leaks backend state.
class BackendGuard {
 public:
  BackendGuard() : saved_(ldp::ActiveSupportBackend()) {}
  ~BackendGuard() { ldp::SetSupportBackend(saved_); }

 private:
  ldp::SupportBackend saved_;
};

// Every backend this host can run, always including the scalar per-pair
// reference and the best available SIMD tier.
std::vector<ldp::SupportBackend> HostBackends() {
  std::vector<ldp::SupportBackend> backends = {
      ldp::SupportBackend::kScalar, ldp::SupportBackend::kPortable};
  const ldp::SupportBackend best = ldp::BestSupportBackend();
  if (best != ldp::SupportBackend::kPortable) backends.push_back(best);
  return backends;
}

std::vector<ldp::LdpReport> EncodeSkewed(
    const ldp::ScalarFrequencyOracle& oracle, uint64_t n, uint64_t seed) {
  const uint64_t d = oracle.domain_size();
  Rng rng(seed);
  std::vector<ldp::LdpReport> reports;
  reports.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t v = (i % 3 == 0) ? 0 : i % d;
    reports.push_back(oracle.Encode(v, &rng));
  }
  return reports;
}

struct RoundOutput {
  std::vector<uint64_t> supports;
  std::vector<double> estimates;
  uint64_t rows_aggregated = 0;
};

RoundOutput RunStreamingRound(const ldp::ScalarFrequencyOracle& oracle,
                              const std::vector<ldp::LdpReport>& reports,
                              ThreadPool* pool, uint32_t num_shards) {
  StreamingOptions opts;
  opts.batch_size = 4096;
  opts.num_shards = num_shards;
  opts.pool = pool;
  StreamingCollector collector(oracle, opts);
  EXPECT_TRUE(collector.OfferReports(reports).ok());
  auto round =
      collector.FinishRound(reports.size(), 0, Calibration::kStandard);
  RoundOutput out;
  if (!round.ok()) {
    ADD_FAILURE() << round.status().ToString();
    return out;
  }
  out.supports = round->supports;
  out.estimates = round->estimates;
  out.rows_aggregated = round->stats.rows_aggregated;
  return out;
}

bool BitwiseEqual(const std::vector<double>& a,
                  const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// The acceptance-scale run: n = 10^6 SOLH reports through the streaming
// pipeline, once per backend, all outputs bitwise equal.
TEST(AggregationKernelE2E, MillionRowStreamingBitwiseAcrossBackends) {
  const uint64_t n = 1000000, d = 256, d_prime = 16;
  ldp::LocalHash oracle(3.0, d, d_prime, "SOLH");
  auto reports = EncodeSkewed(oracle, n, 20260808);
  ThreadPool pool(4);

  BackendGuard guard;
  std::vector<RoundOutput> runs;
  for (ldp::SupportBackend backend : HostBackends()) {
    ldp::SetSupportBackend(backend);
    runs.push_back(RunStreamingRound(oracle, reports, &pool, 8));
    EXPECT_EQ(runs.back().rows_aggregated, n)
        << ldp::SupportBackendName(backend);
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].supports, runs[i].supports)
        << "supports diverge on backend "
        << ldp::SupportBackendName(HostBackends()[i]);
    EXPECT_TRUE(BitwiseEqual(runs[0].estimates, runs[i].estimates))
        << "estimates diverge on backend "
        << ldp::SupportBackendName(HostBackends()[i]);
  }
}

// Non-power-of-two hash range takes the magic-modulo kernel path; same
// bitwise contract at a smaller n.
TEST(AggregationKernelE2E, NonPowerOfTwoDPrimeStreamingBitwise) {
  const uint64_t n = 60000, d = 128, d_prime = 19;
  ldp::LocalHash oracle(2.0, d, d_prime, "SOLH");
  auto reports = EncodeSkewed(oracle, n, 77);
  ThreadPool pool(3);

  BackendGuard guard;
  std::vector<RoundOutput> runs;
  for (ldp::SupportBackend backend : HostBackends()) {
    ldp::SetSupportBackend(backend);
    runs.push_back(RunStreamingRound(oracle, reports, &pool, 5));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].supports, runs[i].supports);
    EXPECT_TRUE(BitwiseEqual(runs[0].estimates, runs[i].estimates));
  }
}

// Slice-restricted counters (a partition worker owning [lo, hi)) must
// agree with the matching slice of a full-domain pass, across backends
// and across the pooled fan-out vs the pool==nullptr single-pass path.
TEST(AggregationKernelE2E, SliceRestrictedCounterMatchesFullDomainSlice) {
  const uint64_t n = 30000, d = 192, d_prime = 19;
  const uint64_t lo = d / 3, hi = d - d / 5;
  ldp::LocalHash oracle(2.5, d, d_prime, "SOLH");
  auto reports = EncodeSkewed(oracle, n, 4242);
  ThreadPool pool(4);

  BackendGuard guard;
  std::vector<uint64_t> reference;  // full-domain slice on the first run
  for (ldp::SupportBackend backend : HostBackends()) {
    ldp::SetSupportBackend(backend);

    ShardedSupportCounter full(oracle, 6);
    full.AccumulateBatch(reports, &pool);
    auto full_counts = full.Finalize();
    std::vector<uint64_t> slice_of_full(full_counts.begin() + lo,
                                        full_counts.begin() + hi);
    if (reference.empty()) reference = slice_of_full;
    EXPECT_EQ(reference, slice_of_full)
        << ldp::SupportBackendName(backend);

    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      ShardedSupportCounter sliced(oracle, 4, lo, hi);
      sliced.AccumulateBatch(reports, p);
      EXPECT_EQ(sliced.Finalize(), slice_of_full)
          << ldp::SupportBackendName(backend)
          << (p == nullptr ? " serial" : " pooled");
    }
  }
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// Chaos end-to-end: a fleet round under a scripted, seeded fault
// schedule — an endpoint killed and restarted mid-round, torn writes on
// another, jittered delays on a third, a refused reconnect — must
// produce estimates bitwise equal to a fault-free run with NO manual
// recovery calls (no ReconnectPartition, no SetSkipBatches): the
// routing client and coordinator run the reconnect → handshake →
// watermark → replay dance themselves. And an endpoint that never comes
// back must fail the round inside its configured budget with a
// RoundHealth report naming the dead partition.

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ldp/grr.h"
#include "service/checkpoint.h"
#include "service/coordinator.h"
#include "service/fault_injection.h"
#include "service/transport.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

struct Fleet {
  std::vector<std::unique_ptr<CollectionServer>> servers;
  std::vector<EndpointAddress> endpoints;
};

Fleet StartFleet(const ldp::ScalarFrequencyOracle& oracle,
                 const PartitionMap& map,
                 const CollectionServerOptions& base,
                 const CollectionServerOptions* special = nullptr,
                 uint32_t special_partition = 0) {
  Fleet fleet;
  for (uint32_t p = 0; p < map.partitions(); ++p) {
    CollectionServerOptions options =
        (special != nullptr && p == special_partition) ? *special : base;
    options.partition_map = map;
    options.partition_id = p;
    auto server = CollectionServer::Start(oracle, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    fleet.endpoints.push_back({"127.0.0.1", (*server)->port()});
    fleet.servers.push_back(std::move(*server));
  }
  return fleet;
}

// Deterministic synthetic batch stream: self-seeded per batch, so any
// replayed suffix is bit-identical to the original send.
std::vector<uint64_t> BatchOrdinals(const ldp::ScalarFrequencyOracle& oracle,
                                    uint64_t b, size_t batch_size) {
  Rng rng(0xC4A05 + b);
  std::vector<uint64_t> ordinals;
  ordinals.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    ordinals.push_back(oracle.PackOrdinal(
        oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng)));
  }
  return ordinals;
}

// Fast-failing recovery budget so chaos rounds settle in test time.
RoutingOptions FastRetry() {
  RoutingOptions options;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_ms = 5;
  options.retry.max_backoff_ms = 50;
  options.client.connect_timeout_ms = 2000;
  return options;
}

TEST(ChaosE2e, KillRestartTornWritesAndDelaysRecoverBitwise) {
  ldp::Grr grr(2.0, 48);
  auto map = PartitionMap::Create(grr, PartitionMode::kByValue, 3);
  ASSERT_TRUE(map.ok());
  const uint64_t kBatches = 60;
  const size_t kBatchSize = 512;
  const uint64_t n = kBatches * kBatchSize;
  const std::string ckpt = ::testing::TempDir() + "shuffledp_chaos_p1.ckpt";
  RemoveCheckpoint(ckpt);
  RemoveCheckpoint(RoundJournalPath(ckpt));

  CollectionServerOptions base;
  base.streaming.batch_size = kBatchSize;

  // Ground truth: one fault-free distributed round over a fresh fleet.
  RoundResult expected;
  {
    Fleet fleet = StartFleet(grr, *map, base);
    auto routing =
        PartitionRoutingClient::Connect(grr, *map, fleet.endpoints);
    ASSERT_TRUE(routing.ok()) << routing.status().ToString();
    MergeCoordinator coordinator(grr, routing->get());
    for (uint64_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE(
          (*routing)->SendBatch(0, b, BatchOrdinals(grr, b, kBatchSize)).ok());
    }
    auto result = coordinator.FinishRound(0, n, 0, Calibration::kStandard);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(coordinator.last_round_health().all_healthy());
    expected = std::move(*result);
  }

  // Chaos run: partition 1 checkpoints (so its restart can recover).
  CollectionServerOptions p1_options = base;
  p1_options.streaming.checkpoint.path = ckpt;
  p1_options.streaming.checkpoint.every_batches = 8;
  Fleet fleet = StartFleet(grr, *map, base, &p1_options, 1);
  auto routing = PartitionRoutingClient::Connect(grr, *map, fleet.endpoints,
                                                 FastRetry());
  ASSERT_TRUE(routing.ok()) << routing.status().ToString();
  MergeCoordinator coordinator(grr, routing->get());

  // The scripted schedule (installed after the handshakes so it only
  // bites mid-round):
  //   - endpoint 0's 6th..8th send calls are torn at 7 bytes — the frame
  //     crosses the wire in slivers and must reassemble;
  //   - endpoint 2's recvs get seeded 1 ms stalls 25% of the time;
  //   - the first reconnect to the restarted endpoint 1 is refused, so
  //     recovery has to back off and try again.
  FaultInjector fi(0x5EED);
  FaultRule torn;
  torn.op = FaultOp::kSend;
  torn.port = fleet.endpoints[0].port;
  torn.skip = 5;
  torn.count = 3;
  torn.action = FaultAction::TruncateSend(7);
  fi.AddRule(torn);
  FaultRule slow;
  slow.op = FaultOp::kRecv;
  slow.port = fleet.endpoints[2].port;
  slow.probability = 0.25;
  slow.action = FaultAction::DelayMs(1);
  fi.AddRule(slow);
  FaultRule refuse;
  refuse.op = FaultOp::kConnect;
  refuse.port = fleet.endpoints[1].port;
  refuse.count = 1;
  refuse.action = FaultAction::FailErrno(ECONNREFUSED);
  fi.AddRule(refuse);
  ScopedFaultInjector scope(&fi);

  const uint64_t kKillAfter = 35;
  for (uint64_t b = 0; b < kBatches; ++b) {
    if (b == kKillAfter) {
      // Let the doomed endpoint snapshot at least once, then kill it —
      // destroy the object, not just Shutdown(), so nothing keeps
      // draining — and restart it on the same port with recovery. No
      // routing-client surgery: the next failed send triggers the
      // automatic reconnect → handshake → watermark → replay dance.
      for (int spin = 0; spin < 2000 && !ReadCheckpoint(ckpt).ok(); ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      ASSERT_TRUE(ReadCheckpoint(ckpt).ok());
      const uint16_t port = fleet.endpoints[1].port;
      fleet.servers[1].reset();
      CollectionServerOptions restart = p1_options;
      restart.port = port;
      restart.partition_map = *map;
      restart.partition_id = 1;
      restart.recover = true;
      auto server = CollectionServer::Start(grr, restart);
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      EXPECT_GT((*server)->recovered_watermark(), 0u);
      fleet.servers[1] = std::move(*server);
    }
    ASSERT_TRUE(
        (*routing)->SendBatch(0, b, BatchOrdinals(grr, b, kBatchSize)).ok())
        << "batch " << b;
  }

  auto result = coordinator.FinishRound(0, n, 0, Calibration::kStandard);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Bitwise: the chaos schedule may shift timing, never the estimate.
  EXPECT_EQ(result->supports, expected.supports);
  EXPECT_EQ(result->estimates, expected.estimates);
  EXPECT_EQ(result->reports_decoded, expected.reports_decoded);
  EXPECT_EQ(result->reports_invalid, expected.reports_invalid);
  EXPECT_TRUE(result->spot_check_passed);

  // The faults actually fired and the recovery actually ran.
  EXPECT_GT(fi.injected(FaultOp::kSend), 0u);
  EXPECT_GT(fi.injected(FaultOp::kConnect), 0u);
  EXPECT_GE((*routing)->health(1).recoveries, 1u);
  EXPECT_GE((*routing)->health(1).attempts, 2u);  // one refused + one good
  RoundHealth health = coordinator.last_round_health();
  EXPECT_EQ(health.round_id, 0u);
  EXPECT_TRUE(health.all_healthy()) << health.ToString();

  RemoveCheckpoint(ckpt);
  RemoveCheckpoint(RoundJournalPath(ckpt));
}

TEST(ChaosE2e, DeadEndpointFailsSendWithinBudgetNamingPartition) {
  ldp::Grr grr(2.0, 32);
  auto map = PartitionMap::Create(grr, PartitionMode::kByValue, 2);
  ASSERT_TRUE(map.ok());
  CollectionServerOptions base;
  base.streaming.batch_size = 64;
  Fleet fleet = StartFleet(grr, *map, base);

  RoutingOptions fast = FastRetry();
  fast.retry.max_attempts = 3;
  fast.retry.initial_backoff_ms = 2;
  fast.retry.max_backoff_ms = 10;
  auto routing =
      PartitionRoutingClient::Connect(grr, *map, fleet.endpoints, fast);
  ASSERT_TRUE(routing.ok()) << routing.status().ToString();

  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE((*routing)->SendBatch(0, b, BatchOrdinals(grr, b, 64)).ok());
  }
  // Partition 1 dies and never comes back.
  fleet.servers[1].reset();

  const auto t0 = Clock::now();
  Status failed = Status::OK();
  for (uint64_t b = 4; b < 64 && failed.ok(); ++b) {
    failed = (*routing)->SendBatch(0, b, BatchOrdinals(grr, b, 64));
  }
  ASSERT_FALSE(failed.ok()) << "sends into a dead endpoint never failed";
  // Budget-bounded: 3 attempts at <= 10 ms backoff plus fast refused
  // connects — nowhere near a hang.
  EXPECT_LT(ElapsedMs(t0), 30000);
  EXPECT_TRUE(IsRetryableTransportError(failed));
  EXPECT_NE(failed.message().find("partition 1"), std::string::npos)
      << failed.ToString();
  EXPECT_NE(failed.message().find("recovery exhausted"), std::string::npos)
      << failed.ToString();
  const PartitionHealth& health = (*routing)->health(1);
  EXPECT_FALSE(health.healthy);
  EXPECT_EQ(health.attempts, 3u);
  EXPECT_EQ(health.recoveries, 0u);
}

TEST(ChaosE2e, DeadEndpointFailsRoundCloseWithRoundHealth) {
  ldp::Grr grr(2.0, 32);
  auto map = PartitionMap::Create(grr, PartitionMode::kByValue, 2);
  ASSERT_TRUE(map.ok());
  CollectionServerOptions base;
  base.streaming.batch_size = 64;
  Fleet fleet = StartFleet(grr, *map, base);

  RoutingOptions fast = FastRetry();
  fast.retry.max_attempts = 3;
  fast.retry.initial_backoff_ms = 2;
  fast.retry.max_backoff_ms = 10;
  auto routing =
      PartitionRoutingClient::Connect(grr, *map, fleet.endpoints, fast);
  ASSERT_TRUE(routing.ok()) << routing.status().ToString();
  MergeCoordinator coordinator(grr, routing->get());

  const uint64_t kBatches = 8;
  for (uint64_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE((*routing)->SendBatch(0, b, BatchOrdinals(grr, b, 64)).ok());
  }
  // The endpoint dies between the last batch and the round close; the
  // failure must surface at FinishRound, inside the budget, with the
  // health report naming the dead partition and its watermark.
  fleet.servers[1].reset();

  const auto t0 = Clock::now();
  auto result =
      coordinator.FinishRound(0, kBatches * 64, 0, Calibration::kStandard);
  ASSERT_FALSE(result.ok());
  EXPECT_LT(ElapsedMs(t0), 30000);
  EXPECT_TRUE(IsRetryableTransportError(result.status()))
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("p1 DEAD"), std::string::npos)
      << result.status().ToString();

  RoundHealth health = coordinator.last_round_health();
  ASSERT_EQ(health.partitions.size(), 2u);
  EXPECT_TRUE(health.partitions[0].healthy);
  EXPECT_FALSE(health.partitions[1].healthy);
  EXPECT_GE(health.partitions[1].attempts, 3u);
  EXPECT_FALSE(health.all_healthy());
  EXPECT_NE(health.ToString().find("p1 DEAD"), std::string::npos)
      << health.ToString();
}

TEST(ChaosE2e, ReFinishForClosedRoundIsServedFromResultStash) {
  // The close-to-read window, live-server edition: a coordinator whose
  // connection dies after the endpoint finalized the round re-sends the
  // finish on a fresh connection and must receive the *same* result —
  // and a re-finish restating different parameters must be refused.
  ldp::Grr grr(2.0, 16);
  CollectionServerOptions options;
  options.streaming.batch_size = 4;
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto first = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)->SendOrdinals(0, grr, {1, 2, 3, 4}).ok());
  auto original = (*first)->FinishRound(0, 4, 0, Calibration::kStandard);
  ASSERT_TRUE(original.ok()) << original.status().ToString();

  auto second = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(second.ok());
  auto replayed = (*second)->FinishRound(0, 4, 0, Calibration::kStandard);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->supports, original->supports);
  EXPECT_EQ(replayed->estimates, original->estimates);
  EXPECT_EQ(replayed->reports_decoded, original->reports_decoded);

  auto third = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(third.ok());
  auto mismatched = (*third)->FinishRound(0, 5, 0, Calibration::kStandard);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kProtocolViolation);
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

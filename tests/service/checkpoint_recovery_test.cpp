// Crash-safe checkpoint persistence: file codec robustness (CRC, torn
// writes, version skew) and the end-to-end guarantee — a round killed
// mid-drain and recovered via RecoverRound() finishes with supports and
// estimates bitwise identical to an uninterrupted run.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "service/checkpoint.h"
#include "service/streaming_collector.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "shuffledp_" + name;
}

CheckpointState SampleState() {
  CheckpointState state;
  state.round_id = 3;
  state.batches_consumed = 17;
  state.rows_seen = 17 * 256;
  state.reports_decoded = 4300;
  state.reports_invalid = 12;
  state.dummies_recognized = 2;
  state.dummies_expected = 5;
  state.supports = {0, 5, 123, 0, 99999999, 1};
  state.dummies_remaining[{0x1234567890ABCDEFULL, 7}] = 2;
  state.dummies_remaining[{42, 0}] = 1;
  return state;
}

TEST(Checkpoint, WriteReadRoundTrip) {
  const std::string path = TempPath("roundtrip.ckpt");
  CheckpointState state = SampleState();
  ASSERT_TRUE(WriteCheckpoint(path, state).ok());

  auto read = ReadCheckpoint(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->round_id, state.round_id);
  EXPECT_EQ(read->batches_consumed, state.batches_consumed);
  EXPECT_EQ(read->rows_seen, state.rows_seen);
  EXPECT_EQ(read->reports_decoded, state.reports_decoded);
  EXPECT_EQ(read->reports_invalid, state.reports_invalid);
  EXPECT_EQ(read->dummies_recognized, state.dummies_recognized);
  EXPECT_EQ(read->dummies_expected, state.dummies_expected);
  EXPECT_EQ(read->supports, state.supports);
  EXPECT_EQ(read->dummies_remaining, state.dummies_remaining);
  RemoveCheckpoint(path);
  EXPECT_EQ(ReadCheckpoint(path).status().code(), StatusCode::kNotFound);
}

// The worked example in docs/WIRE_FORMAT.md §3, byte for byte. If this
// breaks, update the doc with the new bytes or fix the code — never the
// test alone.
TEST(Checkpoint, GoldenVectorMatchesDoc) {
  const std::string path = TempPath("golden.ckpt");
  CheckpointState state;
  state.round_id = 3;
  state.batches_consumed = 2;
  state.rows_seen = 2;
  state.reports_decoded = 2;
  state.supports = {1, 1};
  ASSERT_TRUE(WriteCheckpoint(path, state).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> bytes(64);
  bytes.resize(std::fread(bytes.data(), 1, bytes.size(), f));
  std::fclose(f);
  const std::vector<uint8_t> expected = {
      0x53, 0x44, 0x50, 0x4B,                          // magic "SDPK"
      0x02,                                            // version
      0x00, 0x00, 0x00,                                // reserved
      0x15, 0x00, 0x00, 0x00,                          // payload length 21
      0x3C, 0x67, 0x49, 0x7B,                          // CRC-32(payload)
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // round_id 3
      0x00, 0x01, 0x00,                                // partition 0/1, lo 0
      0x02, 0x02, 0x02, 0x00, 0x00, 0x00,              // tallies
      0x02, 0x01, 0x01,                                // d=2, supports {1,1}
      0x00,                                            // no dummy entries
  };
  EXPECT_EQ(bytes, expected);
  RemoveCheckpoint(path);
}

TEST(Checkpoint, OverwriteKeepsLatestSnapshot) {
  const std::string path = TempPath("overwrite.ckpt");
  CheckpointState state = SampleState();
  ASSERT_TRUE(WriteCheckpoint(path, state).ok());
  state.batches_consumed = 99;
  state.supports[2] = 456;
  ASSERT_TRUE(WriteCheckpoint(path, state).ok());
  auto read = ReadCheckpoint(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->batches_consumed, 99u);
  EXPECT_EQ(read->supports[2], 456u);
  RemoveCheckpoint(path);
}

TEST(Checkpoint, CorruptionAndTruncationAreRejected) {
  const std::string path = TempPath("corrupt.ckpt");
  ASSERT_TRUE(WriteCheckpoint(path, SampleState()).ok());

  // Read raw bytes once.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);

  auto write_raw = [&](const std::vector<uint8_t>& raw) {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (!raw.empty()) {
      ASSERT_EQ(std::fwrite(raw.data(), 1, raw.size(), out), raw.size());
    }
    std::fclose(out);
  };

  // Every single-bit flip must be caught (magic, version, reserved,
  // length, CRC, payload).
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    std::vector<uint8_t> mutated = bytes;
    mutated[byte] ^= 0x01;
    write_raw(mutated);
    EXPECT_FALSE(ReadCheckpoint(path).ok()) << "byte=" << byte;
  }

  // Every truncation (a torn non-atomic write) must be caught.
  for (size_t len = 0; len < bytes.size(); len += 3) {
    write_raw({bytes.begin(), bytes.begin() + len});
    EXPECT_FALSE(ReadCheckpoint(path).ok()) << "len=" << len;
  }

  // Version skew: a future format must not parse as v1.
  {
    std::vector<uint8_t> skewed = bytes;
    skewed[4] = kCheckpointVersion + 1;
    write_raw(skewed);
    auto read = ReadCheckpoint(path);
    ASSERT_FALSE(read.ok());
    EXPECT_NE(read.status().message().find("version"), std::string::npos);
  }
  RemoveCheckpoint(path);
}

// Deterministic batch b of the synthetic round (self-seeded, so any
// suffix replays bit-identically — the same property the protocol
// encode phases have via fixed-chunk seeding).
std::vector<ldp::LdpReport> BatchReports(
    const ldp::ScalarFrequencyOracle& oracle, uint64_t b, size_t batch_size) {
  Rng rng(0xC0FFEE + b);
  std::vector<ldp::LdpReport> reports;
  reports.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    reports.push_back(
        oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng));
  }
  return reports;
}

void KillAndRecoverBitwise(const ldp::ScalarFrequencyOracle& oracle,
                           const std::string& tag) {
  const uint64_t kBatches = 40;
  const size_t kBatchSize = 128;
  const uint64_t n = kBatches * kBatchSize;
  const std::string path = TempPath("recover_" + tag + ".ckpt");
  RemoveCheckpoint(path);

  StreamingOptions plain;
  plain.batch_size = kBatchSize;

  // Ground truth: uninterrupted run.
  RoundResult expected;
  {
    StreamingCollector collector(oracle, plain);
    for (uint64_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE(collector
                      .Offer(MakePlainBatch(BatchReports(oracle, b,
                                                         kBatchSize)))
                      .ok());
    }
    auto result = collector.FinishRound(n, 0, Calibration::kStandard);
    ASSERT_TRUE(result.ok());
    expected = std::move(*result);
  }

  // Crash run: checkpoint every 8 batches, die after 23.
  StreamingOptions durable = plain;
  durable.checkpoint.path = path;
  durable.checkpoint.every_batches = 8;
  {
    StreamingCollector collector(oracle, durable);
    for (uint64_t b = 0; b < 23; ++b) {
      ASSERT_TRUE(collector
                      .Offer(MakePlainBatch(BatchReports(oracle, b,
                                                         kBatchSize)))
                      .ok());
    }
    // Destruction = crash for everything after the last snapshot: the
    // checkpoint on disk has watermark 16, not 23.
  }

  auto snapshot = ReadCheckpoint(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->batches_consumed, 16u);

  // Recover and replay from the watermark.
  {
    StreamingCollector collector(oracle, durable);
    auto watermark = collector.RecoverRound(*snapshot);
    ASSERT_TRUE(watermark.ok()) << watermark.status().ToString();
    EXPECT_EQ(*watermark, 16u);
    for (uint64_t b = *watermark; b < kBatches; ++b) {
      ASSERT_TRUE(collector
                      .Offer(MakePlainBatch(BatchReports(oracle, b,
                                                         kBatchSize)))
                      .ok());
    }
    auto result = collector.FinishRound(n, 0, Calibration::kStandard);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->supports, expected.supports);
    EXPECT_EQ(result->estimates, expected.estimates);
    EXPECT_EQ(result->reports_decoded, expected.reports_decoded);
    EXPECT_EQ(result->reports_invalid, expected.reports_invalid);
    // A completed round must clean up its snapshot.
    EXPECT_EQ(ReadCheckpoint(path).status().code(), StatusCode::kNotFound);
  }
}

TEST(RoundJournal, WriteReadRoundTripAndCorruptionRejected) {
  const std::string path = TempPath("journal.ckpt.result");
  RoundJournal journal;
  journal.round_id = 5;
  journal.partition_index = 2;
  journal.partition_count = 4;
  journal.slice_lo = 96;
  journal.n = 120000;
  journal.n_fake = 7500;
  journal.calibration = 1;
  journal.reports_decoded = 123456;
  journal.reports_invalid = 77;
  journal.dummies_recognized = 3;
  journal.dummies_expected = 3;
  journal.supports = {9, 0, 12345, 2};
  ASSERT_TRUE(WriteRoundJournal(path, journal).ok());

  auto read = ReadRoundJournal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->round_id, journal.round_id);
  EXPECT_EQ(read->partition_index, journal.partition_index);
  EXPECT_EQ(read->partition_count, journal.partition_count);
  EXPECT_EQ(read->slice_lo, journal.slice_lo);
  EXPECT_EQ(read->n, journal.n);
  EXPECT_EQ(read->n_fake, journal.n_fake);
  EXPECT_EQ(read->calibration, journal.calibration);
  EXPECT_EQ(read->reports_decoded, journal.reports_decoded);
  EXPECT_EQ(read->supports, journal.supports);

  // A checkpoint is not a journal: magic must disagree.
  CheckpointState state = SampleState();
  ASSERT_TRUE(WriteCheckpoint(path, state).ok());
  EXPECT_EQ(ReadRoundJournal(path).status().code(), StatusCode::kDataLoss);

  // Every single-byte corruption of a valid journal is rejected.
  ASSERT_TRUE(WriteRoundJournal(path, journal).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> bytes(4096);
  bytes.resize(std::fread(bytes.data(), 1, bytes.size(), f));
  std::fclose(f);
  for (size_t i = 0; i < bytes.size(); i += 3) {
    std::vector<uint8_t> mutated = bytes;
    mutated[i] ^= 0x40;
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(mutated.data(), 1, mutated.size(), out);
    std::fclose(out);
    EXPECT_FALSE(ReadRoundJournal(path).ok()) << "byte " << i;
  }
  RemoveCheckpoint(path);
}

// The crash window the ROADMAP named: round closed (checkpoint gone),
// result never read. The journal written at the close sentinel must
// replay to the exact result, bitwise.
TEST(RoundJournal, FinalizedRoundReplaysBitwise) {
  const std::string path = TempPath("journal_replay.ckpt");
  RemoveCheckpoint(path);
  RemoveCheckpoint(RoundJournalPath(path));
  ldp::Grr grr(2.0, 32);
  StreamingOptions options;
  options.batch_size = 64;
  options.checkpoint.path = path;
  options.checkpoint.every_batches = 4;

  Rng rng(31337);
  std::vector<ldp::LdpReport> reports;
  for (int i = 0; i < 2000; ++i) {
    reports.push_back(grr.Encode(i % 32, &rng));
  }

  RoundResult live;
  {
    StreamingCollector collector(grr, options);
    ASSERT_TRUE(collector.OfferReports(reports).ok());
    auto result =
        collector.FinishRound(reports.size(), 0, Calibration::kStandard);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    live = std::move(*result);
  }
  // Round closed: mid-round snapshot gone, finalized journal present.
  EXPECT_EQ(ReadCheckpoint(path).status().code(), StatusCode::kNotFound);
  auto journal = ReadRoundJournal(RoundJournalPath(path));
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(journal->round_id, 0u);

  // "Restarted" collector replays the journal: bitwise-equal result and
  // the round id advanced past the journaled round.
  StreamingCollector recovered(grr, options);
  auto replay = recovered.RecoverFinalizedRound(*journal);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->supports, live.supports);
  EXPECT_EQ(replay->estimates, live.estimates);  // bitwise (exact ==)
  EXPECT_EQ(replay->reports_decoded, live.reports_decoded);
  EXPECT_EQ(replay->reports_invalid, live.reports_invalid);
  EXPECT_EQ(recovered.round_id(), 1u);

  // A journal for someone else's partition must be refused.
  RoundJournal foreign = *journal;
  foreign.partition_index = 1;
  foreign.partition_count = 2;
  EXPECT_EQ(recovered.RecoverFinalizedRound(foreign).status().code(),
            StatusCode::kFailedPrecondition);
  RemoveCheckpoint(path);
  RemoveCheckpoint(RoundJournalPath(path));
}

TEST(CheckpointRecovery, KillMidRoundRecoversBitwiseGrr) {
  ldp::Grr grr(2.0, 64);  // histogram fast path
  KillAndRecoverBitwise(grr, "grr");
}

TEST(CheckpointRecovery, KillMidRoundRecoversBitwiseSolh) {
  ldp::LocalHash solh(2.0, 300, 8, "SOLH");  // full domain-scan path
  KillAndRecoverBitwise(solh, "solh");
}

TEST(CheckpointRecovery, DummyMultisetSurvivesRecovery) {
  ldp::Grr grr(2.0, 32);
  const std::string path = TempPath("recover_dummies.ckpt");
  RemoveCheckpoint(path);

  StreamingOptions options;
  options.batch_size = 16;
  options.checkpoint.path = path;
  options.checkpoint.every_batches = 1;

  // Plant 4 dummies; deliver 2 before the crash and 2 after recovery.
  std::vector<ldp::LdpReport> dummies;
  for (uint32_t v = 0; v < 4; ++v) {
    ldp::LdpReport rep;
    rep.value = v;
    dummies.push_back(rep);
  }
  {
    StreamingCollector collector(grr, options);
    for (const auto& d : dummies) collector.ExpectDummy(d, 0);
    ASSERT_TRUE(
        collector.Offer(MakePlainBatch({dummies[0], dummies[1]})).ok());
  }
  auto snapshot = ReadCheckpoint(path);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->dummies_recognized, 2u);
  EXPECT_EQ(snapshot->dummies_remaining.size(), 2u);

  StreamingCollector collector(grr, options);
  ASSERT_TRUE(collector.RecoverRound(*snapshot).ok());
  ASSERT_TRUE(
      collector.Offer(MakePlainBatch({dummies[2], dummies[3]})).ok());
  auto result = collector.FinishRound(100, 0, Calibration::kStandard);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dummies_recognized, 4u);
  EXPECT_TRUE(result->spot_check_passed);
  // All four were dummies: nothing real was counted.
  EXPECT_EQ(result->reports_decoded, 0u);
  RemoveCheckpoint(path);
}

TEST(CheckpointRecovery, RecoverRequiresFreshCollector) {
  ldp::Grr grr(2.0, 16);
  StreamingOptions options;
  StreamingCollector collector(grr, options);
  ASSERT_TRUE(
      collector.Offer(MakePlainBatch(BatchReports(grr, 0, 8))).ok());
  CheckpointState state;
  state.supports.assign(16, 0);
  auto recovered = collector.RecoverRound(state);
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointRecovery, UnwritablePathAbortsTheRound) {
  ldp::Grr grr(2.0, 16);
  StreamingOptions options;
  options.batch_size = 8;
  options.checkpoint.path = "/nonexistent-dir/never.ckpt";
  options.checkpoint.every_batches = 1;
  StreamingCollector collector(grr, options);
  // The first consumed batch tries to snapshot and fails; the round is
  // aborted rather than silently running without durability.
  Status offered = collector.Offer(MakePlainBatch(BatchReports(grr, 0, 8)));
  ASSERT_TRUE(offered.ok());  // the enqueue itself succeeds
  auto result = collector.FinishRound(8, 0, Calibration::kStandard);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  // After the reset the collector works again (without the bad path it
  // would keep failing, so disable checkpointing via a fresh collector).
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// Connection-churn soak for the event-driven endpoint: thousands of
// rapid connect/send/disconnect cycles — clean queries, instant
// disconnects, and mid-frame aborts that die inside a header or a
// payload — against one server. The pins are the ones churn actually
// threatens: no fd leak (the /proc/self/fd population returns to its
// pre-churn count; server and clients share this process, so a leaked
// connection on either side shows up), lifecycle counters balance
// (every accepted connection is eventually counted closed — evictions
// included, since connections_closed counts all closes), and the
// endpoint still serves a clean round afterwards.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "ldp/grr.h"
#include "service/transport.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

size_t CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;  // includes the dirfd itself — identical bias per snapshot
  }
  ::closedir(dir);
  return count;
}

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SendAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // churn: a reset mid-send is part of the test
    sent += static_cast<size_t>(n);
  }
}

TEST(ConnectionChurn, ThousandsOfCyclesLeakNothingAndCountersBalance) {
  ldp::Grr grr(2.0, 16);
  CollectionServerOptions options;
  // Serial churn still bursts ahead of the accept loop on one core;
  // the backlog must absorb the lead or connects stall in SYN retry.
  options.listen_backlog = 1024;
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const size_t fds_before = CountOpenFds();
  ASSERT_GT(fds_before, 0u);

  Frame watermark;
  watermark.type = FrameType::kWatermark;
  const Bytes query_wire = EncodeFrame(watermark);
  Frame batch;
  batch.type = FrameType::kBatch;
  batch.round_id = 0;
  batch.payload = Bytes{0x02, 0x03, 0x07};
  const Bytes batch_wire = EncodeFrame(batch);

  constexpr int kQueryCycles = 1200;
  constexpr int kInstantCycles = 400;
  constexpr int kAbortCycles = 400;
  Rng rng(0xC11A);
  uint64_t connected = 0;

  for (int i = 0; i < kQueryCycles; ++i) {
    int fd = ConnectLoopback(port);
    ASSERT_GE(fd, 0) << "cycle " << i;
    ++connected;
    SendAll(fd, query_wire.data(), query_wire.size());
    if (i % 8 == 0) {
      // Periodically read the reply so the write path sees a live
      // reader; the other cycles close with the reply in flight.
      uint8_t reply[64];
      (void)::recv(fd, reply, sizeof(reply), 0);
    }
    ::close(fd);
  }
  for (int i = 0; i < kInstantCycles; ++i) {
    int fd = ConnectLoopback(port);
    ASSERT_GE(fd, 0);
    ++connected;
    ::close(fd);
  }
  for (int i = 0; i < kAbortCycles; ++i) {
    int fd = ConnectLoopback(port);
    ASSERT_GE(fd, 0);
    ++connected;
    // Die mid-frame: inside the header, or inside the payload — the
    // decoder is left holding a partial frame either way.
    const size_t cut = 1 + rng.UniformU64(batch_wire.size() - 1);
    SendAll(fd, batch_wire.data(), cut);
    ::close(fd);
  }

  // Every connect above completed the TCP handshake, so the server owes
  // one accept and one close for each; give the single-core loop time
  // to drain the backlog and reap.
  CollectionServerStats stats;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    stats = (*server)->stats();
    if (stats.connections_accepted >= connected &&
        stats.connections_closed == stats.connections_accepted) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(stats.connections_accepted, connected);
  EXPECT_EQ(stats.connections_closed, stats.connections_accepted);
  // Evictions are a subset of closes, never a separate population.
  EXPECT_LE(stats.evicted_idle + stats.evicted_slow + stats.evicted_overflow,
            stats.connections_closed);

  // closed == accepted means every server-side fd went through close();
  // the process fd population must be back where it started.
  size_t fds_after = CountOpenFds();
  for (int spin = 0; spin < 200 && fds_after != fds_before; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fds_after = CountOpenFds();
  }
  EXPECT_EQ(fds_after, fds_before);

  // The endpoint survived the churn: a clean round still closes.
  auto client = CollectorClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Rng report_rng(7);
  std::vector<ldp::LdpReport> reports;
  for (int i = 0; i < 200; ++i) {
    reports.push_back(grr.Encode(i % 16, &report_rng));
  }
  const uint64_t round = (*server)->round_id();
  ASSERT_TRUE((*client)->SendReports(round, grr, reports).ok());
  auto result = (*client)->FinishRound(round, 200, 0, Calibration::kStandard);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reports_decoded, 200u);
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// Multi-endpoint loopback end-to-end: a partitioned fleet behind the
// merge-of-supports coordinator must be indistinguishable — bitwise —
// from the single-node streaming path, for both partition modes and both
// oracles, at n >= 10^5; a single endpoint killed mid-round must recover
// from its checkpoint without disturbing the others; and misrouted
// traffic (wrong partition header, wrong value slice) must be rejected,
// never miscounted.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/shuffle_dp.h"
#include "ldp/grr.h"
#include "service/checkpoint.h"
#include "service/coordinator.h"
#include "service/transport.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace service {
namespace {

struct Fleet {
  std::vector<std::unique_ptr<CollectionServer>> servers;
  std::vector<EndpointAddress> endpoints;
};

Fleet StartFleet(const ldp::ScalarFrequencyOracle& oracle,
                 const PartitionMap& map,
                 const CollectionServerOptions& base) {
  Fleet fleet;
  for (uint32_t p = 0; p < map.partitions(); ++p) {
    CollectionServerOptions options = base;
    options.partition_map = map;
    options.partition_id = p;
    auto server = CollectionServer::Start(oracle, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    fleet.endpoints.push_back({"127.0.0.1", (*server)->port()});
    fleet.servers.push_back(std::move(*server));
  }
  return fleet;
}

void ExpectBitwiseEqualRounds(const RoundResult& distributed,
                              const RoundResult& local) {
  EXPECT_EQ(distributed.supports, local.supports);
  EXPECT_EQ(distributed.estimates, local.estimates);  // exact ==, bitwise
  EXPECT_EQ(distributed.reports_decoded, local.reports_decoded);
  EXPECT_EQ(distributed.reports_invalid, local.reports_invalid);
  EXPECT_TRUE(distributed.spot_check_passed);
}

// GRR picks the kByValue layout: each endpoint owns a contiguous value
// range and sees only the reports (and blanket fakes) it owns.
TEST(DistributedE2e, GrrByValueThreePartitionsBitwiseEqualsSingleNode) {
  const uint64_t n = 120000;  // >= 10^5 per the acceptance bar
  const uint64_t d = 64;      // planner chooses GRR here

  core::PrivacyGoals goals;
  core::ShuffleDpCollector::Options options;
  options.streaming.batch_size = 4096;
  auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
  ASSERT_TRUE(collector.ok()) << collector.status().ToString();
  ASSERT_TRUE((*collector)->plan().use_grr) << "config must select GRR";

  auto map = PartitionMap::Create((*collector)->oracle(),
                                  PartitionMode::kByValue, 3);
  ASSERT_TRUE(map.ok()) << map.status().ToString();

  std::vector<uint64_t> values(n);
  Rng data_rng(17);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = data_rng.Bernoulli(0.10) ? 0 : 1 + data_rng.UniformU64(d - 1);
  }

  CollectionServerOptions base;
  base.streaming = options.streaming;
  Fleet fleet = StartFleet((*collector)->oracle(), *map, base);
  ASSERT_EQ(fleet.servers.size(), 3u);

  auto routing = PartitionRoutingClient::Connect((*collector)->oracle(),
                                                 *map, fleet.endpoints);
  ASSERT_TRUE(routing.ok()) << routing.status().ToString();
  for (uint32_t p = 0; p < 3; ++p) EXPECT_EQ((*routing)->round_id(p), 0u);
  MergeCoordinator coordinator((*collector)->oracle(), routing->get());

  Rng distributed_rng(1234);
  auto distributed = (*collector)->CollectDistributed(
      values, &distributed_rng, routing->get(), &coordinator, 0);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

  Rng local_rng(1234);
  auto local = (*collector)->CollectStreaming(values, &local_rng);
  ASSERT_TRUE(local.ok()) << local.status().ToString();

  ExpectBitwiseEqualRounds(*distributed, *local);
  EXPECT_GT(distributed->reports_decoded, n);  // users + non-padding fakes
}

// SOLH reports support values across the whole domain, so the fleet
// partitions by client (round-robin batches) and the coordinator sums
// full-domain supports.
TEST(DistributedE2e, SolhByClientThreePartitionsBitwiseEqualsSingleNode) {
  const uint64_t n = 120000;
  const uint64_t d = 512;  // planner chooses SOLH here

  core::PrivacyGoals goals;
  core::ShuffleDpCollector::Options options;
  options.streaming.batch_size = 8192;
  auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
  ASSERT_TRUE(collector.ok()) << collector.status().ToString();
  ASSERT_FALSE((*collector)->plan().use_grr) << "config must select SOLH";

  auto map = PartitionMap::Create((*collector)->oracle(),
                                  PartitionMode::kByClient, 3);
  ASSERT_TRUE(map.ok()) << map.status().ToString();

  std::vector<uint64_t> values(n);
  Rng data_rng(18);
  for (uint64_t i = 0; i < n; ++i) values[i] = data_rng.UniformU64(d);

  CollectionServerOptions base;
  base.streaming = options.streaming;
  // SOLH support counting scans the domain per report; give the endpoint
  // consumers the shared pool so the heavyweight e2e stays fast. The
  // result is pool-size independent (pinned by streaming_determinism).
  base.streaming.pool = &GlobalThreadPool();
  Fleet fleet = StartFleet((*collector)->oracle(), *map, base);

  auto routing = PartitionRoutingClient::Connect((*collector)->oracle(),
                                                 *map, fleet.endpoints);
  ASSERT_TRUE(routing.ok()) << routing.status().ToString();
  MergeCoordinator coordinator((*collector)->oracle(), routing->get());

  Rng distributed_rng(99);
  auto distributed = (*collector)->CollectDistributed(
      values, &distributed_rng, routing->get(), &coordinator, 0);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

  Rng local_rng(99);
  auto local = (*collector)->CollectStreaming(values, &local_rng);
  ASSERT_TRUE(local.ok()) << local.status().ToString();

  ExpectBitwiseEqualRounds(*distributed, *local);
}

// Deterministic synthetic batch stream for the recovery test (self-seeded
// per batch, so any suffix replays bit-identically).
std::vector<uint64_t> BatchOrdinals(const ldp::ScalarFrequencyOracle& oracle,
                                    uint64_t b, size_t batch_size) {
  Rng rng(0xD157 + b);
  std::vector<uint64_t> ordinals;
  ordinals.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    ordinals.push_back(oracle.PackOrdinal(
        oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng)));
  }
  return ordinals;
}

TEST(DistributedE2e, KillOneEndpointMidRoundRecoversBitwise) {
  ldp::Grr grr(2.0, 48);
  auto map = PartitionMap::Create(grr, PartitionMode::kByValue, 3);
  ASSERT_TRUE(map.ok());
  const uint64_t kBatches = 60;
  const size_t kBatchSize = 512;
  const uint64_t n = kBatches * kBatchSize;
  const std::string ckpt =
      ::testing::TempDir() + "shuffledp_distributed_p1.ckpt";
  RemoveCheckpoint(ckpt);
  RemoveCheckpoint(RoundJournalPath(ckpt));

  CollectionServerOptions base;
  base.streaming.batch_size = kBatchSize;

  // Ground truth: one uninterrupted distributed round over a fresh fleet.
  RoundResult expected;
  {
    Fleet fleet = StartFleet(grr, *map, base);
    auto routing = PartitionRoutingClient::Connect(grr, *map,
                                                   fleet.endpoints);
    ASSERT_TRUE(routing.ok()) << routing.status().ToString();
    MergeCoordinator coordinator(grr, routing->get());
    for (uint64_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE(
          (*routing)->SendBatch(0, b, BatchOrdinals(grr, b, kBatchSize)).ok());
    }
    auto result = coordinator.FinishRound(0, n, 0, Calibration::kStandard);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected = std::move(*result);
  }

  // Interrupted run: partition 1 checkpoints, gets 35 batches, dies.
  CollectionServerOptions p1_options = base;
  p1_options.streaming.checkpoint.path = ckpt;
  p1_options.streaming.checkpoint.every_batches = 8;
  Fleet fleet;
  for (uint32_t p = 0; p < 3; ++p) {
    CollectionServerOptions options = p == 1 ? p1_options : base;
    options.partition_map = *map;
    options.partition_id = p;
    auto server = CollectionServer::Start(grr, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    fleet.endpoints.push_back({"127.0.0.1", (*server)->port()});
    fleet.servers.push_back(std::move(*server));
  }
  auto routing = PartitionRoutingClient::Connect(grr, *map, fleet.endpoints);
  ASSERT_TRUE(routing.ok()) << routing.status().ToString();

  const uint64_t kSent = 35;
  for (uint64_t b = 0; b < kSent; ++b) {
    ASSERT_TRUE(
        (*routing)->SendBatch(0, b, BatchOrdinals(grr, b, kBatchSize)).ok());
  }
  // TCP delivery is asynchronous: wait until partition 1 snapshotted at
  // least once so the "crash" reliably has something to recover from.
  for (int spin = 0; spin < 2000 && !ReadCheckpoint(ckpt).ok(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(ReadCheckpoint(ckpt).ok());
  // Kill exactly one endpoint mid-round. Destroy the object, not just
  // Shutdown(): a merely-shut-down server's consumer keeps draining
  // already-queued batches and snapshotting past what we read below.
  fleet.servers[1].reset();

  auto snapshot = ReadCheckpoint(ckpt);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_GT(snapshot->batches_consumed, 0u);
  ASSERT_LE(snapshot->batches_consumed, kSent);
  EXPECT_EQ(snapshot->partition_index, 1u);
  EXPECT_EQ(snapshot->partition_count, 3u);

  // Restart partition 1 with recovery and re-dial only that endpoint.
  {
    CollectionServerOptions options = p1_options;
    options.partition_map = *map;
    options.partition_id = 1;
    options.recover = true;
    auto server = CollectionServer::Start(grr, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    fleet.endpoints[1] = {"127.0.0.1", (*server)->port()};
    fleet.servers[1] = std::move(*server);
  }
  // Rebuild the routing client against the updated address: the
  // surviving endpoints' connections carry no round state (their batches
  // are already in the collectors), so reconnecting them is safe.
  routing = PartitionRoutingClient::Connect(grr, *map, fleet.endpoints);
  ASSERT_TRUE(routing.ok()) << routing.status().ToString();

  uint64_t recovered_round = 99;
  auto watermark = (*routing)->QueryWatermark(1, &recovered_round);
  ASSERT_TRUE(watermark.ok()) << watermark.status().ToString();
  EXPECT_EQ(*watermark, snapshot->batches_consumed);
  EXPECT_EQ(recovered_round, 0u);

  // Replay: partition 1 resumes at its watermark; the survivors already
  // consumed batches [0, kSent) and must not see them again.
  (*routing)->SetSkipBatches(0, kSent);
  (*routing)->SetSkipBatches(2, kSent);
  (*routing)->SetSkipBatches(1, *watermark);
  for (uint64_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(
        (*routing)->SendBatch(0, b, BatchOrdinals(grr, b, kBatchSize)).ok());
  }
  MergeCoordinator coordinator(grr, routing->get());
  auto result = coordinator.FinishRound(0, n, 0, Calibration::kStandard);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->supports, expected.supports);
  EXPECT_EQ(result->estimates, expected.estimates);
  EXPECT_EQ(result->reports_decoded, expected.reports_decoded);
  RemoveCheckpoint(ckpt);
  RemoveCheckpoint(RoundJournalPath(ckpt));
}

TEST(DistributedE2e, WrongPartitionTrafficIsRejected) {
  ldp::Grr grr(2.0, 30);
  auto map = PartitionMap::Create(grr, PartitionMode::kByValue, 3);
  ASSERT_TRUE(map.ok());
  CollectionServerOptions base;
  Fleet fleet = StartFleet(grr, *map, base);

  {
    // Wrong partition header: endpoint 0 owns partition 0, frame says 2.
    auto client = CollectorClient::Connect("127.0.0.1",
                                           fleet.endpoints[0].port);
    ASSERT_TRUE(client.ok());
    (*client)->set_partition(2);
    ASSERT_TRUE((*client)->SendOrdinals(0, grr, {1}).ok());
    auto result = (*client)->ReadRoundResult();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kProtocolViolation);
  }
  {
    // Right header, wrong contents: value 29 lives in partition 2's
    // slice, not partition 0's.
    auto client = CollectorClient::Connect("127.0.0.1",
                                           fleet.endpoints[0].port);
    ASSERT_TRUE(client.ok());
    auto hello = (*client)->Hello(*map, 0);
    ASSERT_TRUE(hello.ok()) << hello.status().ToString();
    ASSERT_TRUE((*client)->SendOrdinals(0, grr, {29}).ok());
    auto result = (*client)->ReadRoundResult();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kProtocolViolation);
  }
  {
    // The endpoint survives misrouted peers: a well-behaved round on
    // partition 0 still completes.
    auto client = CollectorClient::Connect("127.0.0.1",
                                           fleet.endpoints[0].port);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Hello(*map, 0).ok());
    ASSERT_TRUE((*client)->SendOrdinals(0, grr, {1, 2, 3}).ok());
    auto result = (*client)->FinishRound(0, 3, 0, Calibration::kNone);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->reports_decoded, 3u);
    EXPECT_TRUE(result->estimates.empty());  // raw supports under kNone
    PartitionSlice slice = map->SliceOf(0);
    EXPECT_EQ(result->supports.size(), slice.hi - slice.lo);
  }
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// Loopback endpoint end-to-end: the networked collection path must be
// indistinguishable — bitwise — from the in-process streaming path, at
// n >= 10^5, and a server killed mid-round must recover from its
// checkpoint and converge to the identical result.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/shuffle_dp.h"
#include "ldp/grr.h"
#include "service/checkpoint.h"
#include "service/transport.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

TEST(EndpointE2e, BitwiseIdenticalToInProcessAtScale) {
  const uint64_t n = 120000;  // >= 10^5 per the acceptance bar
  const uint64_t d = 512;

  core::PrivacyGoals goals;
  core::ShuffleDpCollector::Options options;
  options.streaming.batch_size = 8192;
  auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
  ASSERT_TRUE(collector.ok()) << collector.status().ToString();

  std::vector<uint64_t> values(n);
  Rng data_rng(7);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = data_rng.Bernoulli(0.10) ? 0 : 1 + data_rng.UniformU64(d - 1);
  }

  CollectionServerOptions server_options;
  server_options.streaming = options.streaming;
  auto server =
      CollectionServer::Start((*collector)->oracle(), server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Rng remote_rng(1234);
  auto remote = (*collector)->CollectRemote(values, &remote_rng,
                                            client->get(),
                                            (*server)->round_id());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  Rng local_rng(1234);
  auto local = (*collector)->CollectStreaming(values, &local_rng);
  ASSERT_TRUE(local.ok()) << local.status().ToString();

  EXPECT_EQ(remote->supports, local->supports);
  EXPECT_EQ(remote->estimates, local->estimates);  // bitwise (exact ==)
  EXPECT_EQ(remote->reports_decoded, local->reports_decoded);
  EXPECT_EQ(remote->reports_invalid, local->reports_invalid);
  EXPECT_GT(remote->reports_decoded, n);  // users + non-padding fakes
}

TEST(EndpointE2e, SecondRoundOnTheSameEndpointAlsoMatches) {
  const uint64_t n = 20000;
  const uint64_t d = 128;
  core::PrivacyGoals goals;
  core::ShuffleDpCollector::Options options;
  options.streaming.batch_size = 2048;
  auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
  ASSERT_TRUE(collector.ok());

  std::vector<uint64_t> values(n);
  Rng data_rng(8);
  for (uint64_t i = 0; i < n; ++i) values[i] = data_rng.UniformU64(d);

  CollectionServerOptions server_options;
  server_options.streaming = options.streaming;
  auto server =
      CollectionServer::Start((*collector)->oracle(), server_options);
  ASSERT_TRUE(server.ok());
  auto client = CollectorClient::Connect("localhost", (*server)->port());
  ASSERT_TRUE(client.ok());

  for (uint64_t seed : {11u, 22u}) {
    Rng remote_rng(seed);
    auto remote = (*collector)->CollectRemote(values, &remote_rng,
                                              client->get(),
                                              (*server)->round_id());
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    Rng local_rng(seed);
    auto local = (*collector)->CollectStreaming(values, &local_rng);
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(remote->supports, local->supports);
    EXPECT_EQ(remote->estimates, local->estimates);
  }
}

// Deterministic synthetic batch for the restart test (self-seeded like
// the protocol encode phases, so the client can replay any suffix).
std::vector<uint64_t> BatchOrdinals(const ldp::ScalarFrequencyOracle& oracle,
                                    uint64_t b, size_t batch_size) {
  Rng rng(0xFEED + b);
  std::vector<uint64_t> ordinals;
  ordinals.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    ordinals.push_back(oracle.PackOrdinal(
        oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng)));
  }
  return ordinals;
}

TEST(EndpointE2e, ServerRestartMidRoundConvergesToUninterruptedResult) {
  ldp::Grr grr(2.0, 64);
  const uint64_t kBatches = 60;
  const size_t kBatchSize = 256;
  const uint64_t n = kBatches * kBatchSize;
  const std::string ckpt = ::testing::TempDir() + "shuffledp_endpoint.ckpt";
  RemoveCheckpoint(ckpt);
  RemoveCheckpoint(RoundJournalPath(ckpt));

  CollectionServerOptions options;
  options.streaming.batch_size = kBatchSize;
  options.streaming.checkpoint.path = ckpt;
  options.streaming.checkpoint.every_batches = 8;

  // Ground truth: one uninterrupted server round.
  RemoteRoundResult expected;
  {
    CollectionServerOptions plain = options;
    plain.streaming.checkpoint.path =
        ::testing::TempDir() + "shuffledp_endpoint_plain.ckpt";
    auto server = CollectionServer::Start(grr, plain);
    ASSERT_TRUE(server.ok());
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    const uint64_t round = (*server)->round_id();
    for (uint64_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE((*client)
                      ->SendOrdinals(round, grr,
                                     BatchOrdinals(grr, b, kBatchSize))
                      .ok());
    }
    auto result =
        (*client)->FinishRound(round, n, 0, Calibration::kStandard);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected = std::move(*result);
    RemoveCheckpoint(plain.streaming.checkpoint.path);
  }

  // Interrupted run: send 35 batches, wait until at least one snapshot
  // hit disk, then kill the server.
  {
    auto server = CollectionServer::Start(grr, options);
    ASSERT_TRUE(server.ok());
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    const uint64_t round = (*server)->round_id();
    EXPECT_EQ(round, 0u);
    for (uint64_t b = 0; b < 35; ++b) {
      ASSERT_TRUE((*client)
                      ->SendOrdinals(round, grr,
                                     BatchOrdinals(grr, b, kBatchSize))
                      .ok());
    }
    // TCP delivery is asynchronous: wait until at least one snapshot is
    // on disk (i.e. >= every_batches batches were consumed) so the
    // "crash" below reliably has something to recover from. The
    // destructor's drain then consumes whatever else the kernel
    // delivered; the snapshot interval means the watermark is <= 32.
    for (int spin = 0; spin < 2000 && !ReadCheckpoint(ckpt).ok(); ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(ReadCheckpoint(ckpt).ok());
    (*server)->Shutdown();
  }

  auto snapshot = ReadCheckpoint(ckpt);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_GT(snapshot->batches_consumed, 0u);
  ASSERT_LE(snapshot->batches_consumed, 35u);

  // Recovered server: the client asks where to resume and replays the
  // suffix (batch self-seeding makes the replay bit-identical).
  {
    CollectionServerOptions recover_options = options;
    recover_options.recover = true;
    auto server = CollectionServer::Start(grr, recover_options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());

    uint64_t round = 0;
    auto watermark = (*client)->QueryWatermark(&round);
    ASSERT_TRUE(watermark.ok()) << watermark.status().ToString();
    EXPECT_EQ(*watermark, snapshot->batches_consumed);
    EXPECT_EQ(round, snapshot->round_id);

    for (uint64_t b = *watermark; b < kBatches; ++b) {
      ASSERT_TRUE((*client)
                      ->SendOrdinals(round, grr,
                                     BatchOrdinals(grr, b, kBatchSize))
                      .ok());
    }
    auto result =
        (*client)->FinishRound(round, n, 0, Calibration::kStandard);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->supports, expected.supports);
    EXPECT_EQ(result->estimates, expected.estimates);
    EXPECT_EQ(result->reports_decoded, expected.reports_decoded);
  }
  RemoveCheckpoint(ckpt);
  RemoveCheckpoint(RoundJournalPath(ckpt));
}

// The post-close crash window: the server finalized the round (journal
// written, checkpoint unlinked) and died before the client read the
// result. The restarted server must serve the journaled result for that
// round — bitwise — and still run new rounds afterwards.
TEST(EndpointE2e, RestartAfterRoundCloseServesJournaledResult) {
  ldp::Grr grr(2.0, 32);
  const std::string ckpt = ::testing::TempDir() + "shuffledp_journal.ckpt";
  RemoveCheckpoint(ckpt);
  RemoveCheckpoint(RoundJournalPath(ckpt));

  CollectionServerOptions options;
  options.streaming.batch_size = 128;
  options.streaming.checkpoint.path = ckpt;
  options.streaming.checkpoint.every_batches = 4;

  RemoteRoundResult original;
  {
    auto server = CollectionServer::Start(grr, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    for (uint64_t b = 0; b < 10; ++b) {
      ASSERT_TRUE((*client)
                      ->SendOrdinals(0, grr, BatchOrdinals(grr, b, 128))
                      .ok());
    }
    auto result = (*client)->FinishRound(0, 1280, 0, Calibration::kStandard);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    original = std::move(*result);
    (*server)->Shutdown();  // "crash" after close; client got the result,
                            // but a real crash may race the read
  }
  ASSERT_TRUE(ReadRoundJournal(RoundJournalPath(ckpt)).ok());

  {
    CollectionServerOptions recover_options = options;
    recover_options.recover = true;
    auto server = CollectionServer::Start(grr, recover_options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    // The worker resumed *after* the journaled round.
    EXPECT_EQ((*server)->round_id(), 1u);

    // Re-asking with *different* close parameters must be refused — a
    // journaled result is only valid for the parameters it closed with.
    {
      auto probe = CollectorClient::Connect("127.0.0.1", (*server)->port());
      ASSERT_TRUE(probe.ok());
      auto wrong = (*probe)->FinishRound(0, 9999, 0, Calibration::kStandard);
      ASSERT_FALSE(wrong.ok());
      EXPECT_EQ(wrong.status().code(), StatusCode::kProtocolViolation);
    }

    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    // Re-asking for round 0 replays the journal bitwise.
    auto replay = (*client)->FinishRound(0, 1280, 0, Calibration::kStandard);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_EQ(replay->supports, original.supports);
    EXPECT_EQ(replay->estimates, original.estimates);
    EXPECT_EQ(replay->reports_decoded, original.reports_decoded);

    // And the endpoint is not stuck in the past: round 1 works.
    ASSERT_TRUE((*client)->SendOrdinals(1, grr, {1, 2, 3}).ok());
    auto next = (*client)->FinishRound(1, 3, 0, Calibration::kStandard);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    EXPECT_EQ(next->reports_decoded, 3u);
  }
  RemoveCheckpoint(ckpt);
  RemoveCheckpoint(RoundJournalPath(ckpt));
}

// Segmented-store e2e: two rounds over one endpoint, the server killed
// while round 1 is mid-flight. kQuery must serve round 0's finalized
// result bitwise before AND after the restart, report round 1 as active
// with its durable watermark, and the replayed round 1 must match an
// uninterrupted run bitwise.
TEST(EndpointE2e, DurableStoreServesQueryAcrossRestartMultiRound) {
  ldp::Grr grr(2.0, 32);
  const uint64_t kBatches = 10;
  const size_t kBatchSize = 128;
  const uint64_t n = kBatches * kBatchSize;
  const std::string dir = ::testing::TempDir() + "shuffledp_e2e_store";
  ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);

  CollectionServerOptions options;
  options.streaming.batch_size = kBatchSize;
  options.streaming.round_store.dir = dir;
  options.streaming.round_store.sync_every_records = 1;
  options.streaming.round_store.compact_every_records = 4;

  // Ground truth: both rounds on a store-less endpoint. Round r's batch
  // b self-seeds as BatchOrdinals(100 * r + b), so any suffix replays
  // bit-identically.
  RemoteRoundResult expected[2];
  {
    CollectionServerOptions plain;
    plain.streaming.batch_size = kBatchSize;
    auto server = CollectionServer::Start(grr, plain);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    for (uint64_t r = 0; r < 2; ++r) {
      for (uint64_t b = 0; b < kBatches; ++b) {
        ASSERT_TRUE(
            (*client)
                ->SendOrdinals(r, grr,
                               BatchOrdinals(grr, 100 * r + b, kBatchSize))
                .ok());
      }
      auto result = (*client)->FinishRound(r, n, 0, Calibration::kStandard);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      expected[r] = std::move(*result);
    }
  }

  // Durable run: finish round 0, kill the server mid-round-1.
  {
    auto server = CollectionServer::Start(grr, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    for (uint64_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE((*client)
                      ->SendOrdinals(0, grr,
                                     BatchOrdinals(grr, b, kBatchSize))
                      .ok());
    }
    auto r0 = (*client)->FinishRound(0, n, 0, Calibration::kStandard);
    ASSERT_TRUE(r0.ok()) << r0.status().ToString();
    ASSERT_EQ(r0->supports, expected[0].supports);

    for (uint64_t b = 0; b < 6; ++b) {
      ASSERT_TRUE((*client)
                      ->SendOrdinals(1, grr,
                                     BatchOrdinals(grr, 100 + b, kBatchSize))
                      .ok());
    }

    // Live queries: TCP delivery is asynchronous, so spin until the
    // consumer accepted all six batches before pinning the watermark.
    RoundQuery live;
    for (int spin = 0; spin < 2000; ++spin) {
      auto q = (*client)->QueryRound(1);
      ASSERT_TRUE(q.ok()) << q.status().ToString();
      live = *q;
      if (live.watermark >= 6) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(live.status, RoundStatus::kActive);
    EXPECT_EQ(live.watermark, 6u);
    EXPECT_FALSE(live.durability_degraded);

    auto finalized = (*client)->QueryRound(0);
    ASSERT_TRUE(finalized.ok()) << finalized.status().ToString();
    EXPECT_EQ(finalized->status, RoundStatus::kFinalized);
    EXPECT_EQ(finalized->n, n);
    EXPECT_EQ(finalized->result.supports, expected[0].supports);
    EXPECT_EQ(finalized->result.estimates, expected[0].estimates);

    auto unknown = (*client)->QueryRound(99);
    ASSERT_TRUE(unknown.ok()) << unknown.status().ToString();
    EXPECT_EQ(unknown->status, RoundStatus::kUnknown);

    (*server)->Shutdown();  // crash with round 1 in flight
  }

  // Recovered endpoint: round 0 still served bitwise from the store,
  // round 1 resumed from its durable watermark and finished bitwise.
  {
    CollectionServerOptions recover_options = options;
    recover_options.recover = true;
    auto server = CollectionServer::Start(grr, recover_options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());

    auto finalized = (*client)->QueryRound(0);
    ASSERT_TRUE(finalized.ok()) << finalized.status().ToString();
    EXPECT_EQ(finalized->status, RoundStatus::kFinalized);
    EXPECT_FALSE(finalized->durability_degraded);
    EXPECT_EQ(finalized->result.supports, expected[0].supports);
    EXPECT_EQ(finalized->result.estimates, expected[0].estimates);
    EXPECT_EQ(finalized->result.reports_decoded, expected[0].reports_decoded);

    uint64_t round = 0;
    auto watermark = (*client)->QueryWatermark(&round);
    ASSERT_TRUE(watermark.ok()) << watermark.status().ToString();
    EXPECT_EQ(round, 1u);
    EXPECT_EQ(*watermark, 6u);  // sync_every_records=1: every batch durable

    auto live = (*client)->QueryRound(1);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    EXPECT_EQ(live->status, RoundStatus::kActive);
    EXPECT_EQ(live->watermark, *watermark);

    for (uint64_t b = *watermark; b < kBatches; ++b) {
      ASSERT_TRUE((*client)
                      ->SendOrdinals(1, grr,
                                     BatchOrdinals(grr, 100 + b, kBatchSize))
                      .ok());
    }
    auto r1 = (*client)->FinishRound(1, n, 0, Calibration::kStandard);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    EXPECT_EQ(r1->supports, expected[1].supports);
    EXPECT_EQ(r1->estimates, expected[1].estimates);
    EXPECT_EQ(r1->reports_decoded, expected[1].reports_decoded);

    auto closed = (*client)->QueryRound(1);
    ASSERT_TRUE(closed.ok()) << closed.status().ToString();
    EXPECT_EQ(closed->status, RoundStatus::kFinalized);
    EXPECT_EQ(closed->result.supports, expected[1].supports);
    EXPECT_EQ(closed->result.estimates, expected[1].estimates);
  }
  ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

TEST(EndpointE2e, WatermarkIsZeroOutsideTheRecoveredRound) {
  ldp::Grr grr(2.0, 16);
  CollectionServerOptions options;
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok());
  auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  // Fresh start: nothing to resume.
  uint64_t round = 99;
  auto watermark = (*client)->QueryWatermark(&round);
  ASSERT_TRUE(watermark.ok());
  EXPECT_EQ(*watermark, 0u);
  EXPECT_EQ(round, 0u);

  // After a round closes the answer must stay 0 (a stale watermark
  // paired with a later round would make a resuming client skip that
  // round's first batches).
  ASSERT_TRUE((*client)->SendOrdinals(0, grr, {1, 2, 3}).ok());
  ASSERT_TRUE(
      (*client)->FinishRound(0, 3, 0, Calibration::kStandard).ok());
  watermark = (*client)->QueryWatermark(&round);
  ASSERT_TRUE(watermark.ok());
  EXPECT_EQ(*watermark, 0u);
  EXPECT_EQ(round, 1u);
}

TEST(EndpointE2e, WrongRoundIdIsRejected) {
  ldp::Grr grr(2.0, 16);
  CollectionServerOptions options;
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok());
  auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      (*client)->SendOrdinals((*server)->round_id() + 5, grr, {1, 2}).ok());
  // The server answers with a kError frame and drops the connection; the
  // next read surfaces it.
  auto result = (*client)->ReadRoundResult();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kProtocolViolation);
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

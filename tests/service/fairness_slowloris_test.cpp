// Fairness under hostile slow clients: one slowloris (a byte-at-a-time
// sender that never completes a frame) and one stalled reader (floods
// queries, never drains replies) share the endpoint with two honest
// producers. The readiness loop must keep the honest round moving —
// the round closes inside normal client deadlines and its estimates
// are bitwise equal to a clean run with no attackers — while the slow
// clients are evicted by deadline: the slowloris by the idle timer
// (which refreshes on *completed frames*, so trickled bytes buy
// nothing) and the stalled reader by the bounded write queue's
// drop-slowest policy (or the no-progress write deadline, whichever
// trips first).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "ldp/grr.h"
#include "service/transport.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

int ConnectLoopback(uint16_t port, int rcvbuf = 0) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf > 0) {
    // Before connect: the window scale is negotiated at SYN time, so a
    // post-connect shrink would not actually throttle the peer.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

CollectionServerOptions ServerOptions() {
  CollectionServerOptions options;
  options.streaming.batch_size = 64;
  options.idle_timeout_ms = 150;
  options.write_timeout_ms = 400;
  options.write_queue_max_bytes = 4096;
  return options;
}

/// The honest workload: two producers stream seeded reports, barrier on
/// the watermark (their batches are ingested), then a coordinator
/// connection closes the round. Identical seeds give identical reports,
/// so two runs differ only in what else the endpoint was fighting off.
RemoteRoundResult RunHonestRound(CollectionServer* server,
                                 const ldp::Grr& grr) {
  constexpr int kProducers = 2;
  constexpr int kReportsEach = 1500;
  const uint64_t round = server->round_id();
  std::vector<std::thread> producers;
  std::atomic<int> failures{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto client = CollectorClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      Rng rng(1000 + p);
      std::vector<ldp::LdpReport> reports;
      for (int i = 0; i < kReportsEach; ++i) {
        reports.push_back(grr.Encode((p * 7 + i) % 32, &rng));
      }
      if (!(*client)->SendReports(round, grr, reports).ok() ||
          !(*client)->QueryWatermark().ok()) {
        ++failures;
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto finisher = CollectorClient::Connect("127.0.0.1", server->port());
  EXPECT_TRUE(finisher.ok()) << finisher.status().ToString();
  auto result = (*finisher)->FinishRound(round, kProducers * kReportsEach, 0,
                                         Calibration::kStandard);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : RemoteRoundResult{};
}

TEST(Fairness, SlowClientsAreEvictedWithoutDelayingTheHonestRound) {
  ldp::Grr grr(2.0, 32);

  // Reference: the same workload against an unmolested endpoint.
  RemoteRoundResult clean;
  {
    auto server = CollectionServer::Start(grr, ServerOptions());
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    clean = RunHonestRound(server->get(), grr);
  }
  ASSERT_EQ(clean.reports_decoded, 3000u);

  auto server = CollectionServer::Start(grr, ServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  // Slowloris: trickle a valid kBatch frame one byte every 20 ms. The
  // frame never completes inside the idle window, so the idle deadline
  // must fire no matter how steadily bytes arrive.
  std::atomic<bool> stop{false};
  std::thread slowloris([&] {
    Frame batch;
    batch.type = FrameType::kBatch;
    batch.payload = Bytes{0x02, 0x03, 0x07};
    const Bytes wire = EncodeFrame(batch);
    int fd = ConnectLoopback(port);
    if (fd < 0) return;
    size_t at = 0;
    while (!stop.load()) {
      if (::send(fd, wire.data() + at, 1, MSG_NOSIGNAL) <= 0) break;
      at = (at + 1) % wire.size();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::close(fd);
  });

  // Stalled reader: a tiny receive window, a flood of pipelined
  // watermark queries, and no reads — the replies back up through the
  // socket into the server's write queue until the 4 KiB bound (or the
  // no-progress write deadline) trips. The flood must outsize the
  // kernel's worst-case send buffer (tcp_wmem caps loopback sndbuf
  // auto-tuning at ~4 MiB), or the kernel absorbs every reply and the
  // server never sees backpressure at all.
  std::thread stalled([&] {
    Frame query;
    query.type = FrameType::kWatermark;
    const Bytes wire = EncodeFrame(query);
    Bytes flood;
    for (int i = 0; i < 200000; ++i) {
      flood.insert(flood.end(), wire.begin(), wire.end());
    }
    int fd = ConnectLoopback(port, /*rcvbuf=*/1024);
    if (fd < 0) return;
    size_t sent = 0;
    while (sent < flood.size()) {
      ssize_t n =
          ::send(fd, flood.data() + sent, flood.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) break;  // evicted mid-flood: mission accomplished
      sent += static_cast<size_t>(n);
    }
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::close(fd);
  });

  // Let both attackers attach before the honest traffic starts.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto t0 = std::chrono::steady_clock::now();
  RemoteRoundResult contested = RunHonestRound(server->get(), grr);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  // The honest round closed inside its ordinary deadlines — the slow
  // clients never got between the producers and the round — and its
  // numbers are bitwise the clean run's.
  EXPECT_LT(elapsed, 15000);
  EXPECT_EQ(contested.supports, clean.supports);
  EXPECT_EQ(contested.estimates, clean.estimates);
  EXPECT_EQ(contested.reports_decoded, clean.reports_decoded);
  EXPECT_EQ(contested.reports_invalid, clean.reports_invalid);

  // Both attackers are evicted by deadline, not tolerated forever.
  CollectionServerStats stats;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    stats = (*server)->stats();
    if (stats.evicted_idle >= 1 &&
        stats.evicted_overflow + stats.evicted_slow >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(stats.evicted_idle, 1u) << "slowloris outlived the idle deadline";
  EXPECT_GE(stats.evicted_overflow + stats.evicted_slow, 1u)
      << "stalled reader outlived the write bound";

  stop.store(true);
  slowloris.join();
  stalled.join();
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// FrameDecoder short-read fuzz: the event-driven server hands the
// decoder whatever recv() returns — which under load is an arbitrary
// re-chunking of the client's byte stream. Framing is pinned by
// replaying a golden corpus split at every byte boundary and at seeded
// random split points, and requiring the decode output bitwise equal to
// whole-stream delivery: same frames, same bytes, same error code at
// the same frame for hostile streams. If any split changes the result,
// the decoder has hidden state keyed on chunk boundaries — exactly the
// bug class a readiness loop's short reads would hit in production.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "ldp/grr.h"
#include "ldp/wire.h"
#include "service/transport.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

struct DecodedFrame {
  FrameType type;
  uint16_t partition;
  uint64_t round_id;
  Bytes payload;

  bool operator==(const DecodedFrame& o) const {
    return type == o.type && partition == o.partition &&
           round_id == o.round_id && payload == o.payload;
  }
};

/// Everything a feed schedule produces, in order, plus the terminal
/// status — the value the fuzz pins across re-chunkings.
struct DecodeOutcome {
  std::vector<DecodedFrame> frames;
  Status status = Status::OK();
  size_t buffered = 0;

  bool BitwiseEqual(const DecodeOutcome& o) const {
    return frames == o.frames && status.code() == o.status.code() &&
           status.message() == o.status.message() && buffered == o.buffered;
  }
};

/// Feeds `stream` in chunks cut at `splits` (sorted offsets into the
/// stream) and drains the decoder after every chunk — the event loop's
/// read-then-process cadence. Stops feeding on the first error, like
/// the server does.
DecodeOutcome FeedWithSplits(const Bytes& stream,
                             const std::vector<size_t>& splits) {
  DecodeOutcome out;
  FrameDecoder decoder;
  size_t begin = 0;
  std::vector<size_t> cuts = splits;
  cuts.push_back(stream.size());
  for (size_t cut : cuts) {
    if (cut > begin) {
      out.status = decoder.Feed(stream.data() + begin, cut - begin);
      begin = cut;
    }
    Frame frame;
    while (decoder.Next(&frame)) {
      out.frames.push_back(DecodedFrame{frame.type, frame.partition,
                                        frame.round_id,
                                        std::move(frame.payload)});
    }
    if (!out.status.ok()) break;
  }
  out.buffered = decoder.buffered_bytes();
  return out;
}

Frame MakeFrame(FrameType type, uint16_t partition, uint64_t round_id,
                Bytes payload) {
  Frame frame;
  frame.type = type;
  frame.partition = partition;
  frame.round_id = round_id;
  frame.payload = std::move(payload);
  return frame;
}

/// A corpus covering every frame type the wire carries, empty and
/// non-empty payloads, the doc's golden vector, and one payload large
/// enough that most random split points land inside it.
Bytes GoldenCorpus() {
  ldp::Grr grr(2.0, 11);
  Rng rng(0xC0FFEE);
  std::vector<Frame> frames;
  frames.push_back(
      MakeFrame(FrameType::kBatch, 0, 5, ldp::SerializeOrdinals(grr, {3, 7})));
  frames.push_back(MakeFrame(FrameType::kQuery, 0, 3, Bytes{}));
  frames.push_back(MakeFrame(FrameType::kWatermark, 2, 9, Bytes{0x2A}));
  {
    ByteWriter w;
    w.PutVarint(17);  // producer batch index
    Bytes indexed = w.Release();
    Bytes body = ldp::SerializeOrdinals(grr, {0, 10, 4});
    indexed.insert(indexed.end(), body.begin(), body.end());
    frames.push_back(MakeFrame(FrameType::kBatchIndexed, 1, 6,
                               std::move(indexed)));
  }
  {
    RemoteRoundResult result;
    result.supports = {5, 0, 123456789, 42};
    result.estimates = {0.5, -0.001, 0.25, 0.125};
    result.reports_decoded = 1000;
    result.reports_invalid = 7;
    frames.push_back(MakeFrame(FrameType::kResult, 3, 8,
                               SerializeRoundResult(result)));
  }
  frames.push_back(MakeFrame(FrameType::kBatch, 0, 12, Bytes{}));
  {
    Bytes big(613);
    for (auto& b : big) b = static_cast<uint8_t>(rng.NextU64());
    frames.push_back(MakeFrame(FrameType::kHello, 0xBEEF, 1, std::move(big)));
  }
  frames.push_back(
      MakeFrame(FrameType::kFinish, 1, 12, Bytes{0x80, 0x08, 0x00, 0x00}));

  Bytes stream;
  for (const Frame& frame : frames) {
    Bytes wire = EncodeFrame(frame);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  return stream;
}

TEST(FrameDecoderFuzz, EveryByteBoundarySplitMatchesWholeStream) {
  const Bytes stream = GoldenCorpus();
  const DecodeOutcome reference = FeedWithSplits(stream, {});
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_EQ(reference.frames.size(), 8u);
  ASSERT_EQ(reference.buffered, 0u);

  for (size_t split = 0; split <= stream.size(); ++split) {
    DecodeOutcome torn = FeedWithSplits(stream, {split});
    EXPECT_TRUE(torn.BitwiseEqual(reference)) << "split=" << split;
  }
}

TEST(FrameDecoderFuzz, SeededRandomSplitPointsMatchWholeStream) {
  const Bytes stream = GoldenCorpus();
  const DecodeOutcome reference = FeedWithSplits(stream, {});
  ASSERT_TRUE(reference.status.ok());

  Rng rng(0xF5);  // seeded: a failure names a reproducible schedule
  for (int iter = 0; iter < 300; ++iter) {
    const size_t cuts = 1 + rng.UniformU64(12);
    std::vector<size_t> splits;
    for (size_t i = 0; i < cuts; ++i) {
      splits.push_back(rng.UniformU64(stream.size() + 1));
    }
    std::sort(splits.begin(), splits.end());
    DecodeOutcome torn = FeedWithSplits(stream, splits);
    EXPECT_TRUE(torn.BitwiseEqual(reference)) << "iter=" << iter;
  }
}

TEST(FrameDecoderFuzz, OneByteAtATimeMatchesWholeStream) {
  const Bytes stream = GoldenCorpus();
  const DecodeOutcome reference = FeedWithSplits(stream, {});
  std::vector<size_t> every_byte;
  for (size_t i = 1; i < stream.size(); ++i) every_byte.push_back(i);
  EXPECT_TRUE(FeedWithSplits(stream, every_byte).BitwiseEqual(reference));
}

// Hostile streams must fail identically regardless of chunking: same
// error code, same message, same frames decoded before the poison.
TEST(FrameDecoderFuzz, ErrorCorpusFailsIdenticallyAtEverySplit) {
  const Bytes clean = GoldenCorpus();
  std::vector<std::pair<std::string, Bytes>> corpus;
  {
    Bytes bad = clean;
    bad[0] ^= 0xFF;  // magic of the first frame
    corpus.emplace_back("bad-magic-first", std::move(bad));
  }
  {
    Bytes bad = clean;
    bad[kFrameHeaderBytes + 3 + 4] = kWireVersion + 1;  // 2nd frame version
    corpus.emplace_back("version-skew-mid", std::move(bad));
  }
  {
    Bytes bad = clean;
    bad[kFrameHeaderBytes + 1] ^= 0x01;  // payload byte: CRC mismatch
    corpus.emplace_back("crc-flip-payload", std::move(bad));
  }
  {
    Bytes bad = clean;
    // First frame's length field lies: 0xFFFFFFFF bytes allegedly follow.
    bad[16] = bad[17] = bad[18] = bad[19] = 0xFF;
    corpus.emplace_back("length-cap-lie", std::move(bad));
  }
  {
    Bytes bad = clean;
    bad[5] = 0x7F;  // unknown frame type
    corpus.emplace_back("unknown-type", std::move(bad));
  }

  Rng rng(0xD0A);
  for (auto& [name, stream] : corpus) {
    const DecodeOutcome reference = FeedWithSplits(stream, {});
    ASSERT_FALSE(reference.status.ok()) << name;
    for (size_t split = 0; split <= stream.size(); ++split) {
      DecodeOutcome torn = FeedWithSplits(stream, {split});
      EXPECT_EQ(torn.frames, reference.frames) << name << " split=" << split;
      EXPECT_EQ(torn.status.code(), reference.status.code())
          << name << " split=" << split;
      EXPECT_EQ(torn.status.message(), reference.status.message())
          << name << " split=" << split;
    }
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<size_t> splits;
      for (int i = 0; i < 7; ++i) {
        splits.push_back(rng.UniformU64(stream.size() + 1));
      }
      std::sort(splits.begin(), splits.end());
      DecodeOutcome torn = FeedWithSplits(stream, splits);
      EXPECT_EQ(torn.frames, reference.frames) << name << " iter=" << iter;
      EXPECT_EQ(torn.status.code(), reference.status.code())
          << name << " iter=" << iter;
    }
  }
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

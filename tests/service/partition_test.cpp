// PartitionMap unit tests: ownership is total and consistent with the
// slices, routing preserves the report multiset, the merge is the exact
// inverse of the split, and the handshake codec rejects hostile bytes.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "service/partition.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

TEST(PartitionMap, ByValueRequiresValueEqualityOracle) {
  ldp::Grr grr(2.0, 64);
  ldp::LocalHash solh(2.0, 64, 16, "SOLH");
  EXPECT_TRUE(PartitionMap::Create(grr, PartitionMode::kByValue, 4).ok());
  EXPECT_FALSE(PartitionMap::Create(solh, PartitionMode::kByValue, 4).ok());
  EXPECT_TRUE(PartitionMap::Create(solh, PartitionMode::kByClient, 4).ok());
  EXPECT_FALSE(PartitionMap::Create(grr, PartitionMode::kByValue, 0).ok());
  EXPECT_FALSE(PartitionMap::Create(grr, PartitionMode::kByValue, 65).ok());
}

TEST(PartitionMap, SlicesTileTheDomainAndOwnershipMatches) {
  ldp::Grr grr(2.0, 37);  // deliberately not divisible by P
  for (uint32_t partitions : {1u, 3u, 5u, 37u}) {
    auto map = PartitionMap::Create(grr, PartitionMode::kByValue, partitions);
    ASSERT_TRUE(map.ok());
    uint64_t covered = 0;
    for (uint32_t p = 0; p < partitions; ++p) {
      PartitionSlice slice = map->SliceOf(p);
      EXPECT_EQ(slice.index, p);
      EXPECT_EQ(slice.count, partitions);
      EXPECT_EQ(slice.lo, covered);
      covered = slice.hi;
      for (uint64_t v = slice.lo; v < slice.hi; ++v) {
        EXPECT_EQ(map->OwnerOfOrdinal(v), p) << "v=" << v;
      }
    }
    EXPECT_EQ(covered, 37u);  // tiles exactly, no gaps or overlap
    // Padding-region ordinals (>= d) also have exactly one owner.
    for (uint64_t ordinal = 37; ordinal < 64; ++ordinal) {
      EXPECT_LT(map->OwnerOfOrdinal(ordinal), partitions);
    }
  }
}

TEST(PartitionMap, RoutePreservesTheMultisetAndMergeInverts) {
  ldp::Grr grr(2.0, 100);
  Rng rng(7);
  std::vector<uint64_t> ordinals;
  for (int i = 0; i < 5000; ++i) {
    ordinals.push_back(rng.UniformU64(128));  // incl. padding region
  }

  for (PartitionMode mode :
       {PartitionMode::kByValue, PartitionMode::kByClient}) {
    auto map = PartitionMap::Create(grr, mode, 4);
    ASSERT_TRUE(map.ok());
    std::map<uint64_t, uint64_t> original;
    for (uint64_t o : ordinals) ++original[o];

    std::map<uint64_t, uint64_t> routed;
    auto groups = map->Route(/*batch_index=*/3, ordinals);
    ASSERT_EQ(groups.size(), 4u);
    for (uint32_t p = 0; p < 4; ++p) {
      for (uint64_t o : groups[p]) {
        ++routed[o];
        if (mode == PartitionMode::kByValue) {
          EXPECT_EQ(map->OwnerOfOrdinal(o), p);
        }
      }
    }
    EXPECT_EQ(routed, original);
    if (mode == PartitionMode::kByClient) {
      // Whole batch to batch_index % P, everything else empty.
      EXPECT_EQ(groups[3].size(), ordinals.size());
    }
  }
}

TEST(PartitionMap, MergeSupportsByValueConcatenatesByClientSums) {
  ldp::Grr grr(2.0, 10);
  {
    auto map = PartitionMap::Create(grr, PartitionMode::kByValue, 3);
    ASSERT_TRUE(map.ok());
    // Slices of d=10 over 3: [0,3) [3,6) [6,10).
    auto merged = map->MergeSupports({{1, 2, 3}, {4, 5, 6}, {7, 8, 9, 10}});
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(*merged,
              (std::vector<uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
    // Wrong slice length fails loudly.
    EXPECT_FALSE(
        map->MergeSupports({{1, 2}, {4, 5, 6}, {7, 8, 9, 10}}).ok());
    EXPECT_FALSE(map->MergeSupports({{1, 2, 3}, {4, 5, 6}}).ok());
  }
  {
    auto map = PartitionMap::Create(grr, PartitionMode::kByClient, 2);
    ASSERT_TRUE(map.ok());
    std::vector<uint64_t> a = {1, 0, 2, 0, 3, 0, 4, 0, 5, 0};
    std::vector<uint64_t> b = {0, 9, 0, 8, 0, 7, 0, 6, 0, 5};
    auto merged = map->MergeSupports({a, b});
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(*merged,
              (std::vector<uint64_t>{1, 9, 2, 8, 3, 7, 4, 6, 5, 5}));
    EXPECT_FALSE(map->MergeSupports({{1, 2}, b}).ok());
  }
}

TEST(PartitionMap, HandshakeCodecRoundTripsAndRejectsHostileBytes) {
  ldp::Grr grr(2.0, 300);
  auto map = PartitionMap::Create(grr, PartitionMode::kByValue, 7);
  ASSERT_TRUE(map.ok());
  Bytes wire = SerializePartitionMap(*map);
  auto parsed = ParsePartitionMap(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == *map);
  EXPECT_EQ(parsed->partitions(), 7u);
  EXPECT_EQ(parsed->domain_size(), 300u);
  EXPECT_EQ(parsed->packed_bits(), grr.PackedBits());

  for (size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + len);
    EXPECT_FALSE(ParsePartitionMap(truncated).ok()) << "len=" << len;
  }
  {
    Bytes bad = wire;
    bad[0] = 9;  // unknown mode
    EXPECT_FALSE(ParsePartitionMap(bad).ok());
  }
  {
    ByteWriter w;
    w.PutU8(0);
    w.PutVarint(0);  // zero partitions
    w.PutVarint(300);
    w.PutU8(9);
    EXPECT_FALSE(ParsePartitionMap(w.data()).ok());
  }
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// Cross-round pipelining: CloseRound() returns immediately and round
// k+1 ingest proceeds while round k drains through the double-buffered
// counters — with results bitwise identical to fully sequential
// FinishRound() rounds, error isolation, and a clean reset after a
// failed round.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "service/streaming_collector.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace service {
namespace {

std::vector<ldp::LdpReport> RoundReports(
    const ldp::ScalarFrequencyOracle& oracle, uint64_t round, uint64_t n) {
  Rng rng(0xABCD + round);
  std::vector<ldp::LdpReport> reports;
  reports.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    reports.push_back(
        oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng));
  }
  return reports;
}

void PipelinedMatchesSequential(const ldp::ScalarFrequencyOracle& oracle,
                                ThreadPool* pool) {
  const int kRounds = 4;
  const uint64_t kN = 3000;
  StreamingOptions options;
  options.batch_size = 256;
  options.pool = pool;

  // Sequential ground truth.
  std::vector<RoundResult> expected;
  {
    StreamingCollector collector(oracle, options);
    for (int r = 0; r < kRounds; ++r) {
      ASSERT_TRUE(
          collector.OfferReports(RoundReports(oracle, r, kN)).ok());
      auto result = collector.FinishRound(kN, 0, Calibration::kStandard);
      ASSERT_TRUE(result.ok());
      expected.push_back(std::move(*result));
    }
  }

  // Pipelined: all rounds offered back-to-back, futures collected last.
  {
    StreamingCollector collector(oracle, options);
    EXPECT_EQ(collector.round_id(), 0u);
    std::vector<std::future<Result<RoundResult>>> futures;
    for (int r = 0; r < kRounds; ++r) {
      ASSERT_TRUE(
          collector.OfferReports(RoundReports(oracle, r, kN)).ok());
      futures.push_back(
          collector.CloseRound(kN, 0, Calibration::kStandard));
    }
    for (int r = 0; r < kRounds; ++r) {
      auto result = futures[r].get();
      ASSERT_TRUE(result.ok()) << "round " << r;
      EXPECT_EQ(result->supports, expected[r].supports) << "round " << r;
      EXPECT_EQ(result->estimates, expected[r].estimates) << "round " << r;
      EXPECT_EQ(result->reports_decoded, expected[r].reports_decoded);
    }
    EXPECT_EQ(collector.round_id(), static_cast<uint64_t>(kRounds));
  }
}

TEST(PipelinedRounds, MatchesSequentialGrrSerial) {
  ldp::Grr grr(2.0, 64);
  PipelinedMatchesSequential(grr, nullptr);
}

TEST(PipelinedRounds, MatchesSequentialGrrPooled) {
  ldp::Grr grr(2.0, 64);
  ThreadPool pool(4);
  PipelinedMatchesSequential(grr, &pool);
}

TEST(PipelinedRounds, MatchesSequentialSolhPooled) {
  ldp::LocalHash solh(2.0, 200, 8, "SOLH");
  ThreadPool pool(4);
  PipelinedMatchesSequential(solh, &pool);
}

TEST(PipelinedRounds, DummiesBindToTheRoundBeingFed) {
  ldp::Grr grr(2.0, 32);
  StreamingOptions options;
  options.batch_size = 64;
  StreamingCollector collector(grr, options);

  ldp::LdpReport dummy;
  dummy.value = 3;

  // Round 0: one dummy planted and delivered.
  collector.ExpectDummy(dummy, 0);
  ASSERT_TRUE(collector.OfferReports({dummy}).ok());
  auto round0 = collector.CloseRound(10, 0, Calibration::kStandard);

  // Round 1 (offered while round 0 may still be draining): the same
  // report arrives but no dummy is expected — it must be counted, not
  // stripped by round 0's registration.
  ASSERT_TRUE(collector.OfferReports({dummy}).ok());
  auto round1 = collector.CloseRound(10, 0, Calibration::kStandard);

  auto r0 = round0.get();
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0->dummies_recognized, 1u);
  EXPECT_TRUE(r0->spot_check_passed);
  EXPECT_EQ(r0->reports_decoded, 0u);

  auto r1 = round1.get();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->dummies_recognized, 0u);
  EXPECT_EQ(r1->reports_decoded, 1u);
}

TEST(PipelinedRounds, FailedRoundPoisonsPipelineUntilReset) {
  ldp::Grr grr(2.0, 16);
  StreamingOptions options;
  options.batch_size = 8;
  StreamingCollector collector(grr, options);

  ReportBatch poison;
  poison.count = 1;
  poison.decode = [](uint64_t) -> Result<DecodedRow> {
    return Status::CryptoError("share reconstruction failed");
  };
  ASSERT_TRUE(collector.Offer(std::move(poison)).ok());
  auto failed = collector.CloseRound(1, 0, Calibration::kStandard).get();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCryptoError);

  // Un-reset, the pipeline keeps reporting the failure...
  EXPECT_FALSE(
      collector.Offer(MakePlainBatch(RoundReports(grr, 0, 8))).ok());

  // ...and after ResetAfterError it serves clean rounds again.
  collector.ResetAfterError();
  ASSERT_TRUE(collector.OfferReports(RoundReports(grr, 1, 100)).ok());
  auto recovered = collector.FinishRound(100, 0, Calibration::kStandard);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->reports_decoded, 100u);
}

TEST(PipelinedRounds, FinishRoundAfterFailureResetsAutomatically) {
  ldp::Grr grr(2.0, 16);
  StreamingOptions options;
  StreamingCollector collector(grr, options);

  ReportBatch poison;
  poison.count = 1;
  poison.decode = [](uint64_t) -> Result<DecodedRow> {
    return Status::DataLoss("torn payload");
  };
  ASSERT_TRUE(collector.Offer(std::move(poison)).ok());
  auto failed = collector.FinishRound(1, 0, Calibration::kStandard);
  ASSERT_FALSE(failed.ok());

  // FinishRound already reset; the next round must work without any
  // explicit recovery call.
  ASSERT_TRUE(collector.OfferReports(RoundReports(grr, 2, 50)).ok());
  auto ok = collector.FinishRound(50, 0, Calibration::kStandard);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->reports_decoded, 50u);
}

TEST(PipelinedRounds, EmptyRoundFinishesCleanly) {
  ldp::Grr grr(2.0, 16);
  StreamingOptions options;
  StreamingCollector collector(grr, options);
  auto result = collector.FinishRound(10, 0, Calibration::kStandard);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reports_decoded, 0u);
  EXPECT_EQ(result->supports, std::vector<uint64_t>(16, 0));
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

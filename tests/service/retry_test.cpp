// Retry policy and fault-injection determinism: the error taxonomy that
// separates transient transport failures from fatal protocol errors, the
// exact backoff sequence a fixed seed produces (recovery timing must be
// reproducible or the chaos tests cannot be), and the scripted fault
// injector's skip/count windows and seeded probability stream.

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "service/fault_injection.h"
#include "service/retry.h"
#include "util/status.h"

namespace shuffledp {
namespace service {
namespace {

TEST(RetryTaxonomy, TransientCodesAreRetryable) {
  EXPECT_TRUE(IsRetryableTransportError(Status::Unavailable("peer down")));
  EXPECT_TRUE(
      IsRetryableTransportError(Status::DeadlineExceeded("read timed out")));
}

TEST(RetryTaxonomy, FatalCodesAreNot) {
  // CRC mismatch / malformed frames surface as these — retrying cannot
  // fix corrupted or misrouted data, so the taxonomy must refuse them.
  EXPECT_FALSE(IsRetryableTransportError(Status::DataLoss("crc mismatch")));
  EXPECT_FALSE(
      IsRetryableTransportError(Status::ProtocolViolation("version skew")));
  EXPECT_FALSE(
      IsRetryableTransportError(Status::InvalidArgument("bad partition")));
  EXPECT_FALSE(IsRetryableTransportError(Status::Internal("io error")));
  EXPECT_FALSE(IsRetryableTransportError(Status::OK()));
}

TEST(BackoffSchedule, ExactSequenceUnderFixedSeed) {
  // Golden sequences: any drift in the jitter draw order or the backoff
  // arithmetic is a behavior change for every recovery in the fleet and
  // must be deliberate.
  {
    BackoffSchedule s(RetryPolicy{}, 0x1234);
    const std::vector<uint64_t> expected = {22,  39,  80,   135,
                                            349, 705, 1132, 2016};
    for (uint64_t want : expected) EXPECT_EQ(s.NextDelayMs(), want);
  }
  {
    RetryPolicy p;
    p.initial_backoff_ms = 5;
    p.max_backoff_ms = 40;
    p.multiplier = 3.0;
    p.jitter = 0.5;
    p.seed = 42;
    BackoffSchedule s(p, 7);
    const std::vector<uint64_t> expected = {3, 7, 27, 45, 35, 49, 41, 58};
    for (uint64_t want : expected) EXPECT_EQ(s.NextDelayMs(), want);
  }
}

TEST(BackoffSchedule, ZeroJitterIsPureCappedExponential) {
  RetryPolicy p;
  p.jitter = 0.0;  // defaults otherwise: 20ms * 2^k capped at 2000ms
  BackoffSchedule s(p, 0);
  const std::vector<uint64_t> expected = {20,  40,  80,   160,
                                          320, 640, 1280, 2000};
  for (uint64_t want : expected) EXPECT_EQ(s.NextDelayMs(), want);
}

TEST(BackoffSchedule, SameSaltReplaysDifferentSaltDiverges) {
  BackoffSchedule a(RetryPolicy{}, 99);
  BackoffSchedule b(RetryPolicy{}, 99);
  BackoffSchedule c(RetryPolicy{}, 100);
  bool diverged = false;
  for (int i = 0; i < 16; ++i) {
    const uint64_t da = a.NextDelayMs();
    EXPECT_EQ(da, b.NextDelayMs());
    diverged = diverged || da != c.NextDelayMs();
  }
  EXPECT_TRUE(diverged);
  EXPECT_EQ(a.retries(), 16u);
}

TEST(BackoffSchedule, JitterStaysInsideBand) {
  RetryPolicy p;
  p.jitter = 0.2;
  BackoffSchedule s(p, 5);
  uint64_t base = p.initial_backoff_ms;
  for (int i = 0; i < 12; ++i) {
    const uint64_t delay = s.NextDelayMs();
    EXPECT_GE(delay, static_cast<uint64_t>(base * 0.8) - 1);
    EXPECT_LE(delay, static_cast<uint64_t>(base * 1.2) + 1);
    base = std::min<uint64_t>(p.max_backoff_ms, base * 2);
  }
}

TEST(BackoffSchedule, CoordinatorSaltDerivationGoldenPins) {
  // The coordinator salts each recovery stream with
  // (partition << 32) ^ round_id (see Coordinator::RecoverEndpoint).
  // Pin the exact delay sequences those derived salts produce: a change
  // to either the derivation or the jitter stream re-times every fleet
  // recovery and must show up here as a deliberate golden update.
  auto seq = [](uint64_t p, uint64_t round, size_t len) {
    BackoffSchedule s(RetryPolicy{},
                      (static_cast<uint64_t>(p) << 32) ^ round);
    std::vector<uint64_t> out;
    for (size_t i = 0; i < len; ++i) out.push_back(s.NextDelayMs());
    return out;
  };
  EXPECT_EQ(seq(0, 0, 8),
            (std::vector<uint64_t>{20, 47, 77, 156, 343, 698, 1040, 2363}));
  EXPECT_EQ(seq(0, 1, 8),
            (std::vector<uint64_t>{17, 38, 84, 159, 346, 636, 1111, 1769}));
  EXPECT_EQ(seq(1, 0, 8),
            (std::vector<uint64_t>{23, 34, 68, 147, 286, 748, 1418, 1809}));
  EXPECT_EQ(seq(3, 7, 8),
            (std::vector<uint64_t>{16, 41, 82, 170, 381, 564, 1279, 1787}));
  // The partition lives in the high word, the round in the low word:
  // (p=1, round=0) and (p=0, round=1) must salt distinct streams (a
  // collision would lock-step recoveries of different partitions).
  EXPECT_NE(seq(1, 0, 8), seq(0, 1, 8));
}

TEST(BackoffSchedule, CapSaturationTailGoldenPin) {
  // Once the exponential passes max_backoff_ms the schedule must settle
  // into a jittered band around the cap — never grow further, never
  // collapse. Pin the full 24-draw sequence including the saturated
  // tail, and bound the tail inside the jitter band analytically.
  RetryPolicy p;
  p.jitter = 0.25;
  p.seed = 9;
  BackoffSchedule s(p, 0xABCD);
  const std::vector<uint64_t> expected = {
      24,  48,   78,   169,  251,  583,  1062, 1613,
      1686, 1726, 1741, 2194, 2310, 1771, 1892, 1638,
      1863, 2460, 1741, 2019, 2418, 1695, 2431, 1633};
  std::vector<uint64_t> got;
  for (size_t i = 0; i < expected.size(); ++i) got.push_back(s.NextDelayMs());
  EXPECT_EQ(got, expected);
  // Saturated tail (base pinned at the 2000ms cap): every delay inside
  // [cap*(1-jitter), cap*(1+jitter)].
  for (size_t i = 8; i < got.size(); ++i) {
    EXPECT_GE(got[i], 1500u) << "draw " << i;
    EXPECT_LE(got[i], 2500u) << "draw " << i;
  }
  EXPECT_EQ(s.retries(), expected.size());
}

TEST(FaultInjector, SkipCountWindowFiresExactly) {
  FaultInjector fi(1);
  FaultRule rule;
  rule.op = FaultOp::kSend;
  rule.skip = 2;
  rule.count = 3;
  rule.action = FaultAction::FailErrno(ECONNRESET);
  fi.AddRule(rule);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    FaultAction a = fi.Evaluate(FaultOp::kSend, 1000);
    const bool hit = a.kind == FaultAction::Kind::kFailErrno;
    if (hit) {
      EXPECT_GE(i, 2);
      EXPECT_LT(i, 5);
      EXPECT_EQ(a.err, ECONNRESET);
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fi.injected(), 3u);
  EXPECT_EQ(fi.injected(FaultOp::kSend), 3u);
  EXPECT_EQ(fi.injected(FaultOp::kRecv), 0u);
}

TEST(FaultInjector, PortAndOpFiltersMatch) {
  FaultInjector fi(1);
  FaultRule rule;
  rule.op = FaultOp::kConnect;
  rule.port = 7001;
  rule.action = FaultAction::FailErrno(ECONNREFUSED);
  fi.AddRule(rule);
  EXPECT_EQ(fi.Evaluate(FaultOp::kConnect, 7002).kind,
            FaultAction::Kind::kNone);
  EXPECT_EQ(fi.Evaluate(FaultOp::kSend, 7001).kind, FaultAction::Kind::kNone);
  EXPECT_EQ(fi.Evaluate(FaultOp::kConnect, 7001).kind,
            FaultAction::Kind::kFailErrno);
}

TEST(FaultInjector, SeededProbabilityStreamReplays) {
  auto firing_pattern = [](uint64_t seed) {
    FaultInjector fi(seed);
    FaultRule rule;
    rule.op = FaultOp::kRecv;
    rule.probability = 0.5;
    rule.action = FaultAction::DelayMs(1);
    fi.AddRule(rule);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(fi.Evaluate(FaultOp::kRecv, 0).kind !=
                      FaultAction::Kind::kNone);
    }
    return fired;
  };
  const std::vector<bool> a = firing_pattern(0xFA17);
  EXPECT_EQ(a, firing_pattern(0xFA17));  // same seed: same schedule
  EXPECT_NE(a, firing_pattern(0xFA18));
  size_t hits = 0;
  for (bool b : a) hits += b;
  EXPECT_GT(hits, 16u);  // ~32 expected of 64
  EXPECT_LT(hits, 48u);
}

TEST(FaultInjector, EarlierRuleWinsAndCountersStayIndependent) {
  FaultInjector fi(1);
  FaultRule first;
  first.op = FaultOp::kSend;
  first.count = 1;
  first.action = FaultAction::TruncateSend(8);
  FaultRule second;
  second.op = FaultOp::kSend;
  second.skip = 0;
  second.action = FaultAction::FailErrno(EPIPE);
  fi.AddRule(first);
  fi.AddRule(second);
  // Call 0: both armed; the earlier rule supplies the action.
  FaultAction a = fi.Evaluate(FaultOp::kSend, 0);
  EXPECT_EQ(a.kind, FaultAction::Kind::kTruncateSend);
  EXPECT_EQ(a.max_bytes, 8u);
  // Call 1: the first rule's window is spent; the second now surfaces —
  // its own counter advanced during call 0 even while shadowed.
  a = fi.Evaluate(FaultOp::kSend, 0);
  EXPECT_EQ(a.kind, FaultAction::Kind::kFailErrno);
  EXPECT_EQ(a.err, EPIPE);
}

TEST(FaultInjector, ScopedInstallUninstalls) {
  EXPECT_EQ(GetFaultInjector(), nullptr);
  {
    FaultInjector fi(1);
    ScopedFaultInjector scope(&fi);
    EXPECT_EQ(GetFaultInjector(), &fi);
  }
  EXPECT_EQ(GetFaultInjector(), nullptr);
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

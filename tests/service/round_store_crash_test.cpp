// Crash-point-exhaustive recovery for the durable round store.
//
// The harness first runs a deterministic two-round workload fault-free
// and counts every storage-site evaluation (WAL append, fsync barrier,
// segment write/rename, log truncation). Then, for *every* point k in
// that timeline, it re-runs the workload in a fresh directory with the
// storage kill switch armed at k — from that evaluation on, nothing
// reaches disk, exactly as after a power cut — recovers through the
// store like the server does (LoadAll → journal replay / RecoverRound →
// batch replay from the watermark), and asserts both rounds' results
// are bitwise identical to the uninterrupted run. The sweep covers
// ingest, compaction, finalize, and retention-GC windows because the
// workload's knobs are chosen so each happens several times within the
// timeline.

#include <gtest/gtest.h>

#include <cerrno>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ldp/grr.h"
#include "service/fault_injection.h"
#include "service/round_store.h"
#include "service/streaming_collector.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

constexpr uint64_t kRound0Batches = 6;
constexpr uint64_t kRound1Batches = 5;
constexpr size_t kBatchSize = 64;
constexpr uint64_t kDomain = 32;

std::string TempDirFor(const std::string& name) {
  return ::testing::TempDir() + "shuffledp_" + name;
}

void RemoveTree(const std::string& dir) {
  // The store writes a flat directory: wal.log + round-<id>.seg (+ the
  // occasional .tmp a simulated crash left behind).
  std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

std::vector<ldp::LdpReport> RoundBatch(const ldp::ScalarFrequencyOracle& o,
                                       uint64_t round, uint64_t b) {
  Rng rng(0xBEEF0000ULL + round * 1000 + b);
  std::vector<ldp::LdpReport> reports;
  reports.reserve(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    reports.push_back(o.Encode(rng.UniformU64(o.domain_size()), &rng));
  }
  return reports;
}

// Spot-check dummies planted in round 0: registered up front, their
// exact reports ride inside batch 0 so the strip recognizes all three.
std::vector<std::pair<ldp::LdpReport, uint64_t>> RoundDummies(
    const ldp::ScalarFrequencyOracle& o) {
  Rng rng(0xD00DULL);
  std::vector<std::pair<ldp::LdpReport, uint64_t>> dummies;
  for (int i = 0; i < 3; ++i) {
    dummies.emplace_back(o.Encode(rng.UniformU64(o.domain_size()), &rng), 0);
  }
  return dummies;
}

uint64_t BatchCount(uint64_t round) {
  return round == 0 ? kRound0Batches : kRound1Batches;
}

// Feeds one round (starting at `from_batch`) into the worker and closes
// it. Registration only happens at the true round start — recovery
// skips it when the registration record was already durable.
Result<RoundResult> RunRound(StreamingCollector* w,
                             const ldp::ScalarFrequencyOracle& o,
                             uint64_t round, uint64_t from_batch,
                             bool register_dummies) {
  if (round == 0 && register_dummies) {
    w->ExpectDummies(RoundDummies(o));
  }
  for (uint64_t b = from_batch; b < BatchCount(round); ++b) {
    std::vector<ldp::LdpReport> reports = RoundBatch(o, round, b);
    if (round == 0 && b == 0) {
      for (const auto& [report, tag] : RoundDummies(o)) {
        reports.push_back(report);
      }
    }
    SHUFFLEDP_RETURN_NOT_OK(w->Offer(MakePlainBatch(std::move(reports))));
  }
  return w->FinishRound(BatchCount(round) * kBatchSize, 0,
                        Calibration::kStandard);
}

void ExpectBitwise(const RoundResult& got, const RoundResult& want,
                   const std::string& tag) {
  EXPECT_EQ(got.supports, want.supports) << tag;
  EXPECT_EQ(got.estimates, want.estimates) << tag;  // exact doubles
  EXPECT_EQ(got.reports_decoded, want.reports_decoded) << tag;
  EXPECT_EQ(got.reports_invalid, want.reports_invalid) << tag;
  EXPECT_EQ(got.dummies_recognized, want.dummies_recognized) << tag;
  EXPECT_EQ(got.dummies_expected, want.dummies_expected) << tag;
  EXPECT_EQ(got.spot_check_passed, want.spot_check_passed) << tag;
}

StreamingOptions DurableOptions(const std::string& dir,
                                uint64_t retain_rounds) {
  StreamingOptions opts;
  opts.batch_size = kBatchSize;
  opts.round_store.dir = dir;
  opts.round_store.retain_rounds = retain_rounds;
  // Small cadences so the two-round timeline crosses several fsync
  // barriers, several compactions, and at least one retention GC.
  opts.round_store.compact_every_records = 4;
  opts.round_store.sync_every_records = 1;
  return opts;
}

// Runs the workload until the first failure (the simulated crash).
// Returns how far it got; any error is expected once the kill fires.
void RunWorkloadToCrash(const ldp::ScalarFrequencyOracle& o,
                        const StreamingOptions& opts) {
  StreamingCollector w(o, opts);
  for (uint64_t round = 0; round < 2; ++round) {
    Result<RoundResult> r = RunRound(&w, o, round, 0,
                                     /*register_dummies=*/round == 0);
    if (!r.ok()) return;  // crashed mid-round: the worker dies here
  }
}

// Server-style recovery: open the store via a fresh worker, LoadAll,
// replay the finalized journal and/or the live round, then finish
// whatever the crash interrupted. Returns both rounds' results.
void RecoverAndFinish(const ldp::ScalarFrequencyOracle& o,
                      const StreamingOptions& opts,
                      const RoundResult& expected0,
                      const RoundResult& expected1,
                      const std::string& tag) {
  StreamingCollector w(o, opts);
  std::shared_ptr<RoundStore> store = w.store();
  ASSERT_NE(store, nullptr) << tag;
  auto loaded = store->LoadAll();
  ASSERT_TRUE(loaded.ok()) << tag << ": " << loaded.status().ToString();

  const StoredRound* live = nullptr;
  std::map<uint64_t, const StoredRound*> finalized;
  for (const StoredRound& round : *loaded) {
    if (round.finalized) {
      finalized[round.round_id()] = &round;
    } else {
      ASSERT_EQ(live, nullptr) << tag << ": two live rounds recovered";
      live = &round;
    }
  }

  bool have0 = false;
  bool have1 = false;
  RoundResult result0;
  RoundResult result1;

  // Finalized rounds replay through the pure function; the *newest* one
  // goes through the worker when no live round needs it, so the round
  // id advances exactly as the server's recovery does.
  if (!finalized.empty()) {
    const uint64_t newest = finalized.rbegin()->first;
    for (const auto& [id, round] : finalized) {
      ASSERT_LE(id, 1u) << tag;
      const RoundJournal& j = round->journal;
      RoundResult replay;
      if (id == newest && live == nullptr) {
        auto r = w.RecoverFinalizedRound(j);
        ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
        replay = std::move(*r);
      } else {
        replay = FinalizeRoundResult(
            o, j.supports, j.n, j.n_fake,
            static_cast<Calibration>(j.calibration), j.reports_decoded,
            j.reports_invalid, j.dummies_recognized, j.dummies_expected);
      }
      if (id == 0) {
        result0 = std::move(replay);
        have0 = true;
      } else {
        result1 = std::move(replay);
        have1 = true;
      }
    }
  }

  // The live round restores into the worker and replays its remaining
  // batches from the durable watermark.
  if (live != nullptr) {
    const uint64_t id = live->state.round_id;
    ASSERT_LE(id, 1u) << tag;
    auto watermark = w.RecoverRound(live->state);
    ASSERT_TRUE(watermark.ok()) << tag << ": "
                                << watermark.status().ToString();
    EXPECT_EQ(*watermark, live->batches_consumed) << tag;
    // Re-register the spot-check dummies only when their registration
    // record never became durable.
    const bool reregister = id == 0 && live->state.dummies_expected == 0;
    auto r = RunRound(&w, o, id, *watermark, reregister);
    ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
    if (id == 0) {
      result0 = std::move(*r);
      have0 = true;
    } else {
      result1 = std::move(*r);
      have1 = true;
    }
  }

  // Anything with no durable trace re-runs from scratch. Round 0 can
  // run on this worker only if its round id still points there;
  // otherwise (round 0 retention-GC'd while round 1 survived) it
  // re-runs on a store-less worker — the result is a pure function of
  // the input stream either way.
  if (!have0) {
    if (w.round_id() == 0) {
      auto r = RunRound(&w, o, 0, 0, /*register_dummies=*/true);
      ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
      result0 = std::move(*r);
    } else {
      StreamingOptions plain;
      plain.batch_size = kBatchSize;
      StreamingCollector fresh(o, plain);
      auto r = RunRound(&fresh, o, 0, 0, /*register_dummies=*/true);
      ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
      result0 = std::move(*r);
    }
    have0 = true;
  }
  if (!have1) {
    ASSERT_EQ(w.round_id(), 1u) << tag;
    auto r = RunRound(&w, o, 1, 0, /*register_dummies=*/false);
    ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
    result1 = std::move(*r);
    have1 = true;
  }

  ExpectBitwise(result0, expected0, tag + " round0");
  ExpectBitwise(result1, expected1, tag + " round1");
}

void SweepEveryCrashPoint(uint64_t retain_rounds, const std::string& name) {
  ldp::Grr oracle(3.0, kDomain);

  // Ground truth: plain in-memory run, no store at all.
  RoundResult expected0;
  RoundResult expected1;
  {
    StreamingOptions plain;
    plain.batch_size = kBatchSize;
    StreamingCollector w(oracle, plain);
    auto r0 = RunRound(&w, oracle, 0, 0, true);
    ASSERT_TRUE(r0.ok()) << r0.status().ToString();
    expected0 = std::move(*r0);
    auto r1 = RunRound(&w, oracle, 1, 0, false);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    expected1 = std::move(*r1);
  }

  // Fault-free durable run under a counting injector: its evaluation
  // total enumerates every crash point the kill switch can target, and
  // its results double-check the store changes nothing when healthy.
  const std::string base = TempDirFor(name);
  uint64_t crash_points = 0;
  {
    RemoveTree(base + "_free");
    FaultInjector counting;
    ScopedFaultInjector installed(&counting);
    StreamingOptions opts = DurableOptions(base + "_free", retain_rounds);
    StreamingCollector w(oracle, opts);
    auto r0 = RunRound(&w, oracle, 0, 0, true);
    ASSERT_TRUE(r0.ok()) << r0.status().ToString();
    ExpectBitwise(*r0, expected0, "fault-free round0");
    auto r1 = RunRound(&w, oracle, 1, 0, false);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ExpectBitwise(*r1, expected1, "fault-free round1");
    crash_points = counting.storage_evaluations();
  }
  // The timeline must actually cross WAL appends, fsync barriers, and
  // compactions — a tiny count means the store silently stopped
  // persisting and the sweep below proves nothing.
  ASSERT_GE(crash_points, 20u);

  for (uint64_t k = 1; k <= crash_points; ++k) {
    const std::string tag = name + " kill@" + std::to_string(k);
    const std::string dir = base + "_k" + std::to_string(k);
    RemoveTree(dir);
    StreamingOptions opts = DurableOptions(dir, retain_rounds);
    {
      FaultInjector injector;
      injector.ArmStorageKill(k, EIO);
      ScopedFaultInjector installed(&injector);
      RunWorkloadToCrash(oracle, opts);
      // Worker destroyed with the kill still armed: nothing after the
      // kill point ever reached disk.
    }
    RecoverAndFinish(oracle, opts, expected0, expected1, tag);
    RemoveTree(dir);
  }
  RemoveTree(base + "_free");
}

TEST(RoundStoreCrash, EveryCrashPointRecoversBitwise) {
  SweepEveryCrashPoint(/*retain_rounds=*/2, "crash_sweep");
}

// retain_rounds = 1 moves the retention GC inside the crash window: the
// sweep also covers killing between "round 0 expired" and "round 1
// still live", where recovery must re-run round 0 from scratch.
TEST(RoundStoreCrash, SweepWithAggressiveRetention) {
  SweepEveryCrashPoint(/*retain_rounds=*/1, "crash_sweep_gc");
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

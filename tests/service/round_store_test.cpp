// Durable round store units: WAL framing (golden-pinned bytes, torn
// tail, bit flips, slice identity), the RoundDelta codec, segment
// goldens, LSN-idempotent replay (duplicate records), retention GC,
// legacy SDPK/SDPJ migration and the legacy adapter's cadence, and the
// worker-level ENOSPC degrade path. The crash-point-exhaustive sweep
// lives in round_store_crash_test.cpp.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ldp/grr.h"
#include "service/checkpoint.h"
#include "service/fault_injection.h"
#include "service/round_store.h"
#include "service/streaming_collector.h"
#include "service/wal.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "shuffledp_" + name;
}

void RemoveTree(const std::string& dir) {
  std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

std::vector<uint8_t> ReadRaw(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<uint8_t> bytes;
  if (f != nullptr) {
    uint8_t buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + got);
    }
    std::fclose(f);
  }
  return bytes;
}

void WriteRaw(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

RoundDelta SampleDelta() {
  RoundDelta delta;
  delta.round_id = 3;
  delta.batch_lo = 1;
  delta.batch_hi = 2;
  delta.rows_delta = 2;
  delta.decoded_delta = 2;
  delta.invalid_delta = 0;
  delta.support_deltas = {{1, 1}, {4, 1}};
  return delta;
}

TEST(RoundDeltaCodec, RoundTrip) {
  RoundDelta delta = SampleDelta();
  delta.invalid_delta = 7;
  delta.dummies_registered = {{0x123456789ABCDEF0ULL, 42, 2}};
  delta.dummies_consumed = {{0x123456789ABCDEF0ULL, 42, 1}};
  auto parsed = ParseRoundDelta(SerializeRoundDelta(delta));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->round_id, delta.round_id);
  EXPECT_EQ(parsed->batch_lo, delta.batch_lo);
  EXPECT_EQ(parsed->batch_hi, delta.batch_hi);
  EXPECT_EQ(parsed->rows_delta, delta.rows_delta);
  EXPECT_EQ(parsed->decoded_delta, delta.decoded_delta);
  EXPECT_EQ(parsed->invalid_delta, delta.invalid_delta);
  EXPECT_EQ(parsed->support_deltas, delta.support_deltas);
  EXPECT_EQ(parsed->dummies_registered, delta.dummies_registered);
  EXPECT_EQ(parsed->dummies_consumed, delta.dummies_consumed);
}

// The worked example in docs/WIRE_FORMAT.md §6, byte for byte.
TEST(RoundDeltaCodec, GoldenVectorMatchesDoc) {
  const Bytes expected = {
      0x03,              // round_id 3
      0x01, 0x02,        // batches [1, 2)
      0x02, 0x02, 0x00,  // rows 2, decoded 2, invalid 0
      0x02,              // 2 support deltas
      0x01, 0x01,        // index 1 += 1
      0x04, 0x01,        // index 4 += 1
      0x00,              // no dummies registered
      0x00,              // no dummies consumed
  };
  EXPECT_EQ(SerializeRoundDelta(SampleDelta()), expected);
}

TEST(RoundDeltaCodec, MalformedPayloadsRejected) {
  Bytes good = SerializeRoundDelta(SampleDelta());
  // Trailing garbage.
  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(ParseRoundDelta(trailing).ok());
  // Inverted batch range (hi < lo).
  RoundDelta inverted = SampleDelta();
  inverted.batch_lo = 5;
  inverted.batch_hi = 2;
  EXPECT_FALSE(ParseRoundDelta(SerializeRoundDelta(inverted)).ok());
  // Support indices must ascend.
  RoundDelta descending = SampleDelta();
  descending.support_deltas = {{4, 1}, {1, 1}};
  EXPECT_FALSE(ParseRoundDelta(SerializeRoundDelta(descending)).ok());
  // Truncations die cleanly (no allocation balloon, no crash).
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(ParseRoundDelta({good.begin(), good.begin() + len}).ok())
        << "len=" << len;
  }
}

// The worked example in docs/WIRE_FORMAT.md §6, byte for byte: header +
// one kDelta record (LSN 1) carrying the golden delta payload. If this
// breaks, update the doc with the new bytes or fix the code — never the
// test alone.
TEST(Wal, GoldenBytesMatchDoc) {
  const std::string path = TempPath("wal_golden.log");
  std::remove(path.c_str());
  WriteAheadLog::Options options;
  options.path = path;
  {
    auto wal = WriteAheadLog::Open(options);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(
        (*wal)->Append(WalRecordType::kDelta, 1,
                       SerializeRoundDelta(SampleDelta())).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  const std::vector<uint8_t> expected = {
      0x53, 0x44, 0x50, 0x57,  // magic "SDPW"
      0x01, 0x00,              // version 1, reserved
      0x00, 0x00, 0x01, 0x00,  // partition 0 of 1
      0x00, 0x00,              // reserved
      0xF2, 0xE9, 0x90, 0x8D,  // CRC-32 of header[0, 12)
      0x16, 0x00, 0x00, 0x00,  // body length 22
      0x39, 0x21, 0xD8, 0x9B,  // CRC-32 of body
      0x01,                    // type kDelta
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // LSN 1
      0x03, 0x01, 0x02, 0x02, 0x02, 0x00,              // delta payload...
      0x02, 0x01, 0x01, 0x04, 0x01, 0x00, 0x00,
  };
  EXPECT_EQ(ReadRaw(path), expected);
  std::remove(path.c_str());
}

TEST(Wal, TornTailIsTruncatedAndValidPrefixRecovered) {
  const std::string path = TempPath("wal_torn.log");
  std::remove(path.c_str());
  WriteAheadLog::Options options;
  options.path = path;
  {
    auto wal = WriteAheadLog::Open(options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kDelta, 1, {0x01}).ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kDelta, 2, {0x02}).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  std::vector<uint8_t> bytes = ReadRaw(path);
  const size_t clean_size = bytes.size();
  // A crash mid-append leaves a partial record frame.
  bytes.insert(bytes.end(), {0x0D, 0x00, 0x00, 0x00, 0xAA, 0xBB});
  WriteRaw(path, bytes);
  {
    auto wal = WriteAheadLog::Open(options);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    auto records = (*wal)->TakeRecovered();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].lsn, 1u);
    EXPECT_EQ(records[1].lsn, 2u);
    EXPECT_GT((*wal)->truncated_bytes(), 0u);
  }
  // The torn bytes are gone from disk: the next append starts clean.
  EXPECT_EQ(ReadRaw(path).size(), clean_size);
  std::remove(path.c_str());
}

TEST(Wal, BitFlipEndsTheScanAtTheCorruptRecord) {
  const std::string path = TempPath("wal_flip.log");
  std::remove(path.c_str());
  WriteAheadLog::Options options;
  options.path = path;
  size_t first_record_end = 0;
  {
    auto wal = WriteAheadLog::Open(options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kDelta, 1, {0x01}).ok());
    first_record_end = ReadRaw(path).size();
    ASSERT_TRUE((*wal)->Append(WalRecordType::kDelta, 2, {0x02}).ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kDelta, 3, {0x03}).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  std::vector<uint8_t> bytes = ReadRaw(path);
  bytes[first_record_end + kWalRecordHeaderBytes] ^= 0x01;  // record 2 body
  WriteRaw(path, bytes);
  auto wal = WriteAheadLog::Open(options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  // Only the prefix before the corruption survives — record 3 was valid
  // but unreachable, exactly what a torn tail means.
  auto records = (*wal)->TakeRecovered();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].lsn, 1u);
  std::remove(path.c_str());
}

TEST(Wal, TornInitialHeaderRestartsAsFresh) {
  const std::string path = TempPath("wal_torn_header.log");
  std::remove(path.c_str());
  WriteAheadLog::Options options;
  options.path = path;
  { ASSERT_TRUE(WriteAheadLog::Open(options).ok()); }
  // A crash mid-publish of the very first header write leaves a short
  // prefix. No record can exist yet — nothing to lose — so the log
  // restarts as fresh instead of failing every later open.
  std::vector<uint8_t> bytes = ReadRaw(path);
  bytes.resize(7);
  WriteRaw(path, bytes);
  {
    auto wal = WriteAheadLog::Open(options);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_TRUE((*wal)->TakeRecovered().empty());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kDelta, 1, {0x01}).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // The rewritten header is whole again: the next open recovers.
  auto wal = WriteAheadLog::Open(options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->TakeRecovered().size(), 1u);
  std::remove(path.c_str());
}

TEST(Wal, HeaderCorruptionAndSliceMismatchRefused) {
  const std::string path = TempPath("wal_header.log");
  std::remove(path.c_str());
  WriteAheadLog::Options options;
  options.path = path;
  options.partition_index = 1;
  options.partition_count = 4;
  { ASSERT_TRUE(WriteAheadLog::Open(options).ok()); }
  // Another slice's log must be refused (misrouted volume mount).
  WriteAheadLog::Options other = options;
  other.partition_index = 2;
  EXPECT_FALSE(WriteAheadLog::Open(other).ok());
  // A flipped header byte is DataLoss, not a silent fresh start.
  std::vector<uint8_t> bytes = ReadRaw(path);
  bytes[5] ^= 0x40;
  WriteRaw(path, bytes);
  EXPECT_FALSE(WriteAheadLog::Open(options).ok());
  std::remove(path.c_str());
}

RoundStoreOptions StoreOptions(const std::string& dir, uint64_t width) {
  RoundStoreOptions options;
  options.dir = dir;
  options.slice_width = width;
  return options;
}

TEST(SegmentedStore, IngestFinalizeQueryReopen) {
  const std::string dir = TempPath("store_basic");
  RemoveTree(dir);
  RoundStoreOptions options = StoreOptions(dir, 8);
  {
    auto store = SegmentedRoundStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    RoundDelta d;
    d.round_id = 7;
    d.batch_lo = 0;
    d.batch_hi = 1;
    d.rows_delta = 3;
    d.decoded_delta = 3;
    d.support_deltas = {{2, 2}, {5, 1}};
    ASSERT_TRUE((*store)->AppendDelta(d, nullptr).ok());
    auto live = (*store)->Query(7);
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(live->status, RoundStatus::kActive);
    EXPECT_EQ(live->watermark, 1u);
    EXPECT_EQ((*store)->Query(99)->status, RoundStatus::kUnknown);

    RoundJournal journal;
    journal.round_id = 7;
    journal.n = 3;
    journal.calibration = 1;
    journal.reports_decoded = 3;
    journal.supports = {0, 0, 2, 0, 0, 1, 0, 0};
    ASSERT_TRUE((*store)->FinalizeRound(journal, 1).ok());
  }
  // Everything above lives only in the WAL (no compaction ran) — a
  // reopen replays it.
  auto store = SegmentedRoundStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto rounds = (*store)->LoadAll();
  ASSERT_TRUE(rounds.ok());
  ASSERT_EQ(rounds->size(), 1u);
  EXPECT_TRUE((*rounds)[0].finalized);
  EXPECT_EQ((*rounds)[0].round_id(), 7u);
  EXPECT_EQ((*rounds)[0].batches_consumed, 1u);
  EXPECT_EQ((*rounds)[0].journal.supports,
            (std::vector<uint64_t>{0, 0, 2, 0, 0, 1, 0, 0}));
  auto lookup = (*store)->Query(7);
  ASSERT_TRUE(lookup.ok());
  EXPECT_EQ(lookup->status, RoundStatus::kFinalized);
  EXPECT_EQ(lookup->watermark, 1u);
  EXPECT_EQ(lookup->journal.n, 3u);
  RemoveTree(dir);
}

// The worked example in docs/WIRE_FORMAT.md §7, byte for byte.
TEST(SegmentedStore, SegmentGoldenBytesMatchDoc) {
  const std::string dir = TempPath("store_golden");
  RemoveTree(dir);
  RoundStoreOptions options = StoreOptions(dir, 8);
  options.compact_every_records = 1000;  // compact only on demand
  auto store = SegmentedRoundStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  RoundDelta d = SampleDelta();
  d.batch_lo = 0;
  d.batch_hi = 1;
  ASSERT_TRUE((*store)->AppendDelta(d, nullptr).ok());
  RoundJournal journal;
  journal.round_id = 3;
  journal.n = 2;
  journal.calibration = 1;
  journal.reports_decoded = 2;
  journal.supports = {0, 1, 0, 0, 1, 0, 0, 0};
  ASSERT_TRUE((*store)->FinalizeRound(journal, 1).ok());
  ASSERT_TRUE((*store)->CompactNow().ok());
  const std::vector<uint8_t> expected = {
      0x53, 0x44, 0x50, 0x53,  // magic "SDPS"
      0x02, 0x00, 0x00, 0x00,  // framing version, reserved
      0x2D, 0x00, 0x00, 0x00,  // payload length 45
      0xC2, 0xC1, 0x4E, 0xC2,  // CRC-32(payload)
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // round_id 3
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // last LSN 2
      0x01,                                            // finalized
      0x01,                                            // watermark 1
      // journal payload (checkpoint.h codec)
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // round_id 3
      0x00, 0x01, 0x00,                                // partition 0/1, lo 0
      0x02, 0x00, 0x01,                                // n 2, n_fake 0, cal 1
      0x02, 0x00, 0x00, 0x00,                          // tallies
      0x08, 0x00, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,  // supports
  };
  EXPECT_EQ(ReadRaw((*store)->SegmentPath(3)), expected);
  // The WAL was truncated back to its bare header by the compaction.
  EXPECT_EQ(ReadRaw(dir + "/wal.log").size(), kWalHeaderBytes);
  RemoveTree(dir);
}

TEST(SegmentedStore, DuplicateRecordReplaysAsNoOp) {
  const std::string dir = TempPath("store_dup");
  RemoveTree(dir);
  ASSERT_EQ(::system(("mkdir -p '" + dir + "'").c_str()), 0);
  // Craft a WAL whose delta record appears twice with the same LSN —
  // what a crashed append retry can leave behind.
  WriteAheadLog::Options wal_options;
  wal_options.path = dir + "/wal.log";
  {
    auto wal = WriteAheadLog::Open(wal_options);
    ASSERT_TRUE(wal.ok());
    RoundDelta d = SampleDelta();
    d.batch_lo = 0;
    d.batch_hi = 1;
    Bytes payload = SerializeRoundDelta(d);
    ASSERT_TRUE((*wal)->Append(WalRecordType::kDelta, 1, payload).ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kDelta, 1, payload).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto store = SegmentedRoundStore::Open(StoreOptions(dir, 8));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto rounds = (*store)->LoadAll();
  ASSERT_TRUE(rounds.ok());
  ASSERT_EQ(rounds->size(), 1u);
  // Applied once: watermark 1, supports counted a single time.
  EXPECT_EQ((*rounds)[0].batches_consumed, 1u);
  EXPECT_EQ((*rounds)[0].state.supports[1], 1u);
  EXPECT_EQ((*rounds)[0].state.supports[4], 1u);
  RemoveTree(dir);
}

// AbandonRound unlinks the round's base segment the moment the abandon
// record is durable — but earlier deltas chaining to that segment's
// watermark may still sit in the WAL. A crash before the next
// compaction must not brick recovery on the orphaned deltas.
TEST(SegmentedStore, AbandonAfterMidRoundCompactionRecovers) {
  const std::string dir = TempPath("store_abandon_residue");
  RemoveTree(dir);
  RoundStoreOptions options = StoreOptions(dir, 8);
  options.compact_every_records = 1000;  // no cadence compaction
  {
    auto store = SegmentedRoundStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    RoundDelta d;
    d.round_id = 5;
    d.batch_lo = 0;
    d.batch_hi = 1;
    d.support_deltas = {{0, 1}};
    ASSERT_TRUE((*store)->AppendDelta(d, nullptr).ok());
    // Mid-round compaction: the segment becomes the round's base...
    ASSERT_TRUE((*store)->CompactNow().ok());
    // ...the next delta chains to its watermark in the WAL...
    d.batch_lo = 1;
    d.batch_hi = 2;
    ASSERT_TRUE((*store)->AppendDelta(d, nullptr).ok());
    // ...and the abandon unlinks the base out from under that delta.
    ASSERT_TRUE((*store)->AbandonRound(5).ok());
  }  // crash before any further compaction
  auto store = SegmentedRoundStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto rounds = (*store)->LoadAll();
  ASSERT_TRUE(rounds.ok());
  EXPECT_TRUE(rounds->empty());
  EXPECT_EQ((*store)->Query(5)->status, RoundStatus::kUnknown);
  RemoveTree(dir);
}

// Retention GC must not unlink an expired round's segment while WAL
// records still chain to it: the unlink waits for the next compaction,
// right after the log truncate.
TEST(SegmentedStore, RetentionGcDefersUnlinkUntilWalTruncate) {
  const std::string dir = TempPath("store_gc_residue");
  RemoveTree(dir);
  RoundStoreOptions options = StoreOptions(dir, 4);
  options.retain_rounds = 1;
  options.compact_every_records = 1000;
  std::string seg1;
  {
    auto store = SegmentedRoundStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    seg1 = (*store)->SegmentPath(1);
    // Round 1: mid-round base segment, then chained delta + finalize
    // living only in the WAL.
    RoundDelta d;
    d.round_id = 1;
    d.batch_lo = 0;
    d.batch_hi = 1;
    d.support_deltas = {{0, 1}};
    ASSERT_TRUE((*store)->AppendDelta(d, nullptr).ok());
    ASSERT_TRUE((*store)->CompactNow().ok());
    d.batch_lo = 1;
    d.batch_hi = 2;
    ASSERT_TRUE((*store)->AppendDelta(d, nullptr).ok());
    RoundJournal j1;
    j1.round_id = 1;
    j1.n = 2;
    j1.supports = {2, 0, 0, 0};
    ASSERT_TRUE((*store)->FinalizeRound(j1, 2).ok());
    ASSERT_TRUE((*store)->CloseRound(1).ok());
    RoundJournal j2;
    j2.round_id = 2;
    j2.n = 1;
    j2.supports = {1, 0, 0, 0};
    ASSERT_TRUE((*store)->FinalizeRound(j2, 0).ok());
    // Closing round 2 expires round 1 — but its chained delta is still
    // in the log, so the segment must survive the GC.
    ASSERT_TRUE((*store)->CloseRound(2).ok());
    EXPECT_FALSE(ReadRaw(seg1).empty());
  }  // crash with the expired round's records still in the WAL
  {
    auto store = SegmentedRoundStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    // The expired round resurrected (benign); re-expiring it and
    // compacting finally removes the segment — after the truncate.
    ASSERT_TRUE((*store)->CloseRound(1).ok());
    ASSERT_TRUE((*store)->CloseRound(2).ok());
    ASSERT_TRUE((*store)->CompactNow().ok());
    std::FILE* gone = std::fopen(seg1.c_str(), "rb");
    EXPECT_EQ(gone, nullptr) << "expired segment survived the compaction";
    if (gone != nullptr) std::fclose(gone);
    auto rounds = (*store)->LoadAll();
    ASSERT_TRUE(rounds.ok());
    ASSERT_EQ(rounds->size(), 1u);
    EXPECT_EQ((*rounds)[0].round_id(), 2u);
  }
  RemoveTree(dir);
}

TEST(SegmentedStore, RetentionKeepsNewestK) {
  const std::string dir = TempPath("store_gc");
  RemoveTree(dir);
  RoundStoreOptions options = StoreOptions(dir, 4);
  options.retain_rounds = 2;
  options.compact_every_records = 1;  // segment per record: GC visible
  auto store = SegmentedRoundStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (uint64_t round = 1; round <= 4; ++round) {
    RoundJournal journal;
    journal.round_id = round;
    journal.n = 1;
    journal.supports = {1, 0, 0, 0};
    ASSERT_TRUE((*store)->FinalizeRound(journal, 0).ok());
    ASSERT_TRUE((*store)->CloseRound(round).ok());
  }
  auto rounds = (*store)->LoadAll();
  ASSERT_TRUE(rounds.ok());
  ASSERT_EQ(rounds->size(), 2u);
  EXPECT_EQ((*rounds)[0].round_id(), 3u);
  EXPECT_EQ((*rounds)[1].round_id(), 4u);
  EXPECT_EQ((*store)->Query(1)->status, RoundStatus::kUnknown);
  EXPECT_EQ((*store)->Query(2)->status, RoundStatus::kUnknown);
  EXPECT_EQ((*store)->Query(3)->status, RoundStatus::kFinalized);
  EXPECT_EQ((*store)->Query(4)->status, RoundStatus::kFinalized);
  RemoveTree(dir);
}

TEST(SegmentedStore, ImportsLegacyCheckpointAndJournal) {
  const std::string dir = TempPath("store_migrate");
  const std::string legacy = TempPath("store_migrate_legacy.ckpt");
  RemoveTree(dir);
  std::remove(legacy.c_str());
  std::remove((legacy + ".result").c_str());

  CheckpointState state;
  state.round_id = 9;
  state.batches_consumed = 5;
  state.rows_seen = 5;
  state.reports_decoded = 5;
  state.supports = {1, 2, 0, 2};
  ASSERT_TRUE(WriteCheckpoint(legacy, state).ok());
  RoundJournal journal;
  journal.round_id = 8;
  journal.n = 10;
  journal.supports = {3, 3, 2, 2};
  ASSERT_TRUE(WriteRoundJournal(RoundJournalPath(legacy), journal).ok());

  RoundStoreOptions options = StoreOptions(dir, 4);
  options.legacy_checkpoint_path = legacy;
  {
    auto store = SegmentedRoundStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto rounds = (*store)->LoadAll();
    ASSERT_TRUE(rounds.ok());
    ASSERT_EQ(rounds->size(), 2u);
    EXPECT_TRUE((*rounds)[0].finalized);
    EXPECT_EQ((*rounds)[0].round_id(), 8u);
    EXPECT_EQ((*rounds)[0].journal.supports, journal.supports);
    EXPECT_FALSE((*rounds)[1].finalized);
    EXPECT_EQ((*rounds)[1].round_id(), 9u);
    EXPECT_EQ((*rounds)[1].batches_consumed, 5u);
    EXPECT_EQ((*rounds)[1].state.supports, state.supports);
    ASSERT_TRUE((*store)->CompactNow().ok());
  }
  // Migration is read-only: the legacy files are untouched...
  EXPECT_TRUE(ReadCheckpoint(legacy).ok());
  EXPECT_TRUE(ReadRoundJournal(RoundJournalPath(legacy)).ok());
  // ...and once the store holds its own state, it no longer re-imports
  // (the legacy round would otherwise resurrect forever).
  {
    auto store = SegmentedRoundStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AbandonRound(9).ok());
  }
  auto store = SegmentedRoundStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto rounds = (*store)->LoadAll();
  ASSERT_TRUE(rounds.ok());
  ASSERT_EQ(rounds->size(), 1u);
  EXPECT_EQ((*rounds)[0].round_id(), 8u);
  std::remove(legacy.c_str());
  std::remove((legacy + ".result").c_str());
  RemoveTree(dir);
}

// The imported legacy base is compacted into segments at open: the
// worker's next deltas continue from the legacy watermark, so a crash
// before the first cadence compaction must still find a base to chain
// to on reopen.
TEST(SegmentedStore, LegacyImportSurvivesCrashBeforeFirstCompaction) {
  const std::string dir = TempPath("store_migrate_crash");
  const std::string legacy = TempPath("store_migrate_crash.ckpt");
  RemoveTree(dir);
  std::remove(legacy.c_str());
  std::remove((legacy + ".result").c_str());
  CheckpointState state;
  state.round_id = 9;
  state.batches_consumed = 5;
  state.rows_seen = 5;
  state.reports_decoded = 5;
  state.supports = {1, 2, 0, 2};
  ASSERT_TRUE(WriteCheckpoint(legacy, state).ok());

  RoundStoreOptions options = StoreOptions(dir, 4);
  options.legacy_checkpoint_path = legacy;
  options.compact_every_records = 1000;  // no cadence compaction
  {
    auto store = SegmentedRoundStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    // The import became a segment during Open itself.
    EXPECT_FALSE(ReadRaw((*store)->SegmentPath(9)).empty());
    RoundDelta d;
    d.round_id = 9;
    d.batch_lo = 5;  // continues the legacy watermark
    d.batch_hi = 6;
    d.support_deltas = {{0, 1}};
    ASSERT_TRUE((*store)->AppendDelta(d, nullptr).ok());
  }  // crash before the first cadence compaction
  auto store = SegmentedRoundStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto rounds = (*store)->LoadAll();
  ASSERT_TRUE(rounds.ok());
  ASSERT_EQ(rounds->size(), 1u);
  EXPECT_FALSE((*rounds)[0].finalized);
  EXPECT_EQ((*rounds)[0].round_id(), 9u);
  EXPECT_EQ((*rounds)[0].batches_consumed, 6u);
  EXPECT_EQ((*rounds)[0].state.supports,
            (std::vector<uint64_t>{2, 2, 0, 2}));
  std::remove(legacy.c_str());
  std::remove((legacy + ".result").c_str());
  RemoveTree(dir);
}

// The legacy adapter writes the exact files on the exact cadence the
// pre-store worker did: one full snapshot every `every_batches`, a
// keep-exactly-1 journal, checkpoint removed at close.
TEST(LegacyStore, PreservesSnapshotCadenceAndFiles) {
  const std::string path = TempPath("legacy_cadence.ckpt");
  std::remove(path.c_str());
  std::remove((path + ".result").c_str());
  CheckpointOptions legacy;
  legacy.path = path;
  legacy.every_batches = 2;
  auto store = OpenRoundStore(RoundStoreOptions{}, legacy);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_NE(*store, nullptr);
  EXPECT_FALSE((*store)->WantsDeltas());

  CheckpointState snap;
  snap.round_id = 1;
  snap.supports = {0, 0};
  auto snapshot = [&snap] { return snap; };
  RoundDelta d;
  d.round_id = 1;
  d.batch_lo = 0;
  d.batch_hi = 1;
  snap.batches_consumed = 1;
  ASSERT_TRUE((*store)->AppendDelta(d, snapshot).ok());
  EXPECT_EQ(ReadCheckpoint(path).status().code(), StatusCode::kNotFound)
      << "snapshot before the cadence boundary";
  d.batch_lo = 1;
  d.batch_hi = 2;
  snap.batches_consumed = 2;
  ASSERT_TRUE((*store)->AppendDelta(d, snapshot).ok());
  auto on_disk = ReadCheckpoint(path);
  ASSERT_TRUE(on_disk.ok()) << "snapshot due at batch 2";
  EXPECT_EQ(on_disk->batches_consumed, 2u);
  auto live = (*store)->Query(1);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->status, RoundStatus::kActive);
  EXPECT_EQ(live->watermark, 2u);  // durable watermark, not ingest

  RoundJournal journal;
  journal.round_id = 1;
  journal.n = 4;
  journal.supports = {1, 1};
  ASSERT_TRUE((*store)->FinalizeRound(journal, 2).ok());
  ASSERT_TRUE(ReadRoundJournal(RoundJournalPath(path)).ok());
  ASSERT_TRUE((*store)->CloseRound(1).ok());
  EXPECT_EQ(ReadCheckpoint(path).status().code(), StatusCode::kNotFound)
      << "close removes the mid-round snapshot";
  EXPECT_EQ((*store)->Query(1)->status, RoundStatus::kFinalized);
  std::remove(path.c_str());
  std::remove((path + ".result").c_str());
}

TEST(OpenRoundStoreFactory, NeitherConfiguredMeansNoStore) {
  auto store = OpenRoundStore(RoundStoreOptions{}, CheckpointOptions{});
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*store, nullptr);
}

// ENOSPC mid-round: the worker sheds durability instead of failing the
// round — the result arrives complete and flagged — and the *next*
// round persists normally again.
TEST(WorkerDegrade, EnospcDegradesRoundNotPipeline) {
  const std::string dir = TempPath("worker_degrade");
  RemoveTree(dir);
  ldp::Grr oracle(3.0, 16);
  auto batch = [&](uint64_t b) {
    Rng rng(0xFEED + b);
    std::vector<ldp::LdpReport> reports;
    for (size_t i = 0; i < 32; ++i) {
      reports.push_back(oracle.Encode(rng.UniformU64(16), &rng));
    }
    return reports;
  };

  StreamingOptions plain;
  plain.batch_size = 32;
  RoundResult expected;
  {
    StreamingCollector w(oracle, plain);
    for (uint64_t b = 0; b < 4; ++b) {
      ASSERT_TRUE(w.Offer(MakePlainBatch(batch(b))).ok());
    }
    auto r = w.FinishRound(128, 0, Calibration::kStandard);
    ASSERT_TRUE(r.ok());
    expected = std::move(*r);
  }

  StreamingOptions durable = plain;
  durable.round_store.dir = dir;
  StreamingCollector w(oracle, durable);
  {
    FaultInjector injector;
    FaultRule rule;
    rule.op = FaultOp::kFileWrite;
    rule.skip = 3;  // header + two appends succeed, then the disk fills
    rule.action = FaultAction::FailErrno(ENOSPC);
    injector.AddRule(rule);
    ScopedFaultInjector installed(&injector);
    for (uint64_t b = 0; b < 4; ++b) {
      ASSERT_TRUE(w.Offer(MakePlainBatch(batch(b))).ok());
    }
    auto r = w.FinishRound(128, 0, Calibration::kStandard);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->durability_degraded);
    EXPECT_FALSE(r->durability_warning.empty());
    // (w.durability_degraded() reflects the *current* round — it reset
    // with the round close above; the delivered result carries the flag.)
    // Degraded, not wrong: the numbers are bitwise the plain run's.
    EXPECT_EQ(r->supports, expected.supports);
    EXPECT_EQ(r->estimates, expected.estimates);
  }
  // Disk pressure gone: the next round is durable again.
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(w.Offer(MakePlainBatch(batch(b))).ok());
  }
  auto r2 = w.FinishRound(128, 0, Calibration::kStandard);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2->durability_degraded);
  EXPECT_FALSE(w.durability_degraded());
  auto lookup = w.store()->Query(1);
  ASSERT_TRUE(lookup.ok());
  EXPECT_EQ(lookup->status, RoundStatus::kFinalized);
  RemoveTree(dir);
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// Shard-merge order independence: collection with a fixed seed must
// produce *bitwise identical* estimates no matter how many workers the
// pool has (SHUFFLEDP_THREADS ∈ {1, 4, 16} — modeled here as explicit
// ThreadPool sizes, which is what that env var feeds), and repeated runs
// with the same seed must be bitwise stable. This is what makes the
// streaming fast paths trustworthy: parallelism must never leak into the
// randomized output.
//
// The guarantees under test: fixed-size encode chunks (ForChunks) pin the
// per-chunk RNG seeds, integer shard counters make accumulation
// order-free, and Finalize() merges shard slices in shard order.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/shuffle_dp.h"
#include "ldp/grr.h"
#include "service/streaming_collector.h"
#include "shuffle/peos.h"
#include "shuffle/sequential_shuffle.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace service {
namespace {

std::vector<uint64_t> SkewedValues(uint64_t n, uint64_t d) {
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = (i < n / 2) ? 0 : 1 + (i % (d - 1));
  }
  return values;
}

bool BitwiseEqual(const std::vector<double>& a,
                  const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(StreamingDeterminism, SequentialShuffleAcrossPoolSizes) {
  const uint64_t n = 600, d = 16;
  ldp::Grr oracle(3.0, d);
  auto values = SkewedValues(n, d);

  std::vector<std::vector<double>> runs;
  std::vector<uint64_t> report_counts;
  for (unsigned threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads);
    shuffle::SequentialShuffleConfig config;
    config.num_shufflers = 3;
    config.fake_reports_total = 90;
    config.spot_check_dummies = 10;
    config.pool = &pool;
    config.streaming.batch_size = 128;  // force multiple batches
    crypto::SecureRandom rng(uint64_t{777});
    auto result = RunSequentialShuffle(oracle, values, config, &rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->spot_check_passed);
    runs.push_back(result->estimates);
    report_counts.push_back(result->reports_at_server);
  }
  EXPECT_TRUE(BitwiseEqual(runs[0], runs[1]))
      << "SS estimates differ between 1 and 4 threads";
  EXPECT_TRUE(BitwiseEqual(runs[0], runs[2]))
      << "SS estimates differ between 1 and 16 threads";
  EXPECT_EQ(report_counts[0], report_counts[1]);
  EXPECT_EQ(report_counts[0], report_counts[2]);
}

TEST(StreamingDeterminism, SequentialShuffleSerialMatchesPooled) {
  // pool == nullptr must take the exact same chunk boundaries.
  const uint64_t n = 500, d = 8;
  ldp::Grr oracle(2.0, d);
  auto values = SkewedValues(n, d);
  std::vector<std::vector<double>> runs;
  for (bool pooled : {false, true}) {
    ThreadPool pool(3);
    shuffle::SequentialShuffleConfig config;
    config.num_shufflers = 2;
    config.fake_reports_total = 50;
    config.pool = pooled ? &pool : nullptr;
    crypto::SecureRandom rng(uint64_t{4242});
    auto result = RunSequentialShuffle(oracle, values, config, &rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    runs.push_back(result->estimates);
  }
  EXPECT_TRUE(BitwiseEqual(runs[0], runs[1]))
      << "serial and pooled SS runs disagree";
}

TEST(StreamingDeterminism, PeosCollectAcrossPoolSizes) {
  const uint64_t n = 240, d = 16;
  ldp::Grr oracle(3.0, d);
  auto values = SkewedValues(n, d);

  std::vector<std::vector<double>> runs;
  for (unsigned threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads);
    shuffle::PeosConfig config;
    config.num_shufflers = 3;
    config.fake_reports = 60;
    config.paillier_bits = 512;  // keep the crypto cheap for the test
    config.pool = &pool;
    config.streaming.batch_size = 64;
    crypto::SecureRandom rng(uint64_t{991});
    auto result = shuffle::RunPeos(oracle, values, config, &rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->reports_decoded + result->reports_invalid, n + 60);
    runs.push_back(result->estimates);
  }
  EXPECT_TRUE(BitwiseEqual(runs[0], runs[1]))
      << "PEOS estimates differ between 1 and 4 threads";
  EXPECT_TRUE(BitwiseEqual(runs[0], runs[2]))
      << "PEOS estimates differ between 1 and 16 threads";
}

TEST(StreamingDeterminism, CollectStreamingAcrossPoolSizesAndRepeats) {
  const uint64_t n = 40000, d = 256;
  core::PrivacyGoals goals;
  auto values = SkewedValues(n, d);

  std::vector<std::vector<double>> runs;
  for (unsigned threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads);
    core::ShuffleDpCollector::Options options;
    options.pool = &pool;
    options.streaming.batch_size = 2048;
    options.streaming.num_shards = 32;
    auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
    ASSERT_TRUE(collector.ok()) << collector.status().ToString();
    // Two repeats per pool size: bitwise-stable reruns.
    for (int rep = 0; rep < 2; ++rep) {
      Rng rng(20260729);
      auto round = (*collector)->CollectStreaming(values, &rng);
      ASSERT_TRUE(round.ok()) << round.status().ToString();
      runs.push_back(round->estimates);
    }
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(runs[0], runs[i]))
        << "CollectStreaming run " << i << " differs from run 0";
  }
}

TEST(StreamingDeterminism, NestedProtocolRunFromPoolWorkerCompletes) {
  // A protocol run launched from inside one of its own pool's tasks
  // (single worker — the hardest case) must complete: the collector
  // detects the nested construction and processes serially instead of
  // waiting on pool slots the blocked caller occupies.
  ThreadPool pool(1);
  Status status = Status::OK();
  std::vector<double> estimates;
  pool.Submit([&] {
    ldp::Grr oracle(2.0, 8);
    auto values = SkewedValues(200, 8);
    shuffle::SequentialShuffleConfig config;
    config.num_shufflers = 2;
    config.fake_reports_total = 20;
    config.pool = &pool;
    config.streaming.batch_size = 32;
    config.streaming.queue_capacity = 2;  // force backpressure too
    crypto::SecureRandom rng(uint64_t{55});
    auto result = RunSequentialShuffle(oracle, values, config, &rng);
    if (result.ok()) {
      estimates = result->estimates;
    } else {
      status = result.status();
    }
  });
  pool.WaitIdle();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(estimates.size(), 8u);
}

TEST(StreamingDeterminism, MultiRoundReuseIsIndependentAndStable) {
  // FinishRound resets the collector; identical inputs in round 1 and
  // round 2 must produce identical outputs.
  ldp::Grr oracle(2.0, 32);
  ThreadPool pool(4);
  StreamingOptions opts;
  opts.batch_size = 100;
  opts.pool = &pool;
  StreamingCollector collector(oracle, opts);

  std::vector<ldp::LdpReport> reports;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    reports.push_back(oracle.Encode(i % 32, &rng));
  }
  std::vector<std::vector<uint64_t>> supports;
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(collector.OfferReports(reports).ok());
    auto result =
        collector.FinishRound(reports.size(), 0, Calibration::kStandard);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->reports_decoded, reports.size());
    supports.push_back(result->supports);
  }
  EXPECT_EQ(supports[0], supports[1]);
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

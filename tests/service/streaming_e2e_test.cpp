// End-to-end streaming collection at the ROADMAP's scale target:
// n = 10^6 simulated users, d = 1024 — the paper's IPUMS setting scaled
// up — must complete through the full pipeline (bounded queue, batched
// ingest, domain-sharded counting) on a laptop-class box, and its output
// must agree *in distribution* with the statistically-exact simulator
// (ShuffleDpCollector::SimulateCollect / FastSimulateSupports).
//
// Agreement is asserted without repeated runs: for each value v the
// support count is a sum of independent Bernoullis with known mean μ_v
// and variance σ_v², so the per-value z-scores of a single run form a
// ~N(0,1) sample of size d. Both pipelines' z-samples must individually
// stay within Gaussian bounds and must match each other under a
// two-sample KS test.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/shuffle_dp.h"
#include "ldp/estimator.h"
#include "ldp/fast_sim.h"
#include "ldp/grr.h"
#include "service/streaming_collector.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace service {
namespace {

// Population with a few heavy hitters over [0, d).
std::vector<uint64_t> HeavyHitterCounts(uint64_t n, uint64_t d) {
  std::vector<uint64_t> counts(d, 0);
  counts[0] = n / 10;
  counts[1] = n / 20;
  counts[2] = n / 20;
  uint64_t assigned = counts[0] + counts[1] + counts[2];
  uint64_t rest = n - assigned;
  for (uint64_t v = 3; v < d; ++v) counts[v] = rest / (d - 3);
  counts[d - 1] += rest - (rest / (d - 3)) * (d - 3);
  return counts;
}

std::vector<uint64_t> ExpandValues(const std::vector<uint64_t>& counts) {
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < counts.size(); ++v) {
    values.insert(values.end(), counts[v], v);
  }
  return values;
}

// Per-value support z-scores against the exact Binomial-sum law.
std::vector<double> SupportZScores(const std::vector<uint64_t>& supports,
                                   const std::vector<uint64_t>& counts,
                                   uint64_t n, uint64_t n_fake, double p,
                                   double q, double q_fake) {
  std::vector<double> z(supports.size());
  for (uint64_t v = 0; v < supports.size(); ++v) {
    const double nv = static_cast<double>(counts[v]);
    const double mean = nv * p + (static_cast<double>(n) - nv) * q +
                        static_cast<double>(n_fake) * q_fake;
    const double var = nv * p * (1 - p) +
                       (static_cast<double>(n) - nv) * q * (1 - q) +
                       static_cast<double>(n_fake) * q_fake * (1 - q_fake);
    z[v] = (static_cast<double>(supports[v]) - mean) / std::sqrt(var);
  }
  return z;
}

TEST(StreamingE2E, MillionUsersThousandValuesCompletesAndConforms) {
  const uint64_t n = 1000000, d = 1024;
  ldp::Grr oracle(3.0, d);
  auto counts = HeavyHitterCounts(n, d);
  auto values = ExpandValues(counts);
  ASSERT_EQ(values.size(), n);

  StreamingOptions opts;
  opts.batch_size = 8192;
  opts.queue_capacity = 32;
  opts.pool = &GlobalThreadPool();
  StreamingCollector collector(oracle, opts);

  // Producer: encode batch by batch (deterministic chunk seeds).
  const uint64_t base_seed = 0xE2E0001ULL;
  for (uint64_t lo = 0; lo < n; lo += opts.batch_size) {
    uint64_t hi = std::min<uint64_t>(n, lo + opts.batch_size);
    Rng batch_rng(base_seed ^ (lo * 0x9E3779B97F4A7C15ULL));
    std::vector<ldp::LdpReport> reports;
    reports.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      reports.push_back(oracle.Encode(values[i], &batch_rng));
    }
    ASSERT_TRUE(collector.Offer(MakePlainBatch(std::move(reports))).ok());
  }
  auto round = collector.FinishRound(n, 0, Calibration::kStandard);
  ASSERT_TRUE(round.ok()) << round.status().ToString();

  // The full stream was ingested, batched as configured.
  EXPECT_EQ(round->reports_decoded, n);
  EXPECT_EQ(round->stats.rows, n);
  EXPECT_EQ(round->stats.batches, (n + opts.batch_size - 1) / opts.batch_size);
  EXPECT_GT(round->stats.rows_per_second, 0.0);

  // Distribution conformance of the streaming run, per-value z-scores.
  const auto sp = oracle.support_probs();
  auto z_stream = SupportZScores(round->supports, counts, n, 0, sp.p_true,
                                 sp.q_other, sp.q_fake);
  for (double z : z_stream) ASSERT_LT(std::fabs(z), 6.0);

  // The fast simulator draws from the same law; its z-sample must match
  // the streaming run's under a two-sample KS test.
  Rng sim_rng(9090);
  auto sim_supports =
      ldp::FastSimulateSupports(sp, counts, n, 0, &sim_rng);
  auto z_sim = SupportZScores(sim_supports, counts, n, 0, sp.p_true,
                              sp.q_other, sp.q_fake);
  double d_stat = TwoSampleKsStat(z_stream, z_sim);
  double pval = TwoSampleKsPValue(d_stat, z_stream.size(), z_sim.size());
  EXPECT_GT(pval, 1e-3) << "streaming vs fast-sim KS D=" << d_stat;

  // Estimates recover the heavy hitters.
  EXPECT_NEAR(round->estimates[0], 0.10, 0.01);
  EXPECT_NEAR(round->estimates[1], 0.05, 0.01);
}

TEST(StreamingE2E, CollectStreamingAgreesWithSimulateCollect) {
  // The planner-chosen oracle at d = 1024: one CollectStreaming round and
  // one SimulateCollect round must tell the same story — per-value
  // z-conformance of the streamed supports, matching z-samples under KS,
  // and comparable MSE against the ground truth.
  const uint64_t n = 60000, d = 1024;
  core::PrivacyGoals goals;
  core::ShuffleDpCollector::Options options;
  options.streaming.batch_size = 4096;
  auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
  ASSERT_TRUE(collector.ok()) << collector.status().ToString();
  const auto& oracle = (*collector)->oracle();
  const uint64_t n_r = (*collector)->plan().n_r;

  auto counts = HeavyHitterCounts(n, d);
  auto values = ExpandValues(counts);

  Rng rng(31337);
  auto round = (*collector)->CollectStreaming(values, &rng);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->reports_decoded + round->reports_invalid, n + n_r);

  const auto sp = oracle.support_probs();
  const double q_fake = oracle.OrdinalFakeSupportProb();
  auto z_stream = SupportZScores(round->supports, counts, n, n_r,
                                 sp.p_true, sp.q_other, q_fake);
  for (double z : z_stream) ASSERT_LT(std::fabs(z), 6.0);

  // SimulateCollect draws supports from the same law; reconstruct them
  // from its estimates by inverting the (linear) ordinal calibration.
  auto sim = (*collector)->SimulateCollect(counts, n, &rng);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  std::vector<uint64_t> sim_supports(d);
  const double denom =
      static_cast<double>(n) * (sp.p_true - sp.q_other);
  const double baseline = static_cast<double>(n) * sp.q_other +
                          static_cast<double>(n_r) * q_fake;
  for (uint64_t v = 0; v < d; ++v) {
    sim_supports[v] = static_cast<uint64_t>(
        std::llround((*sim)[v] * denom + baseline));
  }
  auto z_sim = SupportZScores(sim_supports, counts, n, n_r, sp.p_true,
                              sp.q_other, q_fake);
  double d_stat = TwoSampleKsStat(z_stream, z_sim);
  double pval = TwoSampleKsPValue(d_stat, z_stream.size(), z_sim.size());
  EXPECT_GT(pval, 1e-3) << "CollectStreaming vs SimulateCollect KS D="
                        << d_stat;

  // Same utility on the same ground truth.
  std::vector<double> truth(d);
  for (uint64_t v = 0; v < d; ++v) {
    truth[v] = static_cast<double>(counts[v]) / static_cast<double>(n);
  }
  double mse_stream = MeanSquaredError(truth, round->estimates);
  double mse_sim = MeanSquaredError(truth, *sim);
  EXPECT_LT(mse_stream, 10 * mse_sim + 1e-6);
  EXPECT_LT(mse_sim, 10 * mse_stream + 1e-6);
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// Deadline and eviction behavior of the fault-tolerant transport: a
// silent peer surfaces as kDeadlineExceeded (never a hang), refused and
// injected-refused connects as kUnavailable, idle connections are
// evicted and counted, and the kWatermark flush barrier stays exact with
// concurrent producers under injected recv delays.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "ldp/grr.h"
#include "service/fault_injection.h"
#include "service/retry.h"
#include "service/transport.h"

namespace shuffledp {
namespace service {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

// A listening socket that accepts into the kernel backlog but never
// reads or replies — the "silent peer" every deadline must beat.
struct SilentListener {
  int fd = -1;
  uint16_t port = 0;

  SilentListener() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(fd, 8);
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port = ntohs(addr.sin_port);
  }
  ~SilentListener() {
    if (fd >= 0) ::close(fd);
  }
};

TEST(TransportDeadlines, SilentPeerReadFailsWithinDeadline) {
  SilentListener silent;
  CollectorClientOptions options;
  options.read_timeout_ms = 80;
  auto client = CollectorClient::Connect("127.0.0.1", silent.port, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const auto t0 = Clock::now();
  auto watermark = (*client)->QueryWatermark();
  ASSERT_FALSE(watermark.ok());
  EXPECT_EQ(watermark.status().code(), StatusCode::kDeadlineExceeded);
  // The error names the endpoint so a fleet operator knows *which* peer
  // went silent.
  EXPECT_NE(watermark.status().message().find(
                "127.0.0.1:" + std::to_string(silent.port)),
            std::string::npos)
      << watermark.status().ToString();
  EXPECT_TRUE(IsRetryableTransportError(watermark.status()));
  EXPECT_LT(ElapsedMs(t0), 5000);  // bounded, not a hang
}

TEST(TransportDeadlines, RefusedConnectIsUnavailableAndNamesEndpoint) {
  // Grab a port, then close it: nothing listens there.
  uint16_t dead_port;
  {
    SilentListener probe;
    dead_port = probe.port;
  }
  const auto t0 = Clock::now();
  auto client = CollectorClient::Connect("127.0.0.1", dead_port);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(client.status().message().find(std::to_string(dead_port)),
            std::string::npos);
  EXPECT_TRUE(IsRetryableTransportError(client.status()));
  EXPECT_LT(ElapsedMs(t0), 5000);
}

TEST(TransportDeadlines, InjectedRefusedConnectIsUnavailable) {
  SilentListener silent;  // real listener; the fault fires first
  FaultInjector fi(1);
  FaultRule rule;
  rule.op = FaultOp::kConnect;
  rule.port = silent.port;
  rule.count = 1;
  rule.action = FaultAction::FailErrno(ECONNREFUSED);
  fi.AddRule(rule);
  ScopedFaultInjector scope(&fi);

  auto refused = CollectorClient::Connect("127.0.0.1", silent.port);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("[injected]"), std::string::npos);
  EXPECT_EQ(fi.injected(FaultOp::kConnect), 1u);

  // The rule's window is spent: the next dial goes through.
  auto ok = CollectorClient::Connect("127.0.0.1", silent.port);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(TransportDeadlines, IdleConnectionsAreEvictedAndCounted) {
  ldp::Grr grr(2.0, 16);
  CollectionServerOptions options;
  options.idle_timeout_ms = 80;
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Say nothing; the endpoint must evict us.
  for (int spin = 0; spin < 600 && (*server)->stats().evicted_idle == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  CollectionServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.evicted_idle, 1u);
  EXPECT_GE(stats.connections_accepted, 1u);
  EXPECT_GE(stats.connections_closed, 1u);

  // The dropped connection surfaces client-side as a retryable error,
  // not a protocol violation — recovery reconnects through it.
  auto watermark = (*client)->QueryWatermark();
  ASSERT_FALSE(watermark.ok());
  EXPECT_TRUE(IsRetryableTransportError(watermark.status()))
      << watermark.status().ToString();

  // An active connection is never idle-evicted: queries keep it alive.
  auto fresh = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fresh.ok());
  for (int i = 0; i < 5; ++i) {
    auto alive = (*fresh)->QueryWatermark();
    EXPECT_TRUE(alive.ok()) << alive.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_EQ((*server)->stats().evicted_idle, 1u);
}

TEST(TransportFlushBarrier, ConcurrentProducersUnderInjectedDelays) {
  ldp::Grr grr(2.0, 16);
  CollectionServerOptions options;
  options.streaming.batch_size = 3;
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Jittered recv scheduling on the endpoint: every producer's frames
  // race into the queue under random small stalls, seeded so the run
  // replays.
  FaultInjector fi(0xBEEF);
  FaultRule slow;
  slow.op = FaultOp::kRecv;
  slow.port = (*server)->port();
  slow.probability = 0.3;
  slow.action = FaultAction::DelayMs(2);
  fi.AddRule(slow);
  ScopedFaultInjector scope(&fi);

  constexpr int kProducers = 4;
  constexpr uint64_t kBatchesEach = 10;
  std::vector<std::thread> producers;
  std::vector<Status> outcomes(kProducers, Status::OK());
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) {
        outcomes[t] = client.status();
        return;
      }
      for (uint64_t b = 0; b < kBatchesEach; ++b) {
        Status sent = (*client)->SendOrdinals(
            0, grr, {1, 2, static_cast<uint64_t>(t)});
        if (!sent.ok()) {
          outcomes[t] = sent;
          return;
        }
      }
      // Flush barrier: the reply certifies every batch this connection
      // sent has been handed to the collector queue.
      auto barrier = (*client)->QueryWatermark();
      if (!barrier.ok()) outcomes[t] = barrier.status();
    });
  }
  for (std::thread& t : producers) t.join();
  for (const Status& s : outcomes) ASSERT_TRUE(s.ok()) << s.ToString();

  // After every producer's barrier, the endpoint's watermark counts all
  // accepted batches exactly — delays shift timing, never the count.
  auto probe = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(probe.ok());
  auto watermark = (*probe)->QueryWatermark();
  ASSERT_TRUE(watermark.ok()) << watermark.status().ToString();
  EXPECT_EQ(*watermark, kProducers * kBatchesEach);

  const uint64_t n = kProducers * kBatchesEach * 3;
  auto result = (*probe)->FinishRound(0, n, 0, Calibration::kStandard);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reports_decoded, n);

  // The round closed: the watermark resets for the next round.
  auto reset = (*probe)->QueryWatermark();
  ASSERT_TRUE(reset.ok());
  EXPECT_EQ(*reset, 0u);
}

TEST(TransportIndexedIngest, DuplicateStreamsIngestExactlyOnce) {
  // The recovery race the batch-index gate exists for: after a client
  // reconnects, the replaced connection's kernel buffers can still
  // deliver every batch the replay re-sends. Model the worst case — two
  // connections streaming the *same* indexed batches 0..19 concurrently
  // — and require exactly-once ingestion regardless of interleaving.
  ldp::Grr grr(2.0, 16);
  CollectionServerOptions options;
  options.streaming.batch_size = 3;
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr uint64_t kBatches = 20;
  std::vector<std::thread> streams;
  std::vector<Status> outcomes(2, Status::OK());
  for (int t = 0; t < 2; ++t) {
    streams.emplace_back([&, t] {
      auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) {
        outcomes[t] = client.status();
        return;
      }
      for (uint64_t b = 0; b < kBatches; ++b) {
        // Identical payloads: batch b carries {1, 2, b % 16} on both
        // streams, exactly what a replay of the same log produces.
        Status sent = (*client)->SendOrdinals(0, b, grr, {1, 2, b % 16});
        if (!sent.ok()) {
          outcomes[t] = sent;
          return;
        }
      }
      auto barrier = (*client)->QueryWatermark();
      if (!barrier.ok()) outcomes[t] = barrier.status();
    });
  }
  for (std::thread& t : streams) t.join();
  for (const Status& s : outcomes) ASSERT_TRUE(s.ok()) << s.ToString();

  // Every index accepted once, every second arrival dropped: 40 frames
  // in, watermark 20, 20 dedups, and the round tallies 20 batches.
  auto probe = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(probe.ok());
  auto watermark = (*probe)->QueryWatermark();
  ASSERT_TRUE(watermark.ok()) << watermark.status().ToString();
  EXPECT_EQ(*watermark, kBatches);
  EXPECT_EQ((*server)->stats().batches_deduped, kBatches);

  const uint64_t n = kBatches * 3;
  auto result = (*probe)->FinishRound(0, n, 0, Calibration::kStandard);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reports_decoded, n);
}

TEST(TransportIndexedIngest, StaleDuplicateDroppedAndGapRejected) {
  ldp::Grr grr(2.0, 16);
  auto server = CollectionServer::Start(grr, CollectionServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->SendOrdinals(0, 0, grr, {1, 2, 3}).ok());
  ASSERT_TRUE((*client)->SendOrdinals(0, 1, grr, {4, 5, 6}).ok());
  auto mark = (*client)->QueryWatermark();
  ASSERT_TRUE(mark.ok());
  EXPECT_EQ(*mark, 2u);

  // A stale index (a straggler from a replaced connection) is dropped
  // silently — the connection stays healthy, the watermark holds.
  ASSERT_TRUE((*client)->SendOrdinals(0, 0, grr, {1, 2, 3}).ok());
  mark = (*client)->QueryWatermark();
  ASSERT_TRUE(mark.ok()) << mark.status().ToString();
  EXPECT_EQ(*mark, 2u);
  EXPECT_EQ((*server)->stats().batches_deduped, 1u);

  // A future index means a batch was lost in between: fatal, and the
  // error must not be retryable (a replay cannot fill the hole).
  ASSERT_TRUE((*client)->SendOrdinals(0, 5, grr, {7, 8, 9}).ok());
  auto violated = (*client)->QueryWatermark();
  ASSERT_FALSE(violated.ok());
  EXPECT_EQ(violated.status().code(), StatusCode::kProtocolViolation)
      << violated.status().ToString();
  EXPECT_FALSE(IsRetryableTransportError(violated.status()));
}

TEST(TransportFlushBarrier, WatermarkRoundPairConsistentAcrossRoundClose) {
  // A watermark query racing a round close must answer either
  // (old round, old count) or (new round, 0) — never the torn pair
  // (old round, new zeroed count), which recovery would treat as "the
  // endpoint consumed nothing" and fail the round on a phantom round
  // mismatch after replay. Hammer the close boundary across rounds.
  ldp::Grr grr(2.0, 16);
  auto server = CollectionServer::Start(grr, CollectionServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto producer = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(producer.ok());
  auto closer = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(closer.ok());

  constexpr uint64_t kRounds = 8;
  constexpr uint64_t kBatches = 5;
  for (uint64_t r = 0; r < kRounds; ++r) {
    for (uint64_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE((*producer)->SendOrdinals(r, b, grr, {1, 2, 3}).ok());
    }
    // Barrier: all 5 batches are ingested before the close starts, so
    // on this connection (round r, w) is only ever valid with w == 5.
    auto barrier = (*producer)->QueryWatermark();
    ASSERT_TRUE(barrier.ok()) << barrier.status().ToString();
    ASSERT_EQ(*barrier, kBatches);

    std::thread close([&] {
      auto result =
          (*closer)->FinishRound(r, kBatches * 3, 0, Calibration::kStandard);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    });
    uint64_t seen_round = r;
    while (seen_round == r) {
      uint64_t reply_round = 0;
      auto mark = (*producer)->QueryWatermark(&reply_round);
      ASSERT_TRUE(mark.ok()) << mark.status().ToString();
      if (reply_round == r) {
        EXPECT_EQ(*mark, kBatches) << "torn (old round, reset count) pair";
      } else {
        ASSERT_EQ(reply_round, r + 1);
        EXPECT_EQ(*mark, 0u) << "torn (new round, stale count) pair";
      }
      seen_round = reply_round;
    }
    close.join();
  }
}

TEST(TransportFaultInjection, TruncateSendZeroClampsToOneByte) {
  // TruncateSend(0) must not script a 0-length ::send — its 0 return
  // would be mislabeled with a stale errno. The action clamps to the
  // smallest real torn write instead.
  EXPECT_EQ(FaultAction::TruncateSend(0).max_bytes, 1u);

  ldp::Grr grr(2.0, 16);
  auto server = CollectionServer::Start(grr, CollectionServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  FaultInjector fi(7);
  FaultRule torn;
  torn.op = FaultOp::kSend;
  torn.port = (*server)->port();
  torn.count = 1;
  torn.action = FaultAction::TruncateSend(0);
  fi.AddRule(torn);
  ScopedFaultInjector scope(&fi);

  // The first client send is torn to a single byte; the frame must
  // still complete (resumed sends) rather than fail spuriously.
  auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto mark = (*client)->QueryWatermark();
  EXPECT_TRUE(mark.ok()) << mark.status().ToString();
  EXPECT_EQ(fi.injected(FaultOp::kSend), 1u);
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// Transport framing: codec round trips, the byte-exact golden vector
// documented in docs/WIRE_FORMAT.md, hostile-stream handling, and a
// socket-level check that a garbage connection cannot take the endpoint
// down.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <vector>

#include "ldp/grr.h"
#include "ldp/wire.h"
#include "service/transport.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace shuffledp {
namespace service {
namespace {

Frame MakeBatchFrame(uint64_t round_id, Bytes payload) {
  Frame frame;
  frame.type = FrameType::kBatch;
  frame.round_id = round_id;
  frame.payload = std::move(payload);
  return frame;
}

// The worked example in docs/WIRE_FORMAT.md, byte for byte: a kBatch
// frame for round 5 carrying the ordinals {3, 7} of a GRR oracle with
// d = 11 (PackedBits = 4, one byte per ordinal). If this test breaks,
// the documentation is lying — fix the doc with the new bytes or the
// code, never the test alone.
TEST(TransportFraming, GoldenVectorMatchesWireFormatDoc) {
  ldp::Grr grr(2.0, 11);
  ASSERT_EQ(grr.PackedBits(), 4u);
  Bytes payload = ldp::SerializeOrdinals(grr, {3, 7});
  const Bytes expected_payload = {0x02, 0x03, 0x07};
  EXPECT_EQ(payload, expected_payload);

  Bytes wire = EncodeFrame(MakeBatchFrame(5, payload));
  const Bytes expected_wire = {
      0x53, 0x44, 0x50, 0x43,                          // magic "SDPC"
      0x02,                                            // version
      0x01,                                            // type kBatch
      0x00, 0x00,                                      // partition 0
      0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // round id 5
      0x03, 0x00, 0x00, 0x00,                          // payload length 3
      0x0B, 0x86, 0x02, 0x9C,                          // CRC-32(hdr+payload)
      0x02, 0x03, 0x07,                                // payload
  };
  EXPECT_EQ(wire, expected_wire);

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire).ok());
  Frame decoded;
  ASSERT_TRUE(decoder.Next(&decoded));
  EXPECT_EQ(decoded.type, FrameType::kBatch);
  EXPECT_EQ(decoded.partition, 0u);
  EXPECT_EQ(decoded.round_id, 5u);
  EXPECT_EQ(decoded.payload, expected_payload);
}

// The kQuery request from docs/WIRE_FORMAT.md, byte for byte: an
// empty-payload frame whose header carries the queried round id (3
// here). The CRC still covers the header, so a corrupted query cannot
// silently ask about the wrong round.
TEST(TransportFraming, QueryFrameGoldenVectorMatchesWireFormatDoc) {
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.round_id = 3;

  Bytes wire = EncodeFrame(frame);
  const Bytes expected_wire = {
      0x53, 0x44, 0x50, 0x43,                          // magic "SDPC"
      0x02,                                            // version
      0x08,                                            // type kQuery
      0x00, 0x00,                                      // partition 0
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // round id 3
      0x00, 0x00, 0x00, 0x00,                          // payload length 0
      0xA2, 0x15, 0x67, 0x74,                          // CRC-32(header)
  };
  EXPECT_EQ(wire, expected_wire);

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire).ok());
  Frame decoded;
  ASSERT_TRUE(decoder.Next(&decoded));
  EXPECT_EQ(decoded.type, FrameType::kQuery);
  EXPECT_EQ(decoded.round_id, 3u);
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(TransportFraming, PartitionFieldRoundTrips) {
  Frame frame = MakeBatchFrame(7, Bytes{1, 2, 3});
  frame.partition = 0xBEEF;
  Bytes wire = EncodeFrame(frame);
  EXPECT_EQ(wire[6], 0xEF);  // partition id, u16 LE at offset 6
  EXPECT_EQ(wire[7], 0xBE);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire).ok());
  Frame decoded;
  ASSERT_TRUE(decoder.Next(&decoded));
  EXPECT_EQ(decoded.partition, 0xBEEFu);
  EXPECT_EQ(decoded.round_id, 7u);
}

TEST(TransportFraming, TornFeedReassemblesEveryFrame) {
  std::vector<Frame> frames;
  Rng rng(11);
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    Bytes payload(rng.UniformU64(200));
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextU64());
    frames.push_back(MakeBatchFrame(i, payload));
    Bytes wire = EncodeFrame(frames.back());
    stream.insert(stream.end(), wire.begin(), wire.end());
  }

  // One byte at a time: every frame must come out intact, none early.
  FrameDecoder decoder;
  size_t decoded_count = 0;
  for (uint8_t byte : stream) {
    ASSERT_TRUE(decoder.Feed(&byte, 1).ok());
    Frame out;
    while (decoder.Next(&out)) {
      ASSERT_LT(decoded_count, frames.size());
      EXPECT_EQ(out.round_id, frames[decoded_count].round_id);
      EXPECT_EQ(out.payload, frames[decoded_count].payload);
      ++decoded_count;
    }
  }
  EXPECT_EQ(decoded_count, frames.size());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(TransportFraming, TruncatedStreamIsPendingNotError) {
  Bytes wire = EncodeFrame(MakeBatchFrame(1, Bytes{1, 2, 3, 4}));
  for (size_t len = 0; len < wire.size(); ++len) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(wire.data(), len).ok()) << "len=" << len;
    Frame out;
    EXPECT_FALSE(decoder.Next(&out)) << "len=" << len;
  }
}

TEST(TransportFraming, BadMagicIsRejected) {
  Bytes wire = EncodeFrame(MakeBatchFrame(1, Bytes{1}));
  wire[0] ^= 0xFF;
  FrameDecoder decoder;
  Status st = decoder.Feed(wire);
  EXPECT_EQ(st.code(), StatusCode::kProtocolViolation);
}

TEST(TransportFraming, VersionSkewIsRejected) {
  Bytes wire = EncodeFrame(MakeBatchFrame(1, Bytes{1}));
  wire[4] = kWireVersion + 1;
  FrameDecoder decoder;
  Status st = decoder.Feed(wire);
  EXPECT_EQ(st.code(), StatusCode::kProtocolViolation);
  EXPECT_NE(st.message().find("version"), std::string::npos);
}

TEST(TransportFraming, UnknownTypeIsRejected) {
  Bytes wire = EncodeFrame(MakeBatchFrame(1, Bytes{1}));
  wire[5] = 0x7F;  // unknown frame type
  FrameDecoder decoder;
  EXPECT_EQ(decoder.Feed(wire).code(), StatusCode::kProtocolViolation);
}

TEST(TransportFraming, LengthLieBeyondCapIsRejectedBeforeBuffering) {
  Bytes wire = EncodeFrame(MakeBatchFrame(1, Bytes{1}));
  // Lie: 0xFFFFFFFF payload bytes allegedly follow.
  wire[16] = wire[17] = wire[18] = wire[19] = 0xFF;
  FrameDecoder decoder;
  Status st = decoder.Feed(wire);
  EXPECT_EQ(st.code(), StatusCode::kProtocolViolation);
  EXPECT_NE(st.message().find("cap"), std::string::npos);
}

TEST(TransportFraming, PayloadCorruptionFailsTheCrc) {
  Bytes payload(64, 0xAB);
  Bytes wire = EncodeFrame(MakeBatchFrame(9, payload));
  for (size_t byte = kFrameHeaderBytes; byte < wire.size(); byte += 7) {
    Bytes mutated = wire;
    mutated[byte] ^= 0x01;
    FrameDecoder decoder;
    Status st = decoder.Feed(mutated);
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << "byte=" << byte;
  }
}

TEST(TransportFraming, ErrorsAreSticky) {
  Bytes bad = EncodeFrame(MakeBatchFrame(1, Bytes{1}));
  bad[0] ^= 0xFF;
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(bad).ok());
  // A pristine frame after the poison must not resurrect the stream.
  Bytes good = EncodeFrame(MakeBatchFrame(2, Bytes{2}));
  EXPECT_FALSE(decoder.Feed(good).ok());
  Frame out;
  EXPECT_FALSE(decoder.Next(&out));
}

TEST(TransportFraming, RoundResultCodecRoundTripsAndRejectsHostileBytes) {
  RemoteRoundResult result;
  result.supports = {5, 0, 123456789, 42};
  result.estimates = {0.5, -0.001, 0.25, 0.125};
  result.reports_decoded = 1000;
  result.reports_invalid = 7;
  result.dummies_recognized = 3;
  result.spot_check_passed = false;

  Bytes payload = SerializeRoundResult(result);
  auto parsed = ParseRoundResult(payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->supports, result.supports);
  EXPECT_EQ(parsed->estimates, result.estimates);
  EXPECT_EQ(parsed->reports_decoded, result.reports_decoded);
  EXPECT_EQ(parsed->reports_invalid, result.reports_invalid);
  EXPECT_EQ(parsed->dummies_recognized, result.dummies_recognized);
  EXPECT_FALSE(parsed->spot_check_passed);

  for (size_t len = 0; len < payload.size(); ++len) {
    Bytes truncated(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(ParseRoundResult(truncated).ok()) << "len=" << len;
  }
  // A lying domain size must fail fast, not allocate.
  ByteWriter w;
  w.PutVarint(0);
  w.PutVarint(0);
  w.PutVarint(0);
  w.PutU8(1);
  w.PutVarint(uint64_t{1} << 60);
  EXPECT_FALSE(ParseRoundResult(w.data()).ok());
}

TEST(TransportFraming, RawSupportsResultCarriesZeroEstimates) {
  RemoteRoundResult result;
  result.supports = {4, 5, 6};
  result.reports_decoded = 15;
  Bytes payload = SerializeRoundResult(result);
  auto parsed = ParseRoundResult(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->supports, result.supports);
  EXPECT_TRUE(parsed->estimates.empty());

  // An estimate count that is neither 0 nor d is corrupt, not a partial
  // calibration.
  ByteWriter w;
  w.PutVarint(0);  // decoded
  w.PutVarint(0);  // invalid
  w.PutVarint(0);  // dummies recognized
  w.PutVarint(0);  // dummies expected
  w.PutU8(1);      // spot check
  w.PutVarint(2);  // d = 2
  w.PutVarint(1);
  w.PutVarint(1);  // supports
  w.PutVarint(1);  // e = 1: neither 0 nor d
  w.PutDouble(0.5);
  EXPECT_FALSE(ParseRoundResult(w.data()).ok());
}

TEST(TransportFraming, HelloHandshakeAgreesAndRejectsMismatch) {
  ldp::Grr grr(2.0, 32);
  auto map = PartitionMap::Create(grr, PartitionMode::kByValue, 2);
  ASSERT_TRUE(map.ok());

  CollectionServerOptions options;
  options.partition_map = *map;
  options.partition_id = 1;
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  {
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    auto round = (*client)->Hello(*map, 1);
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    EXPECT_EQ(*round, 0u);
    EXPECT_EQ((*client)->partition(), 1u);
  }
  {
    // Wrong partition id: the endpoint owns 1, the client expects 0.
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    auto round = (*client)->Hello(*map, 0);
    ASSERT_FALSE(round.ok());
    EXPECT_EQ(round.status().code(), StatusCode::kProtocolViolation);
  }
  {
    // Wrong layout: same endpoint, a 4-way map.
    auto other = PartitionMap::Create(grr, PartitionMode::kByValue, 4);
    ASSERT_TRUE(other.ok());
    auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    auto round = (*client)->Hello(*other, 1);
    ASSERT_FALSE(round.ok());
    EXPECT_EQ(round.status().code(), StatusCode::kProtocolViolation);
  }
}

TEST(TransportFraming, PortCollisionReportsAddrInUseDistinctly) {
  ldp::Grr grr(2.0, 8);
  CollectionServerOptions options;  // port 0: kernel-assigned, race-free
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok());
  ASSERT_NE((*server)->port(), 0u);  // surfaced before any accept

  CollectionServerOptions clash;
  clash.port = (*server)->port();
  auto second = CollectionServer::Start(grr, clash);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
  EXPECT_NE(second.status().message().find("EADDRINUSE"),
            std::string::npos);
}

// A connection that sends garbage must be dropped without disturbing a
// well-behaved client on the same endpoint.
TEST(TransportFraming, GarbageConnectionDoesNotKillTheEndpoint) {
  ldp::Grr grr(2.0, 16);
  CollectionServerOptions options;
  options.streaming.batch_size = 64;
  auto server = CollectionServer::Start(grr, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  {
    // Raw socket, no framing: 4 KiB of noise.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons((*server)->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)), 0);
    Rng rng(3);
    Bytes noise(4096);
    for (auto& b : noise) b = static_cast<uint8_t>(rng.NextU64());
    ::send(fd, noise.data(), noise.size(), MSG_NOSIGNAL);
    ::close(fd);
  }

  // The endpoint must still complete a clean round.
  auto client = CollectorClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Rng rng(4);
  std::vector<ldp::LdpReport> reports;
  for (int i = 0; i < 500; ++i) reports.push_back(grr.Encode(i % 16, &rng));
  const uint64_t round = (*server)->round_id();
  ASSERT_TRUE((*client)->SendReports(round, grr, reports).ok());
  auto result = (*client)->FinishRound(round, 500, 0,
                                       Calibration::kStandard);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reports_decoded, 500u);
}

}  // namespace
}  // namespace service
}  // namespace shuffledp

// Attack matrix: every ShufflerBehaviour × spot-check combination of the
// sequential shuffle, asserted end-to-end through the streaming server
// pipeline (§VI-A1).
//
// Spot-check theory: the server plants m dummy accounts whose payloads it
// can recognize; shufflers cannot distinguish them from real users. A
// shuffler that replaces a fraction β of the reports it forwards destroys
// each dummy independently with probability β, so
//     Pr[undetected] = (1 − β)^m                            (§VI-A1)
// — certain detection for wholesale replacement (β = 1), overwhelming
// detection for dropping half (β = 1/2, m = 16 → 2^-16), and *no*
// detection ever for biased fake injection (fakes are new reports; no
// dummy is touched), which is exactly the SS weakness PEOS fixes.

#include <gtest/gtest.h>

#include <vector>

#include "ldp/grr.h"
#include "shuffle/sequential_shuffle.h"

namespace shuffledp {
namespace shuffle {
namespace {

constexpr uint64_t kN = 300;
constexpr uint64_t kD = 8;
constexpr uint64_t kFakes = 150;
constexpr uint64_t kDummies = 16;
constexpr uint64_t kTarget = 5;

std::vector<uint64_t> SkewedValues(uint64_t n, uint64_t d) {
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = (i < n / 2) ? 0 : 1 + (i % (d - 1));
  }
  return values;
}

SequentialShuffleResult RunCell(ShufflerBehaviour behaviour, uint64_t dummies,
                            uint64_t seed, bool all_shufflers = false) {
  ldp::Grr oracle(3.0, kD);
  auto values = SkewedValues(kN, kD);
  SequentialShuffleConfig config;
  config.num_shufflers = 3;
  config.fake_reports_total = kFakes;
  config.spot_check_dummies = dummies;
  config.poison_target_value = kTarget;
  // Malicious middle shuffler by default; all three for fake biasing
  // (the strongest §VI-A1 poisoning scenario).
  config.behaviours = all_shufflers
                          ? std::vector<ShufflerBehaviour>(3, behaviour)
                          : std::vector<ShufflerBehaviour>{
                                ShufflerBehaviour::kHonest, behaviour,
                                ShufflerBehaviour::kHonest};
  crypto::SecureRandom rng(seed);
  auto result = RunSequentialShuffle(oracle, values, config, &rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : SequentialShuffleResult{};
}

// --- Honest column: the spot check never trips ----------------------------

TEST(AttackMatrix, HonestWithoutDummies) {
  auto r = RunCell(ShufflerBehaviour::kHonest, 0, 1);
  EXPECT_TRUE(r.spot_check_passed);  // vacuous
  EXPECT_EQ(r.reports_at_server, kN + kFakes);
  EXPECT_NEAR(r.estimates[0], 0.5, 0.15);
}

TEST(AttackMatrix, HonestWithDummiesNeverTrips) {
  // Pr[false positive] = 0 by construction; check across several seeds.
  for (uint64_t seed : {2, 3, 4, 5, 6}) {
    auto r = RunCell(ShufflerBehaviour::kHonest, kDummies, seed);
    EXPECT_TRUE(r.spot_check_passed) << "false positive at seed " << seed;
    EXPECT_EQ(r.reports_at_server, kN + kFakes);  // dummies stripped
    EXPECT_NEAR(r.estimates[0], 0.5, 0.15);
  }
}

// --- Biased fakes: undetectable, but poisons the estimate -----------------

TEST(AttackMatrix, BiasedFakesWithoutDummies) {
  auto r = RunCell(ShufflerBehaviour::kBiasedFakes, 0, 7, /*all=*/true);
  EXPECT_TRUE(r.spot_check_passed);
  // All kFakes landed on the target instead of kFakes/kD: the estimate
  // gains ≈ (kFakes − kFakes/kD)/kN ≈ 0.44.
  EXPECT_GT(r.estimates[kTarget], 0.25);
}

TEST(AttackMatrix, BiasedFakesPassSpotCheckEveryTime) {
  // β = 0 for user reports: Pr[undetected] = (1−0)^m = 1. The §VI-A1
  // spot check is structurally blind to fake-report bias.
  for (uint64_t seed : {8, 9, 10, 11}) {
    auto r = RunCell(ShufflerBehaviour::kBiasedFakes, kDummies, seed,
                 /*all=*/true);
    EXPECT_TRUE(r.spot_check_passed) << "seed " << seed;
    EXPECT_GT(r.estimates[kTarget], 0.25);
  }
}

// --- Replaced reports: detected with certainty when β = 1 -----------------

TEST(AttackMatrix, ReplaceWithoutDummiesGoesUnnoticed) {
  auto r = RunCell(ShufflerBehaviour::kReplaceReports, 0, 12);
  EXPECT_TRUE(r.spot_check_passed);  // nothing planted, nothing caught
  EXPECT_GT(r.estimates[kTarget], 0.8);
}

TEST(AttackMatrix, ReplaceWithDummiesAlwaysDetected) {
  // β = 1: Pr[undetected] = (1−1)^m = 0; every run must trip.
  for (uint64_t seed : {13, 14, 15, 16}) {
    auto r = RunCell(ShufflerBehaviour::kReplaceReports, kDummies, seed);
    EXPECT_FALSE(r.spot_check_passed) << "undetected at seed " << seed;
    // Estimation still proceeds so the caller can observe the poison.
    EXPECT_GT(r.estimates[kTarget], 0.8);
  }
}

// --- Dropped reports: detected with probability 1 − (1−β)^m ---------------

TEST(AttackMatrix, DropWithoutDummiesShrinksStream) {
  auto r = RunCell(ShufflerBehaviour::kDropReports, 0, 17);
  EXPECT_TRUE(r.spot_check_passed);
  // The middle shuffler drops half of n + n_r/3 in-flight reports; the
  // last shuffler still injects its fake quota afterwards.
  EXPECT_LT(r.reports_at_server, kN + kFakes);
}

TEST(AttackMatrix, DropWithDummiesDetectedWhp) {
  // β = 1/2, m = 16: Pr[undetected] = 2^-16 ≈ 1.5e-5 — every tested
  // seed must trip (a false negative here has probability < 1e-4 across
  // all four seeds combined under the §VI-A1 bound).
  for (uint64_t seed : {18, 19, 20, 21}) {
    auto r = RunCell(ShufflerBehaviour::kDropReports, kDummies, seed);
    EXPECT_FALSE(r.spot_check_passed) << "undetected at seed " << seed;
  }
}

}  // namespace
}  // namespace shuffle
}  // namespace shuffledp

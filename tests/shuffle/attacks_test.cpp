#include "shuffle/attacks.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/amplification.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"

namespace shuffledp {
namespace shuffle {
namespace {

TEST(AdversaryViewTest, ShufflerCollusionSeesOneReport) {
  Rng rng(1);
  ldp::Grr oracle(1.0, 8);
  auto view = SampleAdversaryView(oracle, Adversary::kServerAndShufflers, 3,
                                  {}, 100, 3, &rng);
  EXPECT_EQ(view.residual_reports, 1u);
  EXPECT_LE(view.probe_support, 1u);
}

TEST(AdversaryViewTest, UserCollusionLeavesVictimPlusFakes) {
  Rng rng(2);
  ldp::Grr oracle(1.0, 8);
  std::vector<uint64_t> others(500, 1);
  auto view = SampleAdversaryView(oracle, Adversary::kServerAndUsers, 3,
                                  others, 200, 3, &rng);
  EXPECT_EQ(view.residual_reports, 201u);  // victim + fakes, others gone
}

TEST(AdversaryViewTest, ServerViewCoversEveryone) {
  Rng rng(3);
  ldp::Grr oracle(1.0, 8);
  std::vector<uint64_t> others(50, 1);
  auto view = SampleAdversaryView(oracle, Adversary::kServer, 3, others, 20,
                                  3, &rng);
  EXPECT_EQ(view.residual_reports, 71u);
  EXPECT_LE(view.probe_support, 71u);
}

TEST(AuditTest, RejectsBadArguments) {
  Rng rng(4);
  ldp::Grr oracle(1.0, 8);
  EXPECT_FALSE(AuditAdversary(oracle, Adversary::kServer, 3, 3, {}, 0, 1000,
                              &rng)
                   .ok());
  EXPECT_FALSE(AuditAdversary(oracle, Adversary::kServer, 3, 9, {}, 0, 1000,
                              &rng)
                   .ok());
  EXPECT_FALSE(AuditAdversary(oracle, Adversary::kServer, 3, 4, {}, 0, 10,
                              &rng)
                   .ok());
}

// The LDP view (shuffler collusion) should leak close to the local ε,
// while the blanket views leak much less — the core §V ordering.
TEST(AuditTest, CollusionDegradesPrivacyInTheExpectedOrder) {
  Rng rng(5);
  const double eps_l = 2.0;
  ldp::Grr oracle(eps_l, 4);
  std::vector<uint64_t> others(400, 2);
  const uint64_t fakes = 400;
  const uint64_t trials = 4000;

  auto ldp_leak =
      AuditAdversary(oracle, Adversary::kServerAndShufflers, 0, 1, others,
                     fakes, trials, &rng);
  auto users_leak = AuditAdversary(oracle, Adversary::kServerAndUsers, 0, 1,
                                   others, fakes, trials, &rng);
  auto server_leak = AuditAdversary(oracle, Adversary::kServer, 0, 1, others,
                                    fakes, trials, &rng);
  ASSERT_TRUE(ldp_leak.ok() && users_leak.ok() && server_leak.ok());

  // Adv_a leaks the most; the blanket views leak strictly less.
  EXPECT_GT(ldp_leak->empirical_eps, users_leak->empirical_eps);
  EXPECT_GT(ldp_leak->empirical_eps, server_leak->empirical_eps);
  // Empirical lower bound never exceeds the theoretical local ε by much
  // (plug-in noise allows slight overshoot).
  EXPECT_LT(ldp_leak->empirical_eps, eps_l * 1.3);
}

TEST(AuditTest, LdpViewLeakIsCloseToLocalEps) {
  // For GRR with two values in a tiny domain the LDP likelihood ratio is
  // exactly e^ε at threshold "support = 1"; the audit should find ~ε.
  Rng rng(6);
  const double eps_l = 1.0;
  ldp::Grr oracle(eps_l, 4);
  auto leak = AuditAdversary(oracle, Adversary::kServerAndShufflers, 0, 1,
                             {}, 0, 60000, &rng);
  ASSERT_TRUE(leak.ok());
  EXPECT_NEAR(leak->empirical_eps, eps_l, 0.2);
}

TEST(AuditTest, MoreFakesLessLeakAgainstColludingUsers) {
  // Corollary 8 empirically: ε_s shrinks as n_r grows.
  Rng rng(7);
  ldp::Grr oracle(4.0, 4);  // nearly-truthful reports: blanket does the work
  const uint64_t trials = 6000;
  auto few = AuditAdversary(oracle, Adversary::kServerAndUsers, 0, 1, {},
                            50, trials, &rng);
  auto many = AuditAdversary(oracle, Adversary::kServerAndUsers, 0, 1, {},
                             2000, trials, &rng);
  ASSERT_TRUE(few.ok() && many.ok());
  EXPECT_GT(few->empirical_eps, many->empirical_eps);
}

TEST(AuditTest, SolhBlanketAlsoProtects) {
  Rng rng(8);
  ldp::LocalHash oracle(3.0, 64, 8, "SOLH");
  std::vector<uint64_t> others(300, 5);
  auto server_leak = AuditAdversary(oracle, Adversary::kServer, 0, 1, others,
                                    0, 4000, &rng);
  auto ldp_leak = AuditAdversary(oracle, Adversary::kServerAndShufflers, 0,
                                 1, others, 0, 4000, &rng);
  ASSERT_TRUE(server_leak.ok() && ldp_leak.ok());
  EXPECT_LT(server_leak->empirical_eps, ldp_leak->empirical_eps);
}

}  // namespace
}  // namespace shuffle
}  // namespace shuffledp

#include "shuffle/cost_model.h"

#include <gtest/gtest.h>

#include <thread>

namespace shuffledp {
namespace shuffle {
namespace {

TEST(CostLedgerTest, RecordsSendsByRole) {
  CostLedger ledger;
  ledger.RecordSend(Role::kUser, Role::kShuffler, 100);
  ledger.RecordSend(Role::kUser, Role::kShuffler, 50);
  ledger.RecordSend(Role::kShuffler, Role::kServer, 30);
  EXPECT_EQ(ledger.bytes_sent(Role::kUser), 150u);
  EXPECT_EQ(ledger.bytes_received(Role::kShuffler), 150u);
  EXPECT_EQ(ledger.bytes_sent(Role::kShuffler), 30u);
  EXPECT_EQ(ledger.bytes_received(Role::kServer), 30u);
  EXPECT_EQ(ledger.message_count(), 3u);
}

TEST(CostLedgerTest, RecordsComputeSeconds) {
  CostLedger ledger;
  ledger.RecordCompute(Role::kServer, 1.5);
  ledger.RecordCompute(Role::kServer, 0.5);
  EXPECT_NEAR(ledger.compute_seconds(Role::kServer), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(ledger.compute_seconds(Role::kUser), 0.0);
}

TEST(CostLedgerTest, ComputeScopeAttributesElapsedTime) {
  CostLedger ledger;
  {
    ComputeScope scope(&ledger, Role::kShuffler);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(ledger.compute_seconds(Role::kShuffler), 0.015);
  EXPECT_LT(ledger.compute_seconds(Role::kShuffler), 2.0);
}

TEST(CostLedgerTest, NullLedgerScopeIsSafe) {
  ComputeScope scope(nullptr, Role::kUser);
  SUCCEED();
}

TEST(CostLedgerTest, ResetClearsEverything) {
  CostLedger ledger;
  ledger.RecordSend(Role::kUser, Role::kServer, 10);
  ledger.RecordCompute(Role::kUser, 1.0);
  ledger.Reset();
  EXPECT_EQ(ledger.bytes_sent(Role::kUser), 0u);
  EXPECT_EQ(ledger.compute_seconds(Role::kUser), 0.0);
  EXPECT_EQ(ledger.message_count(), 0u);
}

TEST(CostLedgerTest, ThreadSafeAccumulation) {
  CostLedger ledger;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ledger] {
      for (int i = 0; i < 10000; ++i) {
        ledger.RecordSend(Role::kUser, Role::kServer, 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ledger.bytes_sent(Role::kUser), 40000u);
}

TEST(CostReportTest, SummarizeDividesPerRole) {
  CostLedger ledger;
  ledger.RecordSend(Role::kUser, Role::kShuffler, 1000);   // 10 users
  ledger.RecordSend(Role::kShuffler, Role::kServer, 2 * 1024 * 1024);
  ledger.RecordCompute(Role::kUser, 0.1);
  ledger.RecordCompute(Role::kShuffler, 4.0);
  ledger.RecordCompute(Role::kServer, 2.0);
  CostReport report = SummarizeCosts(ledger, /*n=*/10, /*r=*/2);
  EXPECT_EQ(report.user_comm_bytes_per_user, 100u);
  EXPECT_NEAR(report.user_comp_ms_per_user, 10.0, 1e-6);
  EXPECT_NEAR(report.aux_comp_seconds, 2.0, 1e-9);
  EXPECT_NEAR(report.aux_comm_mb_per_shuffler, 1.0, 1e-9);
  EXPECT_NEAR(report.server_comp_seconds, 2.0, 1e-9);
  EXPECT_NEAR(report.server_comm_mb, 2.0, 1e-9);
}

TEST(CostReportTest, ToStringContainsRoles) {
  CostReport report;
  report.n = 5;
  report.r = 3;
  std::string s = report.ToString();
  EXPECT_NE(s.find("user"), std::string::npos);
  EXPECT_NE(s.find("aux"), std::string::npos);
  EXPECT_NE(s.find("server"), std::string::npos);
}

TEST(RoleTest, Names) {
  EXPECT_STREQ(RoleName(Role::kUser), "user");
  EXPECT_STREQ(RoleName(Role::kShuffler), "shuffler");
  EXPECT_STREQ(RoleName(Role::kServer), "server");
}

}  // namespace
}  // namespace shuffle
}  // namespace shuffledp

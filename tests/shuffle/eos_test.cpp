#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/paillier.h"
#include "crypto/secret_sharing.h"
#include "shuffle/oblivious_shuffle.h"

namespace shuffledp {
namespace shuffle {
namespace {

// Shared 256-bit test key (key generation dominates test time otherwise).
class EosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new crypto::SecureRandom(uint64_t{424242});
    auto kp = crypto::PaillierGenerateKeyPair(256, rng_);
    ASSERT_TRUE(kp.ok());
    keys_ = new crypto::PaillierKeyPair(std::move(kp).value());
    pool_ = new crypto::RandomizerPool(keys_->pub, 8, rng_);
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete keys_;
    delete rng_;
    pool_ = nullptr;
    keys_ = nullptr;
    rng_ = nullptr;
  }

  // Builds an EOS state for `secrets`: r plaintext columns + encrypted
  // r-th share column (mirrors the PEOS user upload).
  static EosState MakeState(const std::vector<uint64_t>& secrets, uint32_t r,
                            unsigned ell) {
    EosState state;
    state.plain.ell = ell;
    state.plain.columns.assign(r,
                               std::vector<uint64_t>(secrets.size(), 0));
    state.cipher_column.resize(secrets.size());
    state.e_holder = r - 1;
    for (size_t i = 0; i < secrets.size(); ++i) {
      auto shares = crypto::SplitShares2Ell(secrets[i], r + 1, ell, rng_);
      for (uint32_t j = 0; j < r; ++j) state.plain.columns[j][i] = shares[j];
      auto c = keys_->pub.EncryptU64(shares[r], rng_);
      EXPECT_TRUE(c.ok());
      state.cipher_column[i] = std::move(c).value();
    }
    return state;
  }

  // Server-side reconstruction: plaintext columns + decrypted column.
  static std::vector<uint64_t> Reconstruct(const EosState& state,
                                           unsigned ell) {
    const uint64_t mask =
        ell >= 64 ? ~uint64_t{0} : ((uint64_t{1} << ell) - 1);
    std::vector<uint64_t> out = state.plain.Reconstruct();
    for (size_t i = 0; i < out.size(); ++i) {
      auto m = keys_->priv.DecryptMod2Ell(state.cipher_column[i], ell);
      EXPECT_TRUE(m.ok());
      out[i] = (out[i] + *m) & mask;
    }
    return out;
  }

  static crypto::SecureRandom* rng_;
  static crypto::PaillierKeyPair* keys_;
  static crypto::RandomizerPool* pool_;
};

crypto::SecureRandom* EosTest::rng_ = nullptr;
crypto::PaillierKeyPair* EosTest::keys_ = nullptr;
crypto::RandomizerPool* EosTest::pool_ = nullptr;

TEST_F(EosTest, PreservesMultisetWithPool) {
  std::vector<uint64_t> secrets = {11, 22, 33, 44, 55, 66, 77, 88};
  for (uint32_t r : {2u, 3u}) {
    EosState state = MakeState(secrets, r, 64);
    EosOptions opts;
    opts.public_key = &keys_->pub;
    opts.pool = pool_;
    CostLedger ledger;
    ASSERT_TRUE(
        RunEncryptedObliviousShuffle(&state, opts, rng_, &ledger).ok());
    auto out = Reconstruct(state, 64);
    auto sorted_in = secrets;
    std::sort(sorted_in.begin(), sorted_in.end());
    std::sort(out.begin(), out.end());
    EXPECT_EQ(out, sorted_in) << "r=" << r;
  }
}

TEST_F(EosTest, PreservesMultisetWithExactEncryption) {
  std::vector<uint64_t> secrets = {5, 6, 7, 8};
  EosState state = MakeState(secrets, 2, 64);
  EosOptions opts;
  opts.public_key = &keys_->pub;
  opts.pool = nullptr;  // fresh modexp per re-mask
  CostLedger ledger;
  ASSERT_TRUE(
      RunEncryptedObliviousShuffle(&state, opts, rng_, &ledger).ok());
  auto out = Reconstruct(state, 64);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint64_t>{5, 6, 7, 8}));
}

TEST_F(EosTest, SmallEllGroupWraps) {
  // ell = 16: shares and masks all wrap mod 2^16.
  std::vector<uint64_t> secrets = {0xFFFF, 0x1234, 0, 42};
  EosState state = MakeState(secrets, 3, 16);
  EosOptions opts;
  opts.public_key = &keys_->pub;
  opts.pool = pool_;
  CostLedger ledger;
  ASSERT_TRUE(
      RunEncryptedObliviousShuffle(&state, opts, rng_, &ledger).ok());
  auto out = Reconstruct(state, 16);
  auto sorted_in = secrets;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, sorted_in);
}

TEST_F(EosTest, CiphertextsAreRerandomizedEachRound) {
  std::vector<uint64_t> secrets = {9, 9, 9, 9};
  EosState state = MakeState(secrets, 2, 64);
  std::vector<crypto::BigInt> before;
  for (const auto& c : state.cipher_column) before.push_back(c.value);
  EosOptions opts;
  opts.public_key = &keys_->pub;
  opts.pool = pool_;
  CostLedger ledger;
  ASSERT_TRUE(
      RunEncryptedObliviousShuffle(&state, opts, rng_, &ledger).ok());
  // No post-shuffle ciphertext should equal any pre-shuffle one.
  for (const auto& c : state.cipher_column) {
    for (const auto& b : before) {
      EXPECT_NE(c.value, b);
    }
  }
}

TEST_F(EosTest, EHolderEndsAmongHiders) {
  std::vector<uint64_t> secrets(10, 1);
  EosState state = MakeState(secrets, 3, 64);
  EosOptions opts;
  opts.public_key = &keys_->pub;
  opts.pool = pool_;
  CostLedger ledger;
  ASSERT_TRUE(
      RunEncryptedObliviousShuffle(&state, opts, rng_, &ledger).ok());
  EXPECT_LT(state.e_holder, 3u);
}

TEST_F(EosTest, RejectsBadConfigurations) {
  EosOptions no_key;
  EosState state = MakeState({1, 2}, 2, 64);
  CostLedger ledger;
  EXPECT_FALSE(
      RunEncryptedObliviousShuffle(&state, no_key, rng_, &ledger).ok());

  EosOptions opts;
  opts.public_key = &keys_->pub;
  EosState bad_holder = MakeState({1, 2}, 2, 64);
  bad_holder.e_holder = 9;
  EXPECT_FALSE(
      RunEncryptedObliviousShuffle(&bad_holder, opts, rng_, &ledger).ok());

  EosState short_cipher = MakeState({1, 2, 3}, 2, 64);
  short_cipher.cipher_column.pop_back();
  EXPECT_FALSE(
      RunEncryptedObliviousShuffle(&short_cipher, opts, rng_, &ledger).ok());
}

TEST_F(EosTest, CommunicationIncludesCiphertextTraffic) {
  std::vector<uint64_t> secrets(20, 3);
  EosState state = MakeState(secrets, 3, 64);
  EosOptions opts;
  opts.public_key = &keys_->pub;
  opts.pool = pool_;
  CostLedger ledger;
  ASSERT_TRUE(
      RunEncryptedObliviousShuffle(&state, opts, rng_, &ledger).ok());
  // Each of the C(3,2)=3 rounds ships the n-ciphertext column once.
  uint64_t min_cipher_traffic =
      3ull * secrets.size() * keys_->pub.CiphertextBytes();
  EXPECT_GE(ledger.bytes_sent(Role::kShuffler), min_cipher_traffic);
}

}  // namespace
}  // namespace shuffle
}  // namespace shuffledp

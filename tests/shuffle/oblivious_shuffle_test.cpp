#include "shuffle/oblivious_shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "crypto/secret_sharing.h"

namespace shuffledp {
namespace shuffle {
namespace {

TEST(AllSubsetsTest, CountsMatchBinomials) {
  EXPECT_EQ(AllSubsets(3, 2).size(), 3u);   // C(3,2)
  EXPECT_EQ(AllSubsets(5, 3).size(), 10u);  // C(5,3)
  EXPECT_EQ(AllSubsets(7, 4).size(), 35u);  // C(7,4), the paper's r=7 case
}

TEST(AllSubsetsTest, SubsetsAreSortedAndDistinct) {
  auto subsets = AllSubsets(5, 3);
  for (const auto& s : subsets) {
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(s.size(), 3u);
    for (uint32_t v : s) EXPECT_LT(v, 5u);
  }
  std::sort(subsets.begin(), subsets.end());
  EXPECT_EQ(std::adjacent_find(subsets.begin(), subsets.end()),
            subsets.end());
}

ShareMatrix MakeSharedSecrets(const std::vector<uint64_t>& secrets,
                              uint32_t r, unsigned ell,
                              crypto::SecureRandom* rng) {
  ShareMatrix m;
  m.ell = ell;
  m.columns.assign(r, std::vector<uint64_t>(secrets.size(), 0));
  for (size_t i = 0; i < secrets.size(); ++i) {
    auto shares = crypto::SplitShares2Ell(secrets[i], r, ell, rng);
    for (uint32_t j = 0; j < r; ++j) m.columns[j][i] = shares[j];
  }
  return m;
}

TEST(ShareMatrixTest, ReconstructInvertsSharing) {
  crypto::SecureRandom rng(uint64_t{1});
  std::vector<uint64_t> secrets = {1, 2, 3, 0xFFFFFFFFFFFFFFFFULL, 42};
  auto m = MakeSharedSecrets(secrets, 4, 64, &rng);
  EXPECT_EQ(m.Reconstruct(), secrets);
}

struct ShuffleCase {
  uint32_t r;
  unsigned ell;
  uint64_t n;
};

class ObliviousShuffleParam : public ::testing::TestWithParam<ShuffleCase> {};

TEST_P(ObliviousShuffleParam, PreservesMultisetAndPermutes) {
  const auto [r, ell, n] = GetParam();
  crypto::SecureRandom rng(uint64_t{7} + r + ell);
  const uint64_t mask = ell >= 64 ? ~uint64_t{0} : ((uint64_t{1} << ell) - 1);
  std::vector<uint64_t> secrets(n);
  for (uint64_t i = 0; i < n; ++i) secrets[i] = (i * 77 + 13) & mask;

  auto m = MakeSharedSecrets(secrets, r, ell, &rng);
  CostLedger ledger;
  std::vector<uint32_t> perm;
  ASSERT_TRUE(RunObliviousShuffle(&m, &rng, &ledger, &perm).ok());

  // The reconstruction equals the composed permutation of the input...
  auto out = m.Reconstruct();
  ASSERT_EQ(perm.size(), n);
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], secrets[perm[i]]) << i;
  }
  // ...which is, in particular, a multiset permutation.
  auto sorted_in = secrets;
  auto sorted_out = out;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);

  // Communication was recorded.
  EXPECT_GT(ledger.bytes_sent(Role::kShuffler), 0u);
  EXPECT_GT(ledger.compute_seconds(Role::kShuffler), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObliviousShuffleParam,
    ::testing::Values(ShuffleCase{2, 64, 50}, ShuffleCase{3, 64, 100},
                      ShuffleCase{3, 32, 64}, ShuffleCase{5, 64, 40},
                      ShuffleCase{7, 16, 16}));

TEST(ObliviousShuffleTest, PermutationIsNontrivialWhp) {
  crypto::SecureRandom rng(uint64_t{99});
  std::vector<uint64_t> secrets(200);
  std::iota(secrets.begin(), secrets.end(), 0);
  auto m = MakeSharedSecrets(secrets, 3, 64, &rng);
  CostLedger ledger;
  std::vector<uint32_t> perm;
  ASSERT_TRUE(RunObliviousShuffle(&m, &rng, &ledger, &perm).ok());
  size_t fixed_points = 0;
  for (size_t i = 0; i < perm.size(); ++i) fixed_points += (perm[i] == i);
  // A uniform permutation of 200 elements has ~1 fixed point on average.
  EXPECT_LT(fixed_points, 20u);
}

TEST(ObliviousShuffleTest, RejectsSingleShuffler) {
  crypto::SecureRandom rng(uint64_t{1});
  ShareMatrix m;
  m.columns.assign(1, std::vector<uint64_t>(10, 0));
  CostLedger ledger;
  EXPECT_FALSE(RunObliviousShuffle(&m, &rng, &ledger).ok());
}

TEST(ObliviousShuffleTest, SeekerColumnsUniformAfterRun) {
  // After the final re-share every column should look uniform; crudely
  // check no column is all zeros (probability ~2^-64n otherwise).
  crypto::SecureRandom rng(uint64_t{5});
  std::vector<uint64_t> secrets(50, 0);  // all-zero secrets
  auto m = MakeSharedSecrets(secrets, 3, 64, &rng);
  CostLedger ledger;
  ASSERT_TRUE(RunObliviousShuffle(&m, &rng, &ledger).ok());
  for (const auto& col : m.columns) {
    bool all_zero = true;
    for (uint64_t v : col) all_zero &= (v == 0);
    EXPECT_FALSE(all_zero);
  }
  // But they still reconstruct to the all-zero multiset.
  for (uint64_t v : m.Reconstruct()) EXPECT_EQ(v, 0u);
}

}  // namespace
}  // namespace shuffle
}  // namespace shuffledp

// Failure injection for PEOS: tampered ciphertexts, corrupted share
// columns, and dropped parties must degrade gracefully (bounded estimate
// damage or clean Status errors), never crash or silently corrupt.

#include <gtest/gtest.h>

#include "crypto/paillier.h"
#include "crypto/secret_sharing.h"
#include "ldp/grr.h"
#include "shuffle/oblivious_shuffle.h"
#include "shuffle/peos.h"

namespace shuffledp {
namespace shuffle {
namespace {

class PeosFailureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new crypto::SecureRandom(uint64_t{5150});
    auto kp = crypto::PaillierGenerateKeyPair(256, rng_);
    ASSERT_TRUE(kp.ok());
    keys_ = new crypto::PaillierKeyPair(std::move(kp).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }
  static crypto::SecureRandom* rng_;
  static crypto::PaillierKeyPair* keys_;
};

crypto::SecureRandom* PeosFailureTest::rng_ = nullptr;
crypto::PaillierKeyPair* PeosFailureTest::keys_ = nullptr;

TEST_F(PeosFailureTest, TamperedCiphertextCorruptsOnlyThatRow) {
  // Build a tiny EOS state, flip bits in one ciphertext, and check that
  // reconstruction still succeeds for all other rows.
  const unsigned ell = 16;
  std::vector<uint64_t> secrets = {111, 222, 333, 444};
  EosState state;
  state.plain.ell = ell;
  state.plain.columns.assign(2, std::vector<uint64_t>(secrets.size(), 0));
  state.cipher_column.resize(secrets.size());
  state.e_holder = 1;
  for (size_t i = 0; i < secrets.size(); ++i) {
    auto shares = crypto::SplitShares2Ell(secrets[i], 3, ell, rng_);
    state.plain.columns[0][i] = shares[0];
    state.plain.columns[1][i] = shares[1];
    auto c = keys_->pub.EncryptU64(shares[2], rng_);
    ASSERT_TRUE(c.ok());
    state.cipher_column[i] = std::move(c).value();
  }
  // Tamper: multiply row 2's ciphertext by Enc(7) (an adversarial +7).
  auto enc7 = keys_->pub.EncryptU64(7, rng_);
  ASSERT_TRUE(enc7.ok());
  state.cipher_column[2] = keys_->pub.Add(state.cipher_column[2], *enc7);

  std::vector<uint64_t> out(secrets.size());
  for (size_t i = 0; i < secrets.size(); ++i) {
    auto m = keys_->priv.DecryptMod2Ell(state.cipher_column[i], ell);
    ASSERT_TRUE(m.ok());
    out[i] = (state.plain.columns[0][i] + state.plain.columns[1][i] + *m) &
             0xFFFF;
  }
  EXPECT_EQ(out[0], 111u);
  EXPECT_EQ(out[1], 222u);
  EXPECT_EQ(out[2], 340u);  // 333 + 7: tampering shifts exactly one row
  EXPECT_EQ(out[3], 444u);
}

TEST_F(PeosFailureTest, GarbageCiphertextRejectedAtDecrypt) {
  crypto::PaillierCiphertext garbage;
  garbage.value = keys_->pub.n_squared();  // out of range
  EXPECT_FALSE(keys_->priv.Decrypt(garbage).ok());
  garbage.value = crypto::BigInt(0);  // zero is never a valid ciphertext
  EXPECT_FALSE(keys_->priv.Decrypt(garbage).ok());
}

TEST_F(PeosFailureTest, CorruptedShareColumnYieldsInvalidReports) {
  // Run PEOS, but with an oracle whose domain leaves padding; corrupt
  // packed rows decode into the padding region and are counted invalid
  // rather than polluting the estimate.
  const uint64_t n = 300, d = 6;  // 3-bit ordinals, values 6,7 = padding
  ldp::Grr oracle(3.0, d);
  std::vector<uint64_t> values(n, 0);
  PeosConfig config;
  config.num_shufflers = 2;
  config.fake_reports = 0;
  config.paillier_bits = 256;
  crypto::SecureRandom rng(uint64_t{77});
  auto result = RunPeos(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  // Honest run: nothing invalid, estimate correct.
  EXPECT_EQ(result->reports_invalid, 0u);
  EXPECT_NEAR(result->estimates[0], 1.0, 0.15);
}

TEST_F(PeosFailureTest, ObliviousShuffleWithMismatchedColumnsFails) {
  ShareMatrix m;
  m.ell = 64;
  m.columns = {std::vector<uint64_t>(4, 0), std::vector<uint64_t>(4, 0)};
  EosState state;
  state.plain = m;
  state.cipher_column.resize(3);  // mismatch: 3 != 4
  state.e_holder = 0;
  EosOptions opts;
  opts.public_key = &keys_->pub;
  CostLedger ledger;
  EXPECT_FALSE(
      RunEncryptedObliviousShuffle(&state, opts, rng_, &ledger).ok());
}

TEST_F(PeosFailureTest, ParseCiphertextRejectsOversizedValue) {
  Bytes wire(keys_->pub.CiphertextBytes(), 0xFF);  // >= N^2
  EXPECT_FALSE(keys_->pub.ParseCiphertext(wire).ok());
}

}  // namespace
}  // namespace shuffle
}  // namespace shuffledp

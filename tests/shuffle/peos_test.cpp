#include "shuffle/peos.h"

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/local_hash.h"

namespace shuffledp {
namespace shuffle {
namespace {

std::vector<uint64_t> SkewedValues(uint64_t n, uint64_t d) {
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = (i < n / 2) ? 0 : 1 + (i % (d - 1));
  }
  return values;
}

PeosConfig FastConfig(uint32_t r, uint64_t fakes) {
  PeosConfig config;
  config.num_shufflers = r;
  config.fake_reports = fakes;
  config.paillier_bits = 256;  // test-size keys
  config.use_randomizer_pool = true;
  return config;
}

TEST(PeosTest, EndToEndWithGrr) {
  const uint64_t n = 800, d = 8;
  ldp::Grr oracle(3.0, d);  // d = 8 is a power of two: padding-free
  auto values = SkewedValues(n, d);
  crypto::SecureRandom rng(uint64_t{1});
  auto result = RunPeos(oracle, values, FastConfig(3, 200), &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reports_decoded, n + 200);
  EXPECT_EQ(result->reports_invalid, 0u);
  EXPECT_NEAR(result->estimates[0], 0.5, 0.15);
}

TEST(PeosTest, EndToEndWithGrrPaddedDomain) {
  // d = 6 is not a power of two: fake reports sometimes land in the
  // padding region [6, 8) and are dropped; the ordinal calibration keeps
  // the estimate unbiased.
  const uint64_t n = 800, d = 6;
  ldp::Grr oracle(3.0, d);
  auto values = SkewedValues(n, d);
  crypto::SecureRandom rng(uint64_t{2});
  auto result = RunPeos(oracle, values, FastConfig(3, 400), &rng);
  ASSERT_TRUE(result.ok());
  // ~400 * 2/8 = 100 fakes dropped in expectation.
  EXPECT_GT(result->reports_invalid, 40u);
  EXPECT_LT(result->reports_invalid, 180u);
  EXPECT_NEAR(result->estimates[0], 0.5, 0.15);
}

TEST(PeosTest, EndToEndWithSolh) {
  const uint64_t n = 700, d = 100;
  ldp::LocalHash oracle(3.0, d, 8, "SOLH");  // d' = 8: padding-free
  auto values = SkewedValues(n, d);
  crypto::SecureRandom rng(uint64_t{3});
  auto result = RunPeos(oracle, values, FastConfig(3, 150), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reports_decoded, n + 150);
  EXPECT_EQ(result->reports_invalid, 0u);
  EXPECT_NEAR(result->estimates[0], 0.5, 0.18);
}

TEST(PeosTest, ExactCryptoModeMatches) {
  const uint64_t n = 150, d = 4;
  ldp::Grr oracle(3.0, d);
  auto values = SkewedValues(n, d);
  crypto::SecureRandom rng(uint64_t{4});
  PeosConfig config = FastConfig(2, 30);
  config.use_randomizer_pool = false;  // fresh modexp everywhere
  auto result = RunPeos(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reports_decoded, n + 30);
  EXPECT_NEAR(result->estimates[0], 0.5, 0.3);
}

TEST(PeosTest, SevenShufflers) {
  const uint64_t n = 120, d = 4;
  ldp::Grr oracle(3.0, d);
  auto values = SkewedValues(n, d);
  crypto::SecureRandom rng(uint64_t{5});
  auto result = RunPeos(oracle, values, FastConfig(7, 20), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reports_decoded, n + 20);
}

TEST(PeosTest, OneBiasedShufflerIsMaskedByHonestOnes) {
  // §VI-A2: a malicious shuffler biases its fake-report *shares*, but an
  // honest shuffler's uniform share keeps the reconstructed fake uniform.
  // With everyone holding value 0 and the poison targeting value 3, a
  // successful poison would inflate estimate[3]; masking keeps it ~0.
  const uint64_t n = 1000, d = 4;
  ldp::Grr oracle(4.0, d);
  std::vector<uint64_t> values(n, 0);
  crypto::SecureRandom rng(uint64_t{6});
  PeosConfig config = FastConfig(3, 500);
  config.behaviours = {PeosShufflerBehaviour::kBiasedFakeShares,
                       PeosShufflerBehaviour::kHonest,
                       PeosShufflerBehaviour::kHonest};
  config.poison_target_packed = 3;  // GRR ordinal of value 3
  auto result = RunPeos(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->estimates[3], 0.1);
  EXPECT_NEAR(result->estimates[0], 1.0, 0.1);
}

TEST(PeosTest, AllShufflersBiasedDoesPoison) {
  // If *every* shuffler colludes on the bias there is no honest mask —
  // the known limit of the §VI-A2 argument (requires >= 1 honest party).
  const uint64_t n = 1000, d = 4;
  ldp::Grr oracle(4.0, d);
  std::vector<uint64_t> values(n, 0);
  crypto::SecureRandom rng(uint64_t{7});
  PeosConfig config = FastConfig(3, 500);
  config.behaviours.assign(3, PeosShufflerBehaviour::kBiasedFakeShares);
  // Shares sum to 3 * target; pick target so the sum hits value 3 mod 4.
  config.poison_target_packed = 1;  // 3 * 1 = 3 mod 4
  auto result = RunPeos(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->estimates[3], 0.3);
}

TEST(PeosTest, CostAccounting) {
  const uint64_t n = 200, d = 8;
  ldp::Grr oracle(2.0, d);
  auto values = SkewedValues(n, d);
  crypto::SecureRandom rng(uint64_t{8});
  auto result = RunPeos(oracle, values, FastConfig(3, 50), &rng);
  ASSERT_TRUE(result.ok());
  const CostReport& c = result->costs;
  EXPECT_GT(c.user_comp_ms_per_user, 0.0);
  // User upload: (r-1) * 8B shares + one 512-bit (64B) ciphertext.
  EXPECT_EQ(c.user_comm_bytes_per_user, 2 * 8 + 64u);
  EXPECT_GT(c.aux_comp_seconds, 0.0);
  EXPECT_GT(c.aux_comm_mb_per_shuffler, 0.0);
  EXPECT_GT(c.server_comp_seconds, 0.0);
  EXPECT_GT(c.server_comm_mb, 0.0);
}

TEST(PeosTest, RejectsBadConfig) {
  ldp::Grr oracle(1.0, 4);
  crypto::SecureRandom rng(uint64_t{9});
  PeosConfig config = FastConfig(1, 0);  // r < 2
  EXPECT_FALSE(RunPeos(oracle, {1, 2}, config, &rng).ok());
  config = FastConfig(3, 0);
  EXPECT_FALSE(RunPeos(oracle, {}, config, &rng).ok());
  config.ell = 1;  // smaller than the oracle's ordinal width
  EXPECT_FALSE(RunPeos(oracle, {1, 2}, config, &rng).ok());
}

}  // namespace
}  // namespace shuffle
}  // namespace shuffledp

#include "shuffle/sequential_shuffle.h"

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/local_hash.h"

namespace shuffledp {
namespace shuffle {
namespace {

std::vector<uint64_t> SkewedValues(uint64_t n, uint64_t d) {
  // Value 0 at 50%, the rest spread round-robin.
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = (i < n / 2) ? 0 : 1 + (i % (d - 1));
  }
  return values;
}

TEST(SequentialShuffleTest, EndToEndEstimateIsAccurate) {
  const uint64_t n = 1500, d = 8;
  ldp::Grr oracle(3.0, d);
  auto values = SkewedValues(n, d);
  SequentialShuffleConfig config;
  config.num_shufflers = 3;
  config.fake_reports_total = 300;
  crypto::SecureRandom rng(uint64_t{11});
  auto result = RunSequentialShuffle(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reports_at_server, n + 300);
  ASSERT_EQ(result->estimates.size(), d);
  // At ε=3, n=1500, estimates should be within a few percent.
  EXPECT_NEAR(result->estimates[0], 0.5, 0.12);
  double sum = 0;
  for (double f : result->estimates) sum += f;
  EXPECT_NEAR(sum, 1.0, 0.25);
  EXPECT_TRUE(result->spot_check_passed);
}

TEST(SequentialShuffleTest, WorksWithLocalHashOracle) {
  const uint64_t n = 1200, d = 100;
  ldp::LocalHash oracle(3.0, d, 8);
  auto values = SkewedValues(n, d);
  SequentialShuffleConfig config;
  config.num_shufflers = 2;
  config.fake_reports_total = 120;
  crypto::SecureRandom rng(uint64_t{13});
  auto result = RunSequentialShuffle(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimates[0], 0.5, 0.15);
}

TEST(SequentialShuffleTest, SpotCheckPassesWhenHonest) {
  const uint64_t n = 300, d = 4;
  ldp::Grr oracle(2.0, d);
  auto values = SkewedValues(n, d);
  SequentialShuffleConfig config;
  config.num_shufflers = 3;
  config.spot_check_dummies = 20;
  crypto::SecureRandom rng(uint64_t{17});
  auto result = RunSequentialShuffle(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->spot_check_passed);
  // Dummies are removed before estimation.
  EXPECT_EQ(result->reports_at_server, n);
}

TEST(SequentialShuffleTest, SpotCheckCatchesReportReplacement) {
  const uint64_t n = 300, d = 4;
  ldp::Grr oracle(2.0, d);
  auto values = SkewedValues(n, d);
  SequentialShuffleConfig config;
  config.num_shufflers = 3;
  config.spot_check_dummies = 20;
  config.behaviours = {ShufflerBehaviour::kHonest,
                       ShufflerBehaviour::kReplaceReports,
                       ShufflerBehaviour::kHonest};
  config.poison_target_value = 2;
  crypto::SecureRandom rng(uint64_t{19});
  auto result = RunSequentialShuffle(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spot_check_passed);
  // The poisoned estimate is wildly skewed toward the target.
  EXPECT_GT(result->estimates[2], 0.8);
}

TEST(SequentialShuffleTest, BiasedFakesSkewTheEstimateUndetectably) {
  // The §VI-A1 weakness SS cannot fix: biased fake reports pass the spot
  // check but shift the histogram toward the target value.
  const uint64_t n = 1000, d = 4;
  ldp::Grr oracle(3.0, d);
  std::vector<uint64_t> values(n, 0);  // everyone holds 0
  SequentialShuffleConfig config;
  config.num_shufflers = 3;
  config.fake_reports_total = 600;
  config.spot_check_dummies = 20;
  config.behaviours = {ShufflerBehaviour::kBiasedFakes,
                       ShufflerBehaviour::kBiasedFakes,
                       ShufflerBehaviour::kBiasedFakes};
  config.poison_target_value = 3;
  crypto::SecureRandom rng(uint64_t{23});
  auto result = RunSequentialShuffle(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->spot_check_passed);  // undetected!
  // De-bias assumes uniform fakes (150 per value); all 600 landed on 3:
  // the estimate of value 3 gains roughly (600 - 150)/n = 0.45.
  EXPECT_GT(result->estimates[3], 0.25);
}

TEST(SequentialShuffleTest, DroppedReportsShrinkServerCount) {
  const uint64_t n = 400, d = 4;
  ldp::Grr oracle(2.0, d);
  auto values = SkewedValues(n, d);
  SequentialShuffleConfig config;
  config.num_shufflers = 2;
  config.behaviours = {ShufflerBehaviour::kDropReports,
                       ShufflerBehaviour::kHonest};
  crypto::SecureRandom rng(uint64_t{29});
  auto result = RunSequentialShuffle(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reports_at_server, n / 2);
}

TEST(SequentialShuffleTest, CostsAreAccounted) {
  const uint64_t n = 200, d = 4;
  ldp::Grr oracle(2.0, d);
  auto values = SkewedValues(n, d);
  SequentialShuffleConfig config;
  config.num_shufflers = 3;
  crypto::SecureRandom rng(uint64_t{31});
  auto result = RunSequentialShuffle(oracle, values, config, &rng);
  ASSERT_TRUE(result.ok());
  const CostReport& c = result->costs;
  EXPECT_GT(c.user_comp_ms_per_user, 0.0);
  EXPECT_GT(c.user_comm_bytes_per_user, 0u);
  EXPECT_GT(c.aux_comp_seconds, 0.0);
  EXPECT_GT(c.server_comm_mb, 0.0);
  // Onion: user blob must cover r+1 = 4 ECIES layers.
  EXPECT_GE(c.user_comm_bytes_per_user, 4 * 81u);
}

TEST(SequentialShuffleTest, UserCommGrowsWithShufflerCount) {
  const uint64_t n = 100, d = 4;
  ldp::Grr oracle(2.0, d);
  auto values = SkewedValues(n, d);
  crypto::SecureRandom rng(uint64_t{37});
  uint64_t prev = 0;
  for (uint32_t r : {1u, 3u, 7u}) {
    SequentialShuffleConfig config;
    config.num_shufflers = r;
    auto result = RunSequentialShuffle(oracle, values, config, &rng);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->costs.user_comm_bytes_per_user, prev);
    prev = result->costs.user_comm_bytes_per_user;
  }
}

TEST(SequentialShuffleTest, RejectsBadConfig) {
  ldp::Grr oracle(1.0, 4);
  crypto::SecureRandom rng(uint64_t{41});
  SequentialShuffleConfig config;
  config.num_shufflers = 0;
  EXPECT_FALSE(RunSequentialShuffle(oracle, {1, 2}, config, &rng).ok());
  config.num_shufflers = 2;
  EXPECT_FALSE(RunSequentialShuffle(oracle, {}, config, &rng).ok());
}

}  // namespace
}  // namespace shuffle
}  // namespace shuffledp

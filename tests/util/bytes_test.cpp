#include "util/bytes.h"

#include <gtest/gtest.h>

namespace shuffledp {
namespace {

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutDouble(3.25);

  ByteReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetU16(), 0x1234);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetDouble(), 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTrip) {
  std::vector<uint64_t> values = {0,   1,    127,        128,
                                  300, 1u << 20, UINT64_MAX, 0xFFFFFFFFULL};
  ByteWriter w;
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.data());
  for (uint64_t v : values) {
    auto got = r.GetVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintSmallValuesAreOneByte) {
  ByteWriter w;
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 1u);
  w.PutVarint(128);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  ByteWriter w;
  Bytes payload = {1, 2, 3, 4, 5};
  w.PutLengthPrefixed(payload);
  w.PutLengthPrefixed(std::string("hello"));

  ByteReader r(w.data());
  auto got = r.GetLengthPrefixed();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  auto got2 = r.GetLengthPrefixed();
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(std::string(got2->begin(), got2->end()), "hello");
}

TEST(BytesTest, TruncationIsDataLoss) {
  ByteWriter w;
  w.PutU32(42);
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetU32().ok());
  EXPECT_EQ(r.GetU32().status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(r.GetU8().status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(r.GetVarint().status().code(), StatusCode::kDataLoss);
}

TEST(BytesTest, TruncatedLengthPrefixIsDataLoss) {
  ByteWriter w;
  w.PutVarint(100);  // claims 100 bytes follow
  w.PutU8(1);        // only one does
  ByteReader r(w.data());
  EXPECT_EQ(r.GetLengthPrefixed().status().code(), StatusCode::kDataLoss);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xAB, 0xFF, 0x7E};
  EXPECT_EQ(ToHex(data), "0001abff7e");
  auto back = FromHex("0001abff7e");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  auto upper = FromHex("0001ABFF7E");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(*upper, data);
}

TEST(BytesTest, BadHexRejected) {
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // bad digit
}

TEST(BytesTest, ReserveConstructorWorks) {
  ByteWriter w(1024);
  EXPECT_EQ(w.size(), 0u);
  w.PutU64(1);
  EXPECT_EQ(w.size(), 8u);
}

}  // namespace
}  // namespace shuffledp

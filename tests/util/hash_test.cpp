#include "util/hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace shuffledp {
namespace {

// Reference vectors from the xxHash specification / reference
// implementation test suite.
TEST(XxHash64Test, ReferenceVectors) {
  EXPECT_EQ(XxHash64("", 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(XxHash64("a", 0), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(XxHash64("abc", 0), 0x44BC2CF5AD770999ULL);
}

TEST(XxHash32Test, ReferenceVectors) {
  EXPECT_EQ(XxHash32("", 0), 0x02CC5D05U);
  EXPECT_EQ(XxHash32("a", 0), 0x550D7456U);
  EXPECT_EQ(XxHash32("abc", 0), 0x32D153FFU);
}

TEST(XxHash64Test, SeedChangesOutput) {
  EXPECT_NE(XxHash64("abc", 0), XxHash64("abc", 1));
  EXPECT_NE(XxHash64("abc", 1), XxHash64("abc", 2));
}

TEST(XxHash64Test, AllLengthPathsConsistent) {
  // Exercise the <4, <8, <32 and >=32 byte code paths and check
  // prefix-sensitivity: flipping any byte changes the hash.
  std::string data(100, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 31 + 7);
  }
  for (size_t len : {0, 1, 3, 4, 7, 8, 15, 16, 31, 32, 33, 63, 64, 100}) {
    std::string s = data.substr(0, len);
    uint64_t h = XxHash64(s, 42);
    for (size_t i = 0; i < len; ++i) {
      std::string mutated = s;
      mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
      EXPECT_NE(XxHash64(mutated, 42), h) << "len=" << len << " i=" << i;
    }
  }
}

TEST(UniversalHashTest, OutputInRange) {
  for (uint32_t range : {2u, 3u, 16u, 1000u}) {
    for (uint64_t v = 0; v < 200; ++v) {
      EXPECT_LT(UniversalHash(v, static_cast<uint32_t>(v * 7 + 1), range),
                range);
    }
  }
}

// The OLH/SOLH calibration (Eq. 3) requires Pr_seed[H(v) = H(v')] ~= 1/d'
// for v != v'. Verify the collision rate empirically.
TEST(UniversalHashTest, PairwiseCollisionRate) {
  const uint32_t kRange = 16;
  const int kSeeds = 50000;
  int collisions = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    uint32_t h1 = UniversalHash(12345, static_cast<uint32_t>(seed), kRange);
    uint32_t h2 = UniversalHash(67890, static_cast<uint32_t>(seed), kRange);
    collisions += (h1 == h2);
  }
  double rate = static_cast<double>(collisions) / kSeeds;
  double expected = 1.0 / kRange;
  double sigma = std::sqrt(expected * (1 - expected) / kSeeds);
  EXPECT_NEAR(rate, expected, 6 * sigma);
}

// Marginal uniformity: for a fixed value, the hash over random seeds is
// close to uniform over the range.
TEST(UniversalHashTest, MarginalUniformity) {
  const uint32_t kRange = 8;
  const int kSeeds = 80000;
  std::vector<int> counts(kRange, 0);
  for (int seed = 0; seed < kSeeds; ++seed) {
    ++counts[UniversalHash(99, static_cast<uint32_t>(seed), kRange)];
  }
  double expected = static_cast<double>(kSeeds) / kRange;
  double chi2 = 0;
  for (int c : counts) {
    double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 30.0);  // 7 dof, far beyond the 99.9% quantile
}

}  // namespace
}  // namespace shuffledp

#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace shuffledp {
namespace {

TEST(MathTest, CombSmallValues) {
  EXPECT_DOUBLE_EQ(Comb(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Comb(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(Comb(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(Comb(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(Comb(7, 3), 35.0);
  EXPECT_DOUBLE_EQ(Comb(3, 5), 0.0);
}

TEST(MathTest, CombLargeMatchesLgamma) {
  // (100 choose 50) ~ 1.0089e29
  EXPECT_NEAR(Comb(100, 50) / 1.00891344545564e29, 1.0, 1e-9);
}

TEST(MathTest, CombU64Exact) {
  EXPECT_EQ(CombU64(3, 2), 3u);    // r=3 oblivious-shuffle partitions
  EXPECT_EQ(CombU64(7, 4), 35u);   // r=7 partitions
  EXPECT_EQ(CombU64(10, 5), 252u);
  EXPECT_EQ(CombU64(52, 5), 2598960u);
  EXPECT_EQ(CombU64(5, 9), 0u);
}

TEST(MathTest, LogCombConsistentWithComb) {
  for (uint64_t n : {10u, 30u, 60u}) {
    for (uint64_t k = 0; k <= n; k += 7) {
      EXPECT_NEAR(std::exp(LogComb(n, k)), Comb(n, k),
                  1e-6 * Comb(n, k) + 1e-12);
    }
  }
}

TEST(MathTest, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(915), 1024u);    // IPUMS domain
  EXPECT_EQ(NextPow2(42178), 65536u); // Kosarak domain
  EXPECT_EQ(NextPow2(1ULL << 40), 1ULL << 40);
  EXPECT_EQ(NextPow2((1ULL << 40) + 1), 1ULL << 41);
}

TEST(MathTest, Log2Exact) {
  EXPECT_EQ(Log2Exact(1), 0);
  EXPECT_EQ(Log2Exact(2), 1);
  EXPECT_EQ(Log2Exact(1024), 10);
  EXPECT_EQ(Log2Exact(1ULL << 47), 47);
}

TEST(MathTest, BernoulliKlProperties) {
  EXPECT_DOUBLE_EQ(BernoulliKl(0.3, 0.3), 0.0);
  EXPECT_GT(BernoulliKl(0.5, 0.3), 0.0);
  EXPECT_GT(BernoulliKl(0.1, 0.3), 0.0);
}

TEST(MathTest, BinomialTailBoundsSane) {
  // Upper tail at the mean is trivial (1); far above it decays.
  EXPECT_DOUBLE_EQ(BinomialUpperTail(1000, 0.5, 400), 1.0);
  EXPECT_LT(BinomialUpperTail(1000, 0.5, 600), 1e-8);
  EXPECT_LT(BinomialLowerTail(1000, 0.5, 400), 1e-8);
  EXPECT_DOUBLE_EQ(BinomialLowerTail(1000, 0.5, 600), 1.0);
  // Monotonicity: further from the mean = smaller bound.
  EXPECT_LT(BinomialUpperTail(1000, 0.5, 700),
            BinomialUpperTail(1000, 0.5, 600));
}

double Quadratic(double x, const void*) { return (x - 3.0) * (x - 3.0) + 1.0; }

TEST(MathTest, GoldenSectionFindsMinimum) {
  double x = GoldenSectionMinimize(0.0, 10.0, nullptr, &Quadratic, nullptr);
  EXPECT_NEAR(x, 3.0, 1e-6);
}

bool LessThanPi(double x, const void*) { return x <= 3.14159; }

TEST(MathTest, BinarySearchLargestFindsBoundary) {
  double x = BinarySearchLargest(0.0, 10.0, &LessThanPi, nullptr);
  EXPECT_NEAR(x, 3.14159, 1e-6);
  // Degenerate: predicate false at lo.
  double y = BinarySearchLargest(5.0, 10.0, &LessThanPi, nullptr);
  EXPECT_DOUBLE_EQ(y, 5.0);
}

}  // namespace
}  // namespace shuffledp

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace shuffledp {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) {
    if (a2.NextU64() != c.NextU64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(11);
  const uint64_t kBuckets = 10;
  const int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.UniformU64(kBuckets)];
  // Chi-square with 9 dof; 99.9% critical value ~27.9.
  double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 35.0);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.UniformDoublePositive();
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  const int kTrials = 200000;
  for (double p : {0.01, 0.3, 0.5, 0.9}) {
    int hits = 0;
    for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(p);
    double phat = static_cast<double>(hits) / kTrials;
    double sigma = std::sqrt(p * (1 - p) / kTrials);
    EXPECT_NEAR(phat, p, 5 * sigma) << "p=" << p;
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

struct BinomialCase {
  uint64_t n;
  double p;
};

class BinomialParamTest : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialParamTest, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(23 + n);
  const int kTrials = 30000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < kTrials; ++i) {
    uint64_t x = rng.Binomial(n, p);
    ASSERT_LE(x, n);
    sum += static_cast<double>(x);
    sumsq += static_cast<double>(x) * static_cast<double>(x);
  }
  double mean = sum / kTrials;
  double var = sumsq / kTrials - mean * mean;
  double true_mean = static_cast<double>(n) * p;
  double true_var = static_cast<double>(n) * p * (1 - p);
  // Tolerances: 6 standard errors for mean; 10% relative for variance.
  double se_mean = std::sqrt(true_var / kTrials);
  EXPECT_NEAR(mean, true_mean, std::max(6 * se_mean, 1e-9))
      << "n=" << n << " p=" << p;
  if (true_var > 0.5) {
    EXPECT_NEAR(var, true_var, 0.1 * true_var) << "n=" << n << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialParamTest,
    ::testing::Values(BinomialCase{1, 0.5}, BinomialCase{10, 0.1},
                      BinomialCase{100, 0.02},          // inversion path
                      BinomialCase{1000, 0.3},          // BTRS path
                      BinomialCase{1000, 0.9},          // flipped BTRS
                      BinomialCase{1000000, 1e-5},      // inversion, huge n
                      BinomialCase{1000000, 0.002},     // BTRS, huge n
                      BinomialCase{602325, 0.0005}));   // IPUMS-scale

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(29);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100u);
}

TEST(RngTest, LaplaceMeanAndScale) {
  Rng rng(31);
  const int kTrials = 200000;
  const double b = 2.5;
  double sum = 0, sum_abs = 0;
  for (int i = 0; i < kTrials; ++i) {
    double x = rng.Laplace(b);
    sum += x;
    sum_abs += std::fabs(x);
  }
  // E[X] = 0, E[|X|] = b.
  EXPECT_NEAR(sum / kTrials, 0.0, 0.05 * b);
  EXPECT_NEAR(sum_abs / kTrials, b, 0.05 * b);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(37);
  const int kTrials = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < kTrials; ++i) {
    double x = rng.Gaussian();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kTrials, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kTrials, 1.0, 0.03);
}

TEST(RngTest, GeometricMean) {
  Rng rng(41);
  const double p = 0.25;
  const int kTrials = 100000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(rng.Geometric(p));
  }
  // E = (1-p)/p = 3.
  EXPECT_NEAR(sum / kTrials, 3.0, 0.1);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(43);
  auto perm = rng.Permutation(1000);
  std::vector<uint32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationIsUniformOnFirstPosition) {
  Rng rng(47);
  const int kTrials = 60000;
  const uint32_t kN = 6;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kTrials; ++i) ++counts[rng.Permutation(kN)[0]];
  double expected = static_cast<double>(kTrials) / kN;
  for (int c : counts) EXPECT_NEAR(c, expected, 6 * std::sqrt(expected));
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(53);
  auto sample = rng.SampleWithoutReplacement(10000, 500);
  EXPECT_EQ(sample.size(), 500u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::adjacent_find(sample.begin(), sample.end()), sample.end());
  for (uint64_t v : sample) EXPECT_LT(v, 10000u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.Fork();
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.NextU64() != child.NextU64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace shuffledp

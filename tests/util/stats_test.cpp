#include "util/stats.h"

#include <gtest/gtest.h>

namespace shuffledp {
namespace {

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, StderrShrinksWithN) {
  RunningStat a, b;
  for (int i = 0; i < 10; ++i) a.Add(i % 2);
  for (int i = 0; i < 1000; ++i) b.Add(i % 2);
  EXPECT_GT(a.stderr_mean(), b.stderr_mean());
}

TEST(MseTest, ZeroForIdenticalVectors) {
  std::vector<double> f = {0.1, 0.2, 0.7};
  EXPECT_DOUBLE_EQ(MeanSquaredError(f, f), 0.0);
}

TEST(MseTest, MatchesHandComputation) {
  std::vector<double> truth = {0.5, 0.5};
  std::vector<double> est = {0.4, 0.6};
  EXPECT_NEAR(MeanSquaredError(truth, est), 0.01, 1e-15);
}

TEST(MseTest, SampledSubsetMatchesFullForUniformError) {
  std::vector<double> truth(100, 0.01);
  std::vector<double> est(100, 0.02);  // uniform error 0.01 everywhere
  std::vector<uint64_t> sample = {0, 10, 50, 99};
  EXPECT_NEAR(MeanSquaredErrorAt(truth, est, sample),
              MeanSquaredError(truth, est), 1e-15);
}

TEST(PrecisionTest, FullOverlap) {
  std::vector<uint64_t> truth = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(TopKPrecision(truth, truth), 1.0);
}

TEST(PrecisionTest, PartialOverlap) {
  std::vector<uint64_t> truth = {1, 2, 3, 4};
  std::vector<uint64_t> pred = {3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(TopKPrecision(pred, truth), 0.5);
}

TEST(PrecisionTest, NoOverlap) {
  std::vector<uint64_t> truth = {1, 2};
  std::vector<uint64_t> pred = {3, 4};
  EXPECT_DOUBLE_EQ(TopKPrecision(pred, truth), 0.0);
}

}  // namespace
}  // namespace shuffledp

#include "util/status.h"

#include <gtest/gtest.h>

namespace shuffledp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("epsilon must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "epsilon must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: epsilon must be positive");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::CryptoError("x").code(), StatusCode::kCryptoError);
  EXPECT_EQ(Status::ProtocolViolation("x").code(),
            StatusCode::kProtocolViolation);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::DataLoss("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailingOperation() { return Status::DataLoss("boom"); }

Status Propagates() {
  SHUFFLEDP_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kDataLoss);
}

Result<int> MakeSeven() { return 7; }

Status UseAssignOrReturn(int* out) {
  SHUFFLEDP_ASSIGN_OR_RETURN(*out, MakeSeven());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroAssigns) {
  int x = 0;
  ASSERT_TRUE(UseAssignOrReturn(&x).ok());
  EXPECT_EQ(x, 7);
}

}  // namespace
}  // namespace shuffledp

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace shuffledp {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(10000);
  pool.ParallelFor(0, touched.size(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](uint64_t, uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeFewerThanThreads) {
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 3, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(i + 1);
  });
  EXPECT_EQ(sum.load(), 6u);  // 1+2+3
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), 20 * (batch + 1));
  }
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

}  // namespace
}  // namespace shuffledp

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace shuffledp {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(10000);
  pool.ParallelFor(0, touched.size(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](uint64_t, uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeFewerThanThreads) {
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 3, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(i + 1);
  });
  EXPECT_EQ(sum.load(), 6u);  // 1+2+3
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), 20 * (batch + 1));
  }
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A ParallelFor issued from a worker thread must not dispatch back to
  // the pool (the worker would wait on a slot it occupies itself: with a
  // single-thread pool this deadlocked before the inline fallback).
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 4, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      pool.ParallelFor(0, 10, [&](uint64_t ilo, uint64_t ihi) {
        EXPECT_TRUE(pool.InWorkerThread());
        for (uint64_t j = ilo; j < ihi; ++j) sum.fetch_add(1);
      });
    }
  });
  EXPECT_EQ(sum.load(), 40u);
}

TEST(ThreadPoolTest, InWorkerThreadOnlyTrueOnOwnWorkers) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.InWorkerThread());
  std::atomic<int> checks{0};
  pool.ParallelFor(0, 8, [&](uint64_t, uint64_t) {
    if (pool.InWorkerThread() && !other.InWorkerThread()) checks.fetch_add(1);
  });
  EXPECT_GT(checks.load(), 0);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsComplete) {
  // Per-call completion latches: two ParallelFor invocations racing on the
  // same pool must each observe exactly their own chunks.
  ThreadPool pool(4);
  std::atomic<uint64_t> a{0}, b{0};
  std::thread t1([&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(0, 100, [&](uint64_t lo, uint64_t hi) {
        a.fetch_add(hi - lo);
      });
    }
  });
  std::thread t2([&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(0, 100, [&](uint64_t lo, uint64_t hi) {
        b.fetch_add(hi - lo);
      });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 2000u);
  EXPECT_EQ(b.load(), 2000u);
}

TEST(ThreadPoolTest, DefaultNumThreadsHonoursEnvVar) {
  ASSERT_EQ(setenv("SHUFFLEDP_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3u);
  ASSERT_EQ(setenv("SHUFFLEDP_THREADS", "0", 1), 0);  // invalid: fall back
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1u);
  ASSERT_EQ(setenv("SHUFFLEDP_THREADS", "soup", 1), 0);  // invalid
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1u);
  ASSERT_EQ(unsetenv("SHUFFLEDP_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1u);
}

}  // namespace
}  // namespace shuffledp

// Robustness of the wire codecs against malformed bytes (registered in
// ctest as wire_robustness_test; run under ASan/UBSan in CI).
//
// Deterministic corpus: truncations at every prefix length, single-bit
// flips at every position, length-field lies (including the count that
// overflows count × width to a small number — a crafted varint must not
// drive a multi-exabyte reserve()), and seeded random garbage. Every
// input must come back as an error Status or a fully validated parse —
// never a crash, hang, or over-read. The same corpus style covers the
// transport framing (service/transport.h): torn frames, length lies,
// CRC corruption, and version skew.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ldp/grr.h"
#include "ldp/hadamard.h"
#include "ldp/local_hash.h"
#include "ldp/wire.h"
#include "service/transport.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace shuffledp {
namespace ldp {
namespace {

std::vector<std::unique_ptr<ScalarFrequencyOracle>> CorpusOracles() {
  std::vector<std::unique_ptr<ScalarFrequencyOracle>> oracles;
  oracles.push_back(std::make_unique<Grr>(2.0, 11));
  oracles.push_back(std::make_unique<LocalHash>(2.0, 100, 6, "SOLH"));
  oracles.push_back(std::make_unique<HadamardResponse>(1.0, 20));
  return oracles;
}

Bytes ValidWire(const ScalarFrequencyOracle& oracle, int n_reports,
                uint64_t seed) {
  Rng rng(seed);
  std::vector<LdpReport> reports;
  for (int i = 0; i < n_reports; ++i) {
    reports.push_back(
        oracle.Encode(static_cast<uint64_t>(i) % oracle.domain_size(), &rng));
  }
  return SerializeReports(oracle, reports);
}

// The invariant for every mutated input: no crash, and on success every
// parsed report still validates.
void MustNotCrash(const ScalarFrequencyOracle& oracle, const Bytes& wire) {
  auto parsed = ParseReports(oracle, wire);
  if (parsed.ok()) {
    for (const LdpReport& r : *parsed) {
      EXPECT_TRUE(oracle.ValidateReport(r).ok());
    }
  }
}

TEST(WireRobustness, ValidRoundTrip) {
  for (const auto& oracle : CorpusOracles()) {
    Bytes wire = ValidWire(*oracle, 7, 1);
    auto parsed = ParseReports(*oracle, wire);
    ASSERT_TRUE(parsed.ok()) << oracle->Name();
    EXPECT_EQ(parsed->size(), 7u);
  }
}

TEST(WireRobustness, EveryTruncationFailsCleanly) {
  for (const auto& oracle : CorpusOracles()) {
    Bytes wire = ValidWire(*oracle, 5, 2);
    for (size_t len = 0; len < wire.size(); ++len) {
      Bytes truncated(wire.begin(), wire.begin() + len);
      auto parsed = ParseReports(*oracle, truncated);
      EXPECT_FALSE(parsed.ok())
          << oracle->Name() << " accepted a " << len << "-byte truncation";
    }
  }
}

TEST(WireRobustness, EveryBitFlipIsHandled) {
  for (const auto& oracle : CorpusOracles()) {
    Bytes wire = ValidWire(*oracle, 5, 3);
    for (size_t byte = 0; byte < wire.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes mutated = wire;
        mutated[byte] ^= static_cast<uint8_t>(1u << bit);
        MustNotCrash(*oracle, mutated);
      }
    }
  }
}

TEST(WireRobustness, LengthFieldLies) {
  for (const auto& oracle : CorpusOracles()) {
    Bytes wire = ValidWire(*oracle, 5, 4);
    // Body without the original 1-byte varint count (5 < 0x80).
    Bytes body(wire.begin() + 1, wire.end());
    for (uint64_t lied_count :
         {uint64_t{0}, uint64_t{4}, uint64_t{6}, uint64_t{1} << 32}) {
      ByteWriter w;
      w.PutVarint(lied_count);
      w.PutBytes(body);
      auto parsed = ParseReports(*oracle, w.data());
      EXPECT_FALSE(parsed.ok())
          << oracle->Name() << " accepted lied count " << lied_count;
    }
  }
}

TEST(WireRobustness, OverflowingCountIsRejectedWithoutAllocating) {
  // count = 2^61 with an 8-byte report width overflows count * width to
  // 0, which matched an empty remainder in the unpatched check and drove
  // reserve(2^61). Must now fail fast for every width.
  for (const auto& oracle : CorpusOracles()) {
    for (uint64_t count : {uint64_t{1} << 61, uint64_t{1} << 62,
                           ~uint64_t{0}, (~uint64_t{0}) / 8}) {
      ByteWriter w;
      w.PutVarint(count);
      auto parsed = ParseReports(*oracle, w.data());
      EXPECT_FALSE(parsed.ok()) << oracle->Name() << " count=" << count;
      // And with a few trailing bytes so Remaining() is nonzero:
      w.PutU64(0xDEADBEEFULL);
      parsed = ParseReports(*oracle, w.data());
      EXPECT_FALSE(parsed.ok()) << oracle->Name() << " count=" << count;
    }
  }
}

TEST(WireRobustness, RandomGarbageNeverCrashes) {
  Rng rng(5);
  for (const auto& oracle : CorpusOracles()) {
    for (int trial = 0; trial < 300; ++trial) {
      Bytes garbage(rng.UniformU64(120));
      for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextU64());
      MustNotCrash(*oracle, garbage);
    }
  }
}

TEST(WireRobustness, OrdinalCodecAdmitsPaddingButNotSlackBits) {
  // PEOS fakes are uniform over the padded 2^B ordinal space, so the
  // ordinal codec must round-trip padding-region values that
  // ParseReports would reject...
  Grr grr(2.0, 11);  // B = 4: ordinals 0..10 valid, 11..15 padding
  Bytes wire = SerializeOrdinals(grr, {0, 10, 11, 15});
  auto ordinals = ParseOrdinals(grr, wire);
  ASSERT_TRUE(ordinals.ok());
  EXPECT_EQ(*ordinals, (std::vector<uint64_t>{0, 10, 11, 15}));
  EXPECT_FALSE(ParseReports(grr, wire).ok());

  // ...but bits smuggled into the byte-rounding slack above B are not
  // part of the report space and must be rejected.
  Bytes smuggled = SerializeOrdinals(grr, {3});
  smuggled.back() |= 0x80;  // bit 7 > B-1 = 3
  EXPECT_FALSE(ParseOrdinals(grr, smuggled).ok());
}

TEST(WireRobustness, OrdinalCodecHostileCorpus) {
  for (const auto& oracle : CorpusOracles()) {
    Bytes wire = SerializeOrdinals(*oracle, {0, 1, 2, 3, 4});
    for (size_t len = 0; len < wire.size(); ++len) {
      Bytes truncated(wire.begin(), wire.begin() + len);
      EXPECT_FALSE(ParseOrdinals(*oracle, truncated).ok());
    }
    for (uint64_t count : {uint64_t{0}, uint64_t{4}, uint64_t{6},
                           uint64_t{1} << 32, uint64_t{1} << 61,
                           ~uint64_t{0}}) {
      ByteWriter w;
      w.PutVarint(count);
      w.PutBytes({wire.begin() + 1, wire.end()});
      EXPECT_FALSE(ParseOrdinals(*oracle, w.data()).ok())
          << oracle->Name() << " accepted lied count " << count;
    }
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
      Bytes garbage(rng.UniformU64(100));
      for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextU64());
      auto parsed = ParseOrdinals(*oracle, garbage);
      if (parsed.ok()) {
        const unsigned bits = oracle->PackedBits();
        for (uint64_t ordinal : *parsed) {
          if (bits < 64) EXPECT_LT(ordinal, uint64_t{1} << bits);
        }
      }
    }
  }
}

// Framing corpus: the transport's FrameDecoder faces the network
// directly, so it gets the same hostile treatment as the report codecs.
TEST(WireRobustness, FramingHostileCorpus) {
  service::Frame frame;
  frame.type = service::FrameType::kBatch;
  frame.round_id = 42;
  frame.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const Bytes wire = service::EncodeFrame(frame);

  // Torn prefixes: pending, never an error, never a frame.
  for (size_t len = 0; len < wire.size(); ++len) {
    service::FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(wire.data(), len).ok());
    service::Frame out;
    EXPECT_FALSE(decoder.Next(&out));
  }

  // Single-bit flips anywhere in the frame: either rejected outright
  // (header fields, CRC) or still pending (a flip that enlarges the
  // length field within the cap just waits for bytes that never come) —
  // but a flipped frame must never decode as valid.
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = wire;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      service::FrameDecoder decoder;
      Status st = decoder.Feed(mutated);
      service::Frame out;
      if (st.ok() && decoder.Next(&out)) {
        // The only acceptable decode is a shrunken-length frame whose
        // CRC happens to cover the shorter payload — impossible here
        // because any length flip changes the covered bytes.
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                      << " decoded as a valid frame";
      }
    }
  }

  // Version skew both ways.
  for (uint8_t version : {uint8_t{0}, uint8_t{service::kWireVersion + 1},
                          uint8_t{0xFF}}) {
    Bytes mutated = wire;
    mutated[4] = version;
    service::FrameDecoder decoder;
    EXPECT_EQ(decoder.Feed(mutated).code(), StatusCode::kProtocolViolation);
  }

  // Random garbage streams: any outcome but a crash/hang is fine, and
  // no garbage may parse into a frame whose payload CRC doesn't hold.
  Rng rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes garbage(rng.UniformU64(200));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextU64());
    service::FrameDecoder decoder;
    if (decoder.Feed(garbage).ok()) {
      service::Frame out;
      while (decoder.Next(&out)) {
        EXPECT_LE(out.payload.size(), service::kMaxFramePayload);
      }
    }
  }
}

TEST(WireRobustness, UnaryPayloadLengthAndPadding) {
  const uint64_t d = 13;
  std::vector<uint8_t> bits(d, 0);
  bits[3] = bits[7] = 1;
  Bytes packed = PackUnaryBits(bits);
  ASSERT_EQ(packed.size(), (d + 7) / 8);

  auto ok = UnpackUnaryBits(packed, d);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, bits);

  // Wrong lengths fail cleanly.
  Bytes shorter(packed.begin(), packed.end() - 1);
  EXPECT_FALSE(UnpackUnaryBits(shorter, d).ok());
  Bytes longer = packed;
  longer.push_back(0);
  EXPECT_FALSE(UnpackUnaryBits(longer, d).ok());
  EXPECT_FALSE(UnpackUnaryBits(packed, d + 9).ok());

  // Smuggled padding bits are rejected.
  Bytes smuggled = packed;
  smuggled.back() |= 0x80;  // bit 15 > d-1 = 12
  EXPECT_FALSE(UnpackUnaryBits(smuggled, d).ok());

  // Random garbage at matching length parses or fails, never crashes.
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes garbage((d + 7) / 8);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextU64());
    auto parsed = UnpackUnaryBits(garbage, d);
    if (parsed.ok()) EXPECT_EQ(parsed->size(), d);
  }
}

}  // namespace
}  // namespace ldp
}  // namespace shuffledp
